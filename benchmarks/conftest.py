"""Shared configuration for the benchmark harness.

Every benchmark runs a scaled-down instance of the paper's experimental
setup; the scale is chosen so the whole harness finishes in a few minutes of
CPU while preserving the per-region statistics (see DESIGN.md, "Scaled-
instance methodology").

The ``REPRO_BENCH_SCALE`` environment variable overrides the default scale,
which is how the CI bench-smoke job runs the harness at reduced size while
still emitting comparable ``--benchmark-json`` artifacts.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentConfig

#: Benchmark-suite scale relative to the full ISPD'98/IBM designs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.025"))

#: Base random seed of the benchmark instances.
BENCH_SEED = 7


def make_experiment_config(circuits, rates=(0.3, 0.5)) -> ExperimentConfig:
    """Experiment configuration shared by the table benchmarks."""
    return ExperimentConfig(
        circuits=tuple(circuits),
        sensitivity_rates=tuple(rates),
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )


@pytest.fixture(scope="session")
def bench_flow_config():
    """Flow configuration matched to the benchmark scale."""
    return make_experiment_config(("ibm01",)).flow_config()
