"""Experiment A — incremental annealer vs. the historic scalar reference.

The simulated-annealing improver is the hottest path of every Table 1-3 flow
at ``effort="anneal"``.  This benchmark extracts the real panels of the
Table 3 ibm01 instance (the same circuit, scale and seed
``bench_table3_area.py`` uses), anneals every panel with both implementations
at equal iteration count, and checks

* correctness — the incremental annealer returns *bit-identical* layouts to
  the scalar reference on every panel (the reference preserves the historic
  cost profile, including its occupant-based compaction), so solution
  quality is exactly "no worse": it is equal, shield for shield;
* performance — the incremental path is at least 3x faster wall-clock on the
  panel suite (the measured margin is comfortably above the asserted floor
  to keep shared CI runners from flaking the build);
* batched evaluation — the best-of-K batched annealer (``anneal-batched``,
  K = 8) is at least 4x faster than the scalar reference at equal eval
  count, and collapses to the scalar annealer bit-for-bit at ``batch_k=1``;
* multi-chain search — ``chains > 1`` stays feasible and never uses more
  shields than the single-chain search it embeds as chain 0.
"""

from __future__ import annotations

import os
import time

from repro.analysis.experiments import ExperimentConfig
from repro.bench.ibm import generate_circuit
from repro.gsino.budgeting import compute_budgets
from repro.gsino.phase1 import run_phase1
from repro.gsino.phase2 import build_panel_problems
from repro.sino.anneal import (
    AnnealConfig,
    anneal_sino,
    anneal_sino_multichain,
    anneal_sino_reference,
)

from conftest import BENCH_SCALE, BENCH_SEED

#: Speedup floor asserted against the historic annealer (measured ~3.1x on a
#: quiet machine; the default floor leaves headroom for timing noise, and the
#: CI bench-smoke job relaxes it further via ``REPRO_BENCH_MIN_SPEEDUP``
#: because shared runners throttle unpredictably — there the artifact JSON,
#: not the gate, is the signal).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))

#: Speedup floor of the batched best-of-K annealer against the scalar
#: reference at equal eval count (measured ~4.6x on a quiet machine at
#: K = 8; the CI bench-smoke job keeps this floor as-is — the batched gate
#: is the tentpole claim of the batched evaluator).
MIN_BATCHED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_BATCHED_SPEEDUP", "4.0"))

#: Iteration count shared by both implementations (the solver default).
ITERATIONS = 1500


def _table3_panels():
    """The SINO panel instances of the Table 3 ibm01 row (sorted keys)."""
    config = ExperimentConfig(circuits=("ibm01",), scale=BENCH_SCALE, seed=BENCH_SEED)
    flow_config = config.flow_config()
    circuit = generate_circuit(
        "ibm01", sensitivity_rate=0.5, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    budgets = compute_budgets(circuit.netlist, flow_config)
    phase1 = run_phase1(circuit.grid, circuit.netlist, flow_config, budgets=budgets)
    problems = build_panel_problems(phase1.routing, circuit.netlist, budgets, flow_config)
    return [problem for _key, problem in sorted(problems.items())]


def test_incremental_anneal_speedup(benchmark):
    """Equal-iteration wall-time of the incremental vs. the reference annealer."""
    panels = _table3_panels()
    config = AnnealConfig(iterations=ITERATIONS, seed=BENCH_SEED)

    def run_incremental():
        return [anneal_sino(problem, config=config) for problem in panels]

    incremental = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    incremental_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    reference = [anneal_sino_reference(problem, config=config) for problem in panels]
    reference_seconds = time.perf_counter() - start

    # Solution quality is no worse than the historic annealer: it is
    # bit-identical, panel for panel.
    assert all(a.layout == b.layout for a, b in zip(incremental, reference))

    speedup = reference_seconds / incremental_seconds
    benchmark.extra_info["num_panels"] = len(panels)
    benchmark.extra_info["iterations"] = ITERATIONS
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 3)
    benchmark.extra_info["speedup_vs_reference"] = round(speedup, 2)
    assert speedup >= MIN_SPEEDUP, (
        f"incremental annealer only {speedup:.2f}x faster than the reference "
        f"({incremental_seconds:.2f}s vs {reference_seconds:.2f}s)"
    )


def test_batched_anneal_speedup(benchmark):
    """Equal-eval wall-time of the batched (K = 8) vs. the reference annealer.

    ``batch_k=1`` is additionally asserted bit-identical to the scalar
    incremental annealer on every panel — the batched evaluator is a pure
    widening of the scalar search, not a different algorithm at width 1.
    """
    from dataclasses import replace

    from repro.sino.batched import anneal_sino_batched

    panels = _table3_panels()
    config = AnnealConfig(iterations=ITERATIONS, seed=BENCH_SEED)
    batched_config = replace(config, batch_k=8)

    def run_batched():
        return [anneal_sino_batched(problem, config=batched_config) for problem in panels]

    benchmark.pedantic(run_batched, rounds=1, iterations=1)
    batched_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    [anneal_sino_reference(problem, config=config) for problem in panels]
    reference_seconds = time.perf_counter() - start

    scalar = [anneal_sino(problem, config=config) for problem in panels]
    width_one = [
        anneal_sino_batched(problem, config=replace(config, batch_k=1)) for problem in panels
    ]
    assert all(a.layout == b.layout for a, b in zip(scalar, width_one))

    speedup = reference_seconds / batched_seconds
    benchmark.extra_info["num_panels"] = len(panels)
    benchmark.extra_info["iterations"] = ITERATIONS
    benchmark.extra_info["batch_k"] = 8
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 3)
    benchmark.extra_info["speedup_vs_reference"] = round(speedup, 2)
    assert speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched annealer only {speedup:.2f}x faster than the reference "
        f"({batched_seconds:.2f}s vs {reference_seconds:.2f}s)"
    )


def test_multichain_quality(benchmark):
    """Multi-chain search stays feasible and beats or matches chain 0."""
    panels = _table3_panels()
    dense = sorted(panels, key=lambda problem: -problem.num_segments)[:6]
    single_config = AnnealConfig(iterations=600, seed=BENCH_SEED)
    multi_config = AnnealConfig(iterations=600, seed=BENCH_SEED, chains=4)

    def run_multichain():
        return [anneal_sino_multichain(problem, config=multi_config) for problem in dense]

    multi = benchmark.pedantic(run_multichain, rounds=1, iterations=1)
    single = [anneal_sino(problem, config=single_config) for problem in dense]

    improvements = 0
    for one, many in zip(single, multi):
        assert many.is_valid() or not one.is_valid()
        if one.is_valid():
            # Chain 0 of the multi-chain search *is* the single-chain search,
            # so the best-feasible reduction can never come back worse.
            assert many.num_shields <= one.num_shields
            if many.num_shields < one.num_shields:
                improvements += 1
    benchmark.extra_info["num_panels"] = len(dense)
    benchmark.extra_info["panels_improved_by_extra_chains"] = improvements
