"""Experiment T1 — Table 1: crosstalk-violating nets in ID+NO solutions.

The paper routes ibm01–ibm06 with a conventional (wire length + congestion
only) ID router followed by net ordering, and counts how many nets violate
the 0.15 V RLC crosstalk bound at sensitivity rates of 30 % and 50 %;
up to ~24 % of nets violate.  This benchmark regenerates the same rows on the
synthetic suite and checks the headline shape: a substantial minority of nets
violate, and the count grows with the sensitivity rate.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_percentage
from repro.bench.ibm import generate_circuit
from repro.gsino.baselines import run_id_no

from conftest import BENCH_SCALE, BENCH_SEED

CIRCUITS = ("ibm01", "ibm02", "ibm03", "ibm04", "ibm05", "ibm06")


def _violations_for(circuit_name: str, rate: float, config):
    circuit = generate_circuit(
        circuit_name,
        sensitivity_rate=rate,
        scale=BENCH_SCALE,
        seed=BENCH_SEED + CIRCUITS.index(circuit_name),
    )
    result = run_id_no(circuit.grid, circuit.netlist, config)
    return circuit, result


@pytest.mark.parametrize("circuit_name", CIRCUITS)
def test_table1_id_no_violations(benchmark, circuit_name, bench_flow_config):
    """One Table 1 row: violation counts at both sensitivity rates."""

    def run():
        rows = {}
        for rate in (0.3, 0.5):
            circuit, result = _violations_for(circuit_name, rate, bench_flow_config)
            rows[rate] = (
                result.metrics.crosstalk.num_violations,
                result.metrics.crosstalk.violation_fraction,
                circuit.netlist.num_nets,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    low_count, low_fraction, num_nets = rows[0.3]
    high_count, high_fraction, _ = rows[0.5]
    benchmark.extra_info["circuit"] = circuit_name
    benchmark.extra_info["nets"] = num_nets
    benchmark.extra_info["violations_30"] = f"{low_count} ({format_percentage(low_fraction)})"
    benchmark.extra_info["violations_50"] = f"{high_count} ({format_percentage(high_fraction)})"

    # Paper shape: a noticeable minority of nets violates (roughly 5-35 % at
    # this scale) and the 50 % rate produces at least as many violations.
    assert 0 < low_count < 0.5 * num_nets
    assert high_count >= low_count
    assert high_fraction <= 0.55
