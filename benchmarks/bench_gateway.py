"""Experiment G1 — gateway submit throughput/latency over live HTTP.

PR 10's claim is that the gateway's micro-batcher amortizes the spool's
atomic-rename hot path across a concurrent burst: N clients submitting
simultaneously cost one layout read and one executor hop per *batch*
instead of per job, so batched submission sustains at least the
throughput of a gateway forced to write one job per flush.

Both benchmarks drive a real in-process gateway (bound to an ephemeral
port) through :func:`repro.service.gateway.run_http_loadgen` — the same
concurrent stdlib clients ``repro loadgen --http`` uses — so the medians
seeded into ``benchmarks/baseline.json`` gate the code path remote users
actually hit.  Rate limits are set far above the burst: this experiment
measures the write path, not the 429 path (the smoke job covers that).

Each variant runs ``ATTEMPTS`` times and keeps its best wall-clock to
damp scheduler noise; the batched/unbatched comparison is a ratio of two
runs on the same host, so machine speed cancels.  A structural check
asserts exactly-once spool delivery before any timing claim counts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.service.gateway import GatewayConfig, GatewayRunner, run_http_loadgen

#: Jobs per burst and concurrent clients driving it.
JOBS = int(os.environ.get("REPRO_BENCH_GATEWAY_JOBS", "48"))
CLIENTS = int(os.environ.get("REPRO_BENCH_GATEWAY_CLIENTS", "4"))

#: Minimum batched-over-unbatched admit-throughput ratio.
MIN_BATCH_RATIO = float(os.environ.get("REPRO_BENCH_MIN_GATEWAY_BATCH_RATIO", "1.0"))

#: Wall-clock attempts per variant; the best one counts.
ATTEMPTS = int(os.environ.get("REPRO_BENCH_GATEWAY_ATTEMPTS", "2"))


def _gateway_config(root: Path, **overrides) -> GatewayConfig:
    # batch_max matches the in-flight concurrency (each keep-alive client
    # has one request outstanding), so bursts flush on size the moment the
    # queue drains rather than waiting out the deadline.  batch_delay only
    # backstops stragglers — the same tuning guidance DESIGN.md gives
    # operators: batch_max ~ expected concurrent clients.
    defaults = dict(
        root=root,
        port=0,
        rate=1_000_000.0,
        burst=1_000_000.0,
        queue_depth=max(256, JOBS * 2),
        batch_max=CLIENTS,
        batch_delay=0.002,
        heartbeat_interval=60.0,  # keep heartbeat I/O out of the measurement
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def _run_burst(root: Path, label: str, **overrides):
    """One gateway lifetime serving one burst; returns the loadgen report."""
    runner = GatewayRunner(_gateway_config(root, **overrides)).start()
    try:
        report = run_http_loadgen(
            runner.url, scenario="smoke", jobs=JOBS, clients=CLIENTS, wait=False, timeout=300.0
        )
    finally:
        runner.stop()
    assert report.errors == 0, f"{label}: {report.errors} client errors"
    assert report.rejected_429 == 0, f"{label}: unexpected rate limiting"
    assert report.admitted == JOBS, f"{label}: {report.admitted}/{JOBS} admitted"
    # Exactly-once: every admitted id is a spool record, no extras, no dups.
    records = sorted(path.stem for path in (root / "jobs").glob("*.json"))
    assert records == sorted(report.job_ids), f"{label}: spool/admission mismatch"
    return report


def _best_burst(base: Path, label: str, **overrides):
    """Best-of-ATTEMPTS burst (fresh root each), by admit throughput."""
    best = None
    for attempt in range(ATTEMPTS):
        root = base / f"{label}-{attempt}"
        report = _run_burst(root, label, **overrides)
        if best is None or report.submit_rate > best.submit_rate:
            best = report
    return best


def test_gateway_submit_latency(benchmark, tmp_path):
    """Submit p50/p99 and throughput of a batched concurrent burst.

    The benchmark median (the burst's wall-clock) is what
    ``check_regression.py`` gates; the client-observed latency
    percentiles ride along in ``extra_info`` so ``BENCH_gateway.json``
    carries the numbers the ISSUE asks for.
    """
    reports = []

    def burst() -> None:
        root = tmp_path / f"run-{len(reports)}"
        reports.append(_run_burst(root, "batched"))

    benchmark.pedantic(burst, rounds=1, iterations=1)
    report = reports[-1]
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["submit_p50_ms"] = round((report.submit_percentile(0.50) or 0) * 1e3, 3)
    benchmark.extra_info["submit_p90_ms"] = round((report.submit_percentile(0.90) or 0) * 1e3, 3)
    benchmark.extra_info["submit_p99_ms"] = round((report.submit_percentile(0.99) or 0) * 1e3, 3)
    benchmark.extra_info["admits_per_s"] = round(report.submit_rate, 2)
    benchmark.extra_info["rejected_429"] = report.rejected_429
    assert report.submit_percentile(0.99) is not None


def test_batched_submit_beats_unbatched(benchmark, tmp_path):
    """Micro-batching must not lose to one-spool-write-per-job.

    ``batch_max=1`` forces every admission through its own executor hop,
    layout read and rename; the default batcher amortizes those across
    up to 16 jobs.  Host speed cancels in the ratio.
    """
    unbatched = _best_burst(tmp_path, "unbatched", batch_max=1, batch_delay=0.0)

    batched_reports = []

    def batched_burst() -> None:
        batched_reports.append(
            _best_burst(tmp_path / f"batched-{len(batched_reports)}", "batched")
        )

    benchmark.pedantic(batched_burst, rounds=1, iterations=1)
    batched = batched_reports[-1]
    ratio = batched.submit_rate / max(unbatched.submit_rate, 1e-9)
    benchmark.extra_info["batched_admits_per_s"] = round(batched.submit_rate, 2)
    benchmark.extra_info["unbatched_admits_per_s"] = round(unbatched.submit_rate, 2)
    benchmark.extra_info["batch_ratio"] = round(ratio, 3)
    assert ratio >= MIN_BATCH_RATIO, (
        f"batched admission {batched.submit_rate:.1f} jobs/s is below "
        f"{MIN_BATCH_RATIO}x the unbatched {unbatched.submit_rate:.1f} jobs/s"
    )


def test_submit_latency_report_is_json_serialisable(tmp_path):
    """The loadgen report must round-trip into BENCH_*.json artifacts."""
    report = _run_burst(tmp_path / "serialise", "serialise")
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["admitted"] == JOBS
    assert payload["submit_p50"] > 0.0
    assert payload["submit_p99"] >= payload["submit_p50"]
