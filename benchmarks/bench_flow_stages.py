"""Experiment F1 — stage-graph flows: ancestor sharing and stage resume.

Two claims of the ``repro.flow`` layer are measured on a seeded ibm01
instance:

* **Ancestor sharing.**  A compare-of-three-flows materialises every shared
  stage exactly once: one conventional ID routing run serves both ID+NO and
  iSINO (the pre-refactor harness already shared it; running the flows
  independently routes it twice), one reserved routing serves GSINO, and
  the budgets are computed once for all three.  The runner's execution
  record asserts this structurally, and the independent-flows wall clock is
  reported alongside for the sharing margin.
* **Stage-granular resume.**  With a persistent store attached, a repeated
  comparison restores all ten stage artifacts and executes none of them —
  the warm compare must be at least ``REPRO_BENCH_MIN_SPEEDUP``x (default
  1.5x) faster than the cold compare, bit-identical results included.
"""

from __future__ import annotations

import os
import time

from repro.bench.ibm import generate_circuit
from repro.engine import Engine, SolutionCache
from repro.flow.flows import FLOW_NAMES, build_context, run_compare
from repro.gsino.config import GsinoConfig
from repro.gsino.reference import (
    reference_run_gsino,
    reference_run_id_no,
    reference_run_isino,
)
from repro.service.store import ResultStore

from conftest import BENCH_SCALE, BENCH_SEED

#: Minimum warm-over-cold compare speedup (relaxed in CI via the same knob
#: the annealer benchmark uses).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))

FLOW_BENCH_CIRCUIT = "ibm01"
FLOW_BENCH_RATE = 0.3


def _bench_circuit():
    return generate_circuit(
        FLOW_BENCH_CIRCUIT,
        sensitivity_rate=FLOW_BENCH_RATE,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )


def _bench_config() -> GsinoConfig:
    return GsinoConfig(length_scale=1.0 / (BENCH_SCALE**0.5))


def test_compare_shares_id_routing(benchmark):
    """One compare does conventional ID routing exactly once, budgets once."""
    circuit = _bench_circuit()
    config = _bench_config()

    def staged_compare():
        context = build_context(
            circuit.grid, circuit.netlist, config, Engine(cache=SolutionCache())
        )
        return run_compare(context)

    outcome = benchmark.pedantic(staged_compare, rounds=1, iterations=1)

    # Independent flows (the no-sharing harness): the conventional routing
    # runs twice, nothing is shared.  Reported for the sharing margin.
    start = time.perf_counter()
    reference_run_id_no(circuit.grid, circuit.netlist, config)
    reference_run_isino(circuit.grid, circuit.netlist, config)
    reference_run_gsino(circuit.grid, circuit.netlist, config)
    independent_seconds = time.perf_counter() - start
    staged_seconds = sum(result.runtime_seconds for result in outcome.results.values())

    benchmark.extra_info["staged_seconds"] = round(staged_seconds, 3)
    benchmark.extra_info["independent_seconds"] = round(independent_seconds, 3)
    benchmark.extra_info["stage_outcomes"] = outcome.runner.outcome_counts()

    executions = [e for e in outcome.runner.executions if e.stage == "route_id"]
    baseline_runs = [
        e for e in executions if e.artifact == "route_baseline" and e.outcome == "executed"
    ]
    assert len(baseline_runs) == 1  # ID routing exactly once across id_no + isino
    assert outcome.runner.executed_stages("route_id") == 2  # + the reserved run
    assert outcome.runner.executed_stages("budgeting") == 1
    assert outcome.runner.shared_count == 3
    assert set(outcome.results) == set(FLOW_NAMES)


def test_warm_compare_speedup_from_stage_store(benchmark, tmp_path):
    """A store-backed repeat of the compare restores every stage, >= 1.5x."""
    circuit = _bench_circuit()
    config = _bench_config()
    root = tmp_path / "store"

    def compare_with_store():
        store = ResultStore(root)
        context = build_context(
            circuit.grid, circuit.netlist, config, Engine(cache=SolutionCache(store=store))
        )
        return run_compare(context, store=store)

    start = time.perf_counter()
    cold = compare_with_store()
    cold_seconds = time.perf_counter() - start

    # Two warm rounds, best taken, so one scheduler hiccup on a loaded host
    # cannot fail the speedup assertion.
    start = time.perf_counter()
    first_warm = compare_with_store()
    first_warm_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = benchmark.pedantic(compare_with_store, rounds=1, iterations=1)
    warm_seconds = min(first_warm_seconds, time.perf_counter() - start)
    speedup = cold_seconds / warm_seconds

    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["warm_outcomes"] = warm.runner.outcome_counts()

    # Resume is an execution optimisation only: results are unchanged.
    assert warm.runner.executed_count == 0
    assert warm.runner.restored_count == 10
    for flow in FLOW_NAMES:
        assert (
            warm.results[flow].metrics.summary() == cold.results[flow].metrics.summary()
        )
    assert first_warm.runner.executed_count == 0
    assert speedup >= MIN_SPEEDUP
