"""Experiment M2 — Formula 3: closed-form shield-count estimation accuracy.

The paper fits the six coefficients of Formula 3 against min-area SINO
solutions and reports estimates within 10 % of the true shield counts.  This
benchmark reproduces the fitting procedure (against our greedy/annealed SINO
solutions) and records the achieved accuracy, plus the qualitative property
the router depends on: regions with more (and more sensitive) nets need more
shields.
"""

from __future__ import annotations

from repro.sino.anneal import AnnealConfig
from repro.sino.estimate import fit_formula3


def test_formula3_fit_accuracy(benchmark):
    """Fit Formula 3 and measure its relative error against observed Nss."""

    def run():
        return fit_formula3(
            segment_counts=(2, 4, 6, 8, 10, 12, 16),
            sensitivity_rates=(0.1, 0.3, 0.5, 0.7, 0.9),
            samples_per_point=3,
            effort="anneal",
            anneal_config=AnnealConfig(iterations=400, seed=3),
            seed=42,
        )

    estimator, samples = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["fit_relative_error"] = round(estimator.fit_relative_error, 3)
    benchmark.extra_info["num_samples"] = len(samples)

    # The paper achieves <=10 %; the greedy/annealed reproduction is looser but
    # must stay in a usable regime for area reservation.
    assert estimator.fit_relative_error < 0.45

    # Qualitative monotonicity used by the ID weight function.
    sparse = estimator.estimate([0.2] * 6)
    dense = estimator.estimate([0.7] * 6)
    big = estimator.estimate([0.7] * 16)
    assert dense > sparse
    assert big > dense
