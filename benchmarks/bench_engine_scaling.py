"""Experiment E1 — execution-engine scaling: backends and the solution cache.

Two claims of the engine layer are measured on a seeded ibm05 instance:

* **Backend parity and dispatch overhead.**  Phase II fans its per-panel
  SINO solves over the execution backend; serial, thread and process
  backends must produce bit-identical panel solutions, and chunked dispatch
  must keep the parallel paths within a small factor of serial even on a
  single-core host (where no actual overlap is possible).
* **Cold-vs-warm cache.**  A `SolutionCache` shared between flows solves
  each distinct panel instance once.  Running GSINO *after* an iSINO run on
  the same instance (the `compare_flows` situation) must give a >= 1.5x
  warm-cache speedup: the instance is congestion-free, so GSINO's reserved
  routing reproduces the baseline panels and Phase II is served almost
  entirely from the cache.

The instance uses the paper's higher-effort annealing solver with a short
schedule — expensive enough per panel that solve time dominates routing,
cheap enough that the whole benchmark stays in seconds.
"""

from __future__ import annotations

import time

from repro.bench.ibm import generate_circuit
from repro.engine import Engine, SolutionCache, create_backend
from repro.gsino.baselines import run_isino
from repro.gsino.config import GsinoConfig
from repro.gsino.phase2 import run_phase2
from repro.gsino.phase1 import run_phase1
from repro.gsino.budgeting import compute_budgets
from repro.gsino.pipeline import run_gsino
from repro.sino.anneal import AnnealConfig

from conftest import BENCH_SEED

#: Engine-benchmark instance: congestion-free at this scale, so baseline and
#: GSINO routings coincide and the cross-flow cache overlap is maximal.
ENGINE_BENCH_CIRCUIT = "ibm05"
ENGINE_BENCH_SCALE = 0.012
ENGINE_BENCH_RATE = 0.3

#: Short annealing schedule: per-panel solves dominate the flow runtime
#: without pushing the benchmark past a few seconds.
ENGINE_BENCH_ANNEAL = AnnealConfig(iterations=250)


def _bench_config() -> GsinoConfig:
    return GsinoConfig(
        length_scale=1.0 / (ENGINE_BENCH_SCALE ** 0.5),
        sino_effort="anneal",
        anneal=ENGINE_BENCH_ANNEAL,
    )


def _bench_circuit():
    return generate_circuit(
        ENGINE_BENCH_CIRCUIT,
        sensitivity_rate=ENGINE_BENCH_RATE,
        scale=ENGINE_BENCH_SCALE,
        seed=BENCH_SEED,
    )


def test_backend_parity_and_dispatch_overhead(benchmark):
    """Serial, thread and process backends: identical panels, bounded overhead."""
    circuit = _bench_circuit()
    config = _bench_config()
    budgets = compute_budgets(circuit.netlist, config)
    phase1 = run_phase1(circuit.grid, circuit.netlist, config, budgets=budgets)

    def phase2_with(backend_name: str):
        workers = None if backend_name == "serial" else 2
        engine = Engine(backend=create_backend(backend_name, workers=workers))
        start = time.perf_counter()
        result = run_phase2(
            phase1.routing, circuit.netlist, budgets, config, solver="sino", engine=engine
        )
        return result, time.perf_counter() - start

    serial, serial_time = benchmark.pedantic(
        phase2_with, args=("serial",), rounds=1, iterations=1
    )
    thread, thread_time = phase2_with("thread")
    process, process_time = phase2_with("process")

    benchmark.extra_info["serial_seconds"] = round(serial_time, 3)
    benchmark.extra_info["thread_seconds"] = round(thread_time, 3)
    benchmark.extra_info["process_seconds"] = round(process_time, 3)
    benchmark.extra_info["num_panels"] = len(serial.panels)

    # Bit-identical layouts, identical (sorted) insertion order.
    assert list(thread.panels) == list(serial.panels) == sorted(serial.panels)
    assert list(process.panels) == list(serial.panels)
    for key, solution in serial.panels.items():
        assert thread.panels[key].layout == solution.layout
        assert process.panels[key].layout == solution.layout


def test_warm_cache_speedup_after_isino(benchmark):
    """GSINO re-using an iSINO run's panel solutions is >= 1.5x faster."""
    circuit = _bench_circuit()
    config = _bench_config()

    # Cold: fresh engine, nothing cached.
    cold_engine = Engine(cache=SolutionCache())
    start = time.perf_counter()
    cold = run_gsino(circuit.grid, circuit.netlist, config, engine=cold_engine)
    cold_seconds = time.perf_counter() - start

    # Warm: the same engine first runs iSINO, as compare_flows would.
    warm_engine = Engine(cache=SolutionCache())
    run_isino(circuit.grid, circuit.netlist, config, engine=warm_engine)

    def gsino_warm():
        return run_gsino(circuit.grid, circuit.netlist, config, engine=warm_engine)

    # Two warm rounds, best taken, so one scheduler hiccup on a loaded host
    # cannot fail the speedup assertion; the second round also measures the
    # fully-warm steady state a sweep service reaches.
    first_warm = gsino_warm()
    warm = benchmark.pedantic(gsino_warm, rounds=1, iterations=1)
    warm_seconds = min(first_warm.runtime_seconds, warm.runtime_seconds)
    speedup = cold_seconds / warm_seconds

    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_seconds_after_isino"] = round(first_warm.runtime_seconds, 3)
    benchmark.extra_info["warm_seconds_steady"] = round(warm.runtime_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["after_isino_cache_stats"] = str(first_warm.cache_stats)

    # Caching is an execution optimisation only: results are unchanged.
    assert warm.metrics.crosstalk.num_violations == cold.metrics.crosstalk.num_violations
    assert warm.metrics.area.area == cold.metrics.area.area
    assert warm.metrics.average_wirelength_um == cold.metrics.average_wirelength_um
    assert first_warm.cache_stats.hits > 0
    assert speedup >= 1.5
