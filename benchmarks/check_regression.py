"""Benchmark regression gate: compare a fresh run against the committed baseline.

Usage::

    python benchmarks/check_regression.py BENCH_smoke.json [benchmarks/baseline.json]

Reads the medians of a pytest-benchmark ``--benchmark-json`` result and
compares each benchmark (matched by ``fullname``) against
``benchmarks/baseline.json``.  The gate fails (exit 1) when any benchmark's
median exceeds its baseline median by more than the allowed ratio —
``REPRO_BENCH_MAX_REGRESSION`` (default **1.25**, i.e. a >25% slowdown).

Benchmarks absent from the baseline (newly added) pass with a note; update
the baseline by regenerating it from a trusted run::

    python benchmarks/check_regression.py --update BENCH_smoke.json

which rewrites ``benchmarks/baseline.json`` from that run's medians (commit
the result).  ``REPRO_BENCH_SKIP_REGRESSION=1`` turns the gate into a
report-only pass, for machines whose absolute timings are not comparable to
the baseline host.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "1.25"))


def load_medians(path: Path) -> dict:
    """``{fullname: median_seconds}`` of a pytest-benchmark JSON result."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    medians = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats") or {}
        median = stats.get("median")
        if isinstance(median, (int, float)):
            medians[bench["fullname"]] = float(median)
    return medians


def write_baseline(baseline_path: Path, current_path: Path) -> None:
    medians = load_medians(current_path)
    payload = {
        "comment": (
            "Median seconds of the CI bench-smoke run; regenerate with "
            "`python benchmarks/check_regression.py --update BENCH_smoke.json` "
            "after an intentional perf change."
        ),
        "generated_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "scale": os.environ.get("REPRO_BENCH_SCALE"),
        "medians": {name: round(value, 6) for name, value in sorted(medians.items())},
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"baseline written: {baseline_path} ({len(medians)} benchmark(s))")


def main(argv: list) -> int:
    args = [arg for arg in argv if not arg.startswith("--")]
    update = "--update" in argv
    if not args:
        print(__doc__)
        return 2
    current_path = Path(args[0])
    baseline_path = Path(
        args[1] if len(args) > 1 else os.environ.get("REPRO_BENCH_BASELINE", DEFAULT_BASELINE)
    )
    if update:
        write_baseline(baseline_path, current_path)
        return 0
    current = load_medians(current_path)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update to seed one")
        return 1
    baseline = json.loads(baseline_path.read_text(encoding="utf-8")).get("medians", {})
    skip = os.environ.get("REPRO_BENCH_SKIP_REGRESSION") == "1"
    failures = []
    for name, median in sorted(current.items()):
        reference = baseline.get(name)
        if reference is None:
            print(f"  NEW    {name}: {median:.4f}s (no baseline; passes)")
            continue
        ratio = median / reference if reference > 0 else float("inf")
        verdict = "ok" if ratio <= MAX_REGRESSION else "SLOW"
        print(f"  {verdict:6s} {name}: {median:.4f}s vs baseline {reference:.4f}s ({ratio:.2f}x)")
        if ratio > MAX_REGRESSION:
            failures.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print(f"  GONE   {name}: in baseline but not in this run (filter changed?)")
    if failures and not skip:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
            f"{(MAX_REGRESSION - 1.0) * 100:.0f}% (REPRO_BENCH_MAX_REGRESSION={MAX_REGRESSION})"
        )
        return 1
    if failures and skip:
        print("\nregressions found, but REPRO_BENCH_SKIP_REGRESSION=1 — reporting only")
    print(f"\nregression gate passed ({len(current)} benchmark(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
