"""Experiment T3 — Table 3: routing area of ID+NO, iSINO and GSINO.

The paper's central area result: applying SINO after a conventional routing
(iSINO) inflates the routing area by ~18 % (30 % sensitivity) to ~23 % (50 %),
while GSINO — which reserves and minimises shield area during routing — cuts
that overhead to ~7–9 %.  This benchmark regenerates the three areas per
circuit and checks the ordering (ID+NO <= GSINO <= iSINO, with iSINO paying
the largest premium) and that both overheads grow with the sensitivity rate
at suite level.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_percentage
from repro.bench.ibm import generate_circuit
from repro.gsino.pipeline import compare_flows

from conftest import BENCH_SCALE, BENCH_SEED

CIRCUITS = ("ibm01", "ibm02", "ibm03", "ibm04", "ibm05", "ibm06")


@pytest.mark.parametrize("circuit_name", CIRCUITS)
@pytest.mark.parametrize("rate", [0.3, 0.5])
def test_table3_routing_area(benchmark, circuit_name, rate, bench_flow_config):
    """One Table 3 row (one circuit at one sensitivity rate)."""

    def run():
        circuit = generate_circuit(
            circuit_name,
            sensitivity_rate=rate,
            scale=BENCH_SCALE,
            seed=BENCH_SEED + CIRCUITS.index(circuit_name),
        )
        return compare_flows(circuit.grid, circuit.netlist, bench_flow_config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    id_no = results["id_no"].metrics.area
    isino = results["isino"].metrics.area
    gsino = results["gsino"].metrics.area
    isino_overhead = isino.overhead_vs(id_no)
    gsino_overhead = gsino.overhead_vs(id_no)

    benchmark.extra_info["circuit"] = circuit_name
    benchmark.extra_info["sensitivity"] = format_percentage(rate, 0)
    benchmark.extra_info["id_no_area"] = id_no.dimensions_label()
    benchmark.extra_info["isino_area"] = f"{isino.dimensions_label()} ({format_percentage(isino_overhead)})"
    benchmark.extra_info["gsino_area"] = f"{gsino.dimensions_label()} ({format_percentage(gsino_overhead)})"

    # Paper shape: iSINO pays the largest area premium, GSINO stays at or
    # below it (a small per-instance tolerance absorbs the noise of the
    # scaled-down instances; the suite-level trend is checked in the analysis
    # tests).
    assert isino.area >= id_no.area - 1e-6
    assert gsino.area <= isino.area * 1.10 + 1e-6
    assert isino_overhead < 0.5
    assert gsino_overhead < 0.4
    # GSINO must completely eliminate the crosstalk violations (the point of
    # paying any area at all).
    assert results["gsino"].metrics.crosstalk.num_violations == 0
