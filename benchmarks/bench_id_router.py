"""Experiment F1 — Figure 1 behaviour: the iterative-deletion router.

Figure 1 of the paper is the ID algorithm itself.  The behavioural properties
to reproduce are: every net connection graph is reduced to a tree spanning
its pins, and with gamma >> alpha, beta in Formula 2 the final solution has
essentially no overflow.  The benchmark also compares the GSINO weight
configuration (shield reservation on) against the baseline configuration to
show the reservation's effect on the shield-aware utilisation.
"""

from __future__ import annotations

import pytest

from repro.bench.ibm import generate_circuit
from repro.grid.congestion import CongestionMap
from repro.router.iterative_deletion import route_netlist
from repro.router.weights import WeightConfig

from conftest import BENCH_SCALE, BENCH_SEED


@pytest.mark.parametrize("reserve_shields", [False, True], ids=["baseline", "reserving"])
def test_id_router_properties(benchmark, reserve_shields):
    """Route a mid-size instance and verify the ID invariants."""
    circuit = generate_circuit("ibm03", sensitivity_rate=0.3, scale=BENCH_SCALE, seed=BENCH_SEED)

    def run():
        return route_netlist(
            circuit.grid,
            circuit.netlist,
            config=WeightConfig(reserve_shields=reserve_shields),
        )

    solution, report = benchmark.pedantic(run, rounds=1, iterations=1)
    congestion = CongestionMap.from_solution(solution)

    benchmark.extra_info["nets"] = circuit.netlist.num_nets
    benchmark.extra_info["deleted_edges"] = report.deleted_edges
    benchmark.extra_info["max_density"] = round(congestion.max_density(), 3)
    benchmark.extra_info["total_overflow"] = congestion.total_overflow()
    benchmark.extra_info["avg_wirelength_um"] = round(solution.average_wirelength_um(), 1)

    # Figure 1 invariant: every connection graph ends as a pin-spanning tree.
    assert solution.all_trees_valid()
    # gamma = 50 makes overflow essentially disappear.
    assert congestion.total_overflow() <= 0.02 * circuit.netlist.num_nets
    # Routed length stays near the profile's published average net length.
    assert solution.average_wirelength_um() == pytest.approx(
        circuit.profile.average_net_length, rel=0.35
    )
