"""Experiment A1 — Section 4 discussion: the sensitivity-rate sweep.

The paper observes that going from a 50 % to a 30 % sensitivity rate shrinks
GSINO's wire-length and routing-area overheads, and argues real designs sit
below 50 %, so the reported overheads are upper bounds.  This benchmark sweeps
the rate on one circuit and checks the monotone trend of the overheads and of
the ID+NO violation count.
"""

from __future__ import annotations

from repro.bench.ibm import generate_circuit
from repro.gsino.pipeline import compare_flows

from conftest import BENCH_SCALE, BENCH_SEED

RATES = (0.2, 0.3, 0.5)


def test_sensitivity_rate_sweep(benchmark, bench_flow_config):
    """Sweep the sensitivity rate and record how the overheads respond."""

    def run():
        results = {}
        for rate in RATES:
            circuit = generate_circuit(
                "ibm02", sensitivity_rate=rate, scale=BENCH_SCALE, seed=BENCH_SEED
            )
            results[rate] = compare_flows(circuit.grid, circuit.netlist, bench_flow_config)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    violations = {}
    shields = {}
    area_overheads = {}
    for rate, flows in results.items():
        id_no = flows["id_no"]
        gsino = flows["gsino"]
        violations[rate] = id_no.metrics.crosstalk.num_violations
        shields[rate] = gsino.metrics.total_shields
        area_overheads[rate] = gsino.metrics.area.overhead_vs(id_no.metrics.area)
        benchmark.extra_info[f"rate_{int(rate * 100)}"] = (
            f"viol={violations[rate]} shields={shields[rate]} "
            f"gsino_area=+{area_overheads[rate] * 100:.1f}%"
        )

    # More sensitivity -> more ID+NO violations and more GSINO shields.
    assert violations[0.2] <= violations[0.3] <= violations[0.5]
    assert shields[0.2] <= shields[0.3] <= shields[0.5]
    # The GSINO area overhead never decreases when the rate rises 0.3 -> 0.5.
    assert area_overheads[0.5] >= area_overheads[0.3] - 0.02
    # And GSINO keeps the design violation-free at every rate.
    for flows in results.values():
        assert flows["gsino"].metrics.crosstalk.num_violations == 0
