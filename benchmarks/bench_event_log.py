"""Experiment O1 — event-log append throughput: sharded vs flat streams.

PR 8's claim is that event-log writes on a sharded root never contend
across shards: every writer appends (and rotates) inside its own stream
directory, so a 4-writer burst pays per-file O_APPEND serialisation and
rotation-glob cost only within one shard, while on a flat root all four
writers serialise on one inode and one directory whose segment listing
grows four times as fast.

Measured with 4 concurrent *processes* (threads would serialise on the
GIL and hide the contention this layer removes), each appending
``EVENTS_PER_WRITER`` records under rotation pressure (small segments, so
the flat directory's shared rotation path is exercised, not just raw
``os.write``).  Each variant runs twice and keeps its best wall-clock to
damp scheduler noise.  A structural check through the merge-reader then
proves the speed cost no durability: every writer's sequence numbers read
back 0..N-1 gapless.  The sharded run must reach
``REPRO_BENCH_MIN_EVENT_RATIO``x (default 1.0x) the flat throughput.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.aggregate import iter_merged_events

#: Minimum sharded-over-flat append throughput ratio.
MIN_EVENT_RATIO = float(os.environ.get("REPRO_BENCH_MIN_EVENT_RATIO", "1.0"))

#: Concurrent writer processes; one shard each in the sharded run.
WRITERS = int(os.environ.get("REPRO_BENCH_EVENT_WRITERS", "4"))

#: Records appended per writer per run.
EVENTS_PER_WRITER = int(os.environ.get("REPRO_BENCH_EVENTS_PER_WRITER", "5000"))

#: Segment size: small enough that every writer rotates many times per
#: run, so the shared-directory rotation path is part of what is measured.
SEGMENT_BYTES = int(os.environ.get("REPRO_BENCH_EVENT_SEGMENT_BYTES", "16384"))

#: Wall-clock attempts per variant; the best one counts.
ATTEMPTS = int(os.environ.get("REPRO_BENCH_EVENT_ATTEMPTS", "2"))

_WRITER_SCRIPT = """
import os, sys, time
from repro.obs.events import EventLog
root, writer, count, shard, gofile, segment = sys.argv[1:7]
log = EventLog(
    root,
    writer=writer,
    shard=None if shard == "-" else int(shard),
    max_segment_bytes=int(segment),
)
while not os.path.exists(gofile):
    time.sleep(0.001)
for n in range(int(count)):
    log.emit("bench", n=n)
"""


def _run_once(root: Path, sharded: bool) -> float:
    """One burst of WRITERS processes; returns elapsed seconds after the gate."""
    root.mkdir(parents=True, exist_ok=True)
    if sharded:
        (root / "shards.json").write_text(
            json.dumps({"layout_version": 1, "shards": WRITERS}) + "\n"
        )
    go_file = root / "go"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    processes = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _WRITER_SCRIPT,
                str(root),
                f"w{index}",
                str(EVENTS_PER_WRITER),
                str(index) if sharded else "-",
                str(go_file),
                str(SEGMENT_BYTES),
            ],
            env=env,
        )
        for index in range(WRITERS)
    ]
    time.sleep(1.0)  # let every writer reach the spin gate before timing
    go_file.touch()
    started = time.perf_counter()
    for process in processes:
        assert process.wait() == 0, "writer process failed"
    elapsed = time.perf_counter() - started

    # Gapless per writer through the merge-reader: the speed is worthless
    # if concurrency lost or duplicated anyone's records.  (Coverage, not
    # read order: concurrent rotators on the *flat* stream can hand two
    # segments the same name index, so segment name order is not time
    # order there — one more thing per-shard streams fix, since a shard
    # has exactly one rotating writer.)
    seqs: dict = {f"w{index}": [] for index in range(WRITERS)}
    for record in iter_merged_events(root):
        if record.get("event") == "bench":
            seqs[str(record["writer"])].append(record["seq"])
    for writer, seen in seqs.items():
        assert sorted(seen) == list(range(EVENTS_PER_WRITER)), f"{writer} lost records"
    return elapsed


def _best_elapsed(base: Path, sharded: bool) -> float:
    return min(
        _run_once(base / f"run{attempt}", sharded) for attempt in range(ATTEMPTS)
    )


def test_sharded_appends_beat_flat_at_four_writers(benchmark, tmp_path):
    """Per-shard streams sustain >= flat throughput under a 4-writer burst."""
    flat_elapsed = _best_elapsed(tmp_path / "flat", sharded=False)

    sharded_elapsed = benchmark.pedantic(
        lambda: _best_elapsed(tmp_path / "sharded", sharded=True), rounds=1, iterations=1
    )

    total = WRITERS * EVENTS_PER_WRITER
    flat_rate = total / flat_elapsed
    sharded_rate = total / sharded_elapsed
    ratio = sharded_rate / flat_rate
    benchmark.extra_info["flat_events_per_s"] = round(flat_rate, 1)
    benchmark.extra_info["sharded_events_per_s"] = round(sharded_rate, 1)
    benchmark.extra_info["event_ratio"] = round(ratio, 2)

    assert ratio >= MIN_EVENT_RATIO, (
        f"sharded append rate {sharded_rate:.0f} events/s is only "
        f"{ratio:.2f}x the flat stream's {flat_rate:.0f} events/s "
        f"(need >= {MIN_EVENT_RATIO}x)"
    )
