"""Experiment F2 — Figure 2 behaviour: the local-refinement (LR) algorithm.

Figure 2 of the paper is Phase III: pass 1 must drive the remaining crosstalk
violations to zero, pass 2 must recover congestion (remove shields) without
re-introducing violations.  The benchmark runs Phases I–III on a circuit
whose detours leave Phase II with residual violations and records what the
two passes did.
"""

from __future__ import annotations

from repro.bench.ibm import generate_circuit
from repro.gsino.budgeting import compute_budgets
from repro.gsino.metrics import evaluate_crosstalk
from repro.gsino.phase1 import run_phase1
from repro.gsino.phase2 import run_phase2
from repro.gsino.phase3 import run_phase3

from conftest import BENCH_SCALE, BENCH_SEED


def test_phase3_eliminates_violations_and_recovers_shields(benchmark, bench_flow_config):
    """Run the full three-phase flow and check both LR passes."""
    circuit = generate_circuit("ibm05", sensitivity_rate=0.5, scale=BENCH_SCALE, seed=BENCH_SEED)
    config = bench_flow_config

    def run():
        budgets = compute_budgets(circuit.netlist, config)
        phase1 = run_phase1(circuit.grid, circuit.netlist, config, budgets=budgets)
        phase2 = run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="sino")
        report = run_phase3(phase1.routing, phase2, budgets, circuit.netlist, config)
        crosstalk = evaluate_crosstalk(
            phase1.routing,
            phase2.panels,
            config.lsk_model(),
            bound=config.resolved_bound(),
            length_scale=config.length_scale,
        )
        return report, crosstalk

    report, crosstalk = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["violations_before"] = report.violations_before
    benchmark.extra_info["violations_after"] = report.violations_after
    benchmark.extra_info["shields_before"] = report.shields_before
    benchmark.extra_info["shields_after_pass1"] = report.shields_after_pass1
    benchmark.extra_info["shields_after"] = report.shields_after
    benchmark.extra_info["pass2_regions_relaxed"] = report.pass2_regions_relaxed

    # Pass 1: all violations eliminated (the paper's "completely eliminates").
    assert report.violations_after == 0
    assert crosstalk.num_violations == 0
    # Pass 2: never adds shields on top of what pass 1 left behind.
    assert report.shields_after <= report.shields_after_pass1
