"""Experiment M1 — Section 2.2: LSK model characterisation and fidelity.

The paper builds a 100-entry LSK -> noise-voltage table spanning 0.10–0.20 V
from SPICE runs and claims the model has high fidelity (larger LSK means
larger simulated noise for fixed length) and that noise grows roughly
linearly with wire length.  This benchmark rebuilds the table with the MNA
circuit simulator and measures both claims.
"""

from __future__ import annotations

from repro.noise.fidelity import lsk_fidelity_report
from repro.noise.table_builder import LskTableBuilder, TableBuildConfig


def test_lsk_table_characterization(benchmark):
    """Build the lookup table from simulated panels (the SPICE substitute)."""

    def run():
        config = TableBuildConfig(num_samples=80, num_entries=100, seed=2002)
        builder = LskTableBuilder(config)
        return builder.build()

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    low, high = table.noise_range

    benchmark.extra_info["entries"] = table.num_entries
    benchmark.extra_info["noise_window_V"] = f"{low:.3f} .. {high:.3f}"
    benchmark.extra_info["lsk_budget_at_0.15V"] = f"{table.lsk_for_noise(0.15):.3e}"

    assert table.num_entries == 100
    # The tabulated window must sit inside the paper's 10-20 % of Vdd band
    # (the sweep cannot always reach both extremes exactly).
    assert 0.08 <= low <= 0.16
    assert low < high <= 0.30


def test_lsk_fidelity_claims(benchmark):
    """Rank fidelity and length linearity of the LSK model."""

    def run():
        return lsk_fidelity_report(num_samples=30, seed=7)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rank_correlation"] = round(report.rank_correlation, 3)
    benchmark.extra_info["length_linearity"] = round(report.length_linearity, 3)

    assert report.rank_correlation > 0.5
    assert report.length_linearity > 0.7
