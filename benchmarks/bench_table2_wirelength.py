"""Experiment T2 — Table 2: average wire length of ID+NO vs GSINO.

The paper reports a modest wire-length overhead for GSINO over the
conventional ID+NO routing (≈7 % at 30 % sensitivity, ≈13 % at 50 %), the
price of spreading sensitive nets and reserving shield area.  Our ID router
keeps every net inside its pin bounding box, so the measured overhead is
smaller (a few percent at most); the shape that must hold is that GSINO's
wire length is not *less* than ID+NO's by any meaningful margin and that the
overhead does not shrink when the sensitivity rate grows.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_percentage
from repro.bench.ibm import generate_circuit
from repro.gsino.baselines import run_id_no
from repro.gsino.pipeline import run_gsino

from conftest import BENCH_SCALE, BENCH_SEED

CIRCUITS = ("ibm01", "ibm02", "ibm03", "ibm04", "ibm05", "ibm06")


@pytest.mark.parametrize("circuit_name", CIRCUITS)
@pytest.mark.parametrize("rate", [0.3, 0.5])
def test_table2_average_wirelength(benchmark, circuit_name, rate, bench_flow_config):
    """One Table 2 cell pair: ID+NO and GSINO average wire length."""

    def run():
        circuit = generate_circuit(
            circuit_name,
            sensitivity_rate=rate,
            scale=BENCH_SCALE,
            seed=BENCH_SEED + CIRCUITS.index(circuit_name),
        )
        id_no = run_id_no(circuit.grid, circuit.netlist, bench_flow_config)
        gsino = run_gsino(circuit.grid, circuit.netlist, bench_flow_config)
        return id_no.metrics.average_wirelength_um, gsino.metrics.average_wirelength_um

    id_no_wl, gsino_wl = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = gsino_wl / id_no_wl - 1.0

    benchmark.extra_info["circuit"] = circuit_name
    benchmark.extra_info["sensitivity"] = format_percentage(rate, 0)
    benchmark.extra_info["id_no_wl_um"] = round(id_no_wl, 1)
    benchmark.extra_info["gsino_wl_um"] = round(gsino_wl, 1)
    benchmark.extra_info["overhead"] = format_percentage(overhead)

    # Shape: GSINO pays at most a modest wire-length premium and never gains
    # more than a rounding-level amount.
    assert overhead > -0.05
    assert overhead < 0.20
