"""Experiment C1 — cluster throughput: jobs/second as a function of workers.

The cluster layer's claim is that service throughput scales with worker
count instead of being a single-daemon constant.  Measured here on a
cache-cold burst of annealed ``dense-bus`` scenario jobs (every job a
distinct derived seed, every fleet a fresh store, so nothing is served
from cache): the same burst is driven through a supervised 1-worker fleet
and a 3-worker fleet over their own spools, and the 3-worker throughput
must be at least ``REPRO_BENCH_MIN_CLUSTER_SPEEDUP``x (default 1.8x) the
single-worker throughput.  Exactly-once execution is asserted structurally
from the per-job ``executions`` audit trail on both runs.

Workers are real OS processes (the same ``repro serve --cluster-worker``
path production uses), started and confirmed alive *before* the burst is
submitted, so process start-up cost never pollutes the throughput ratio.

The sharded-vs-flat comparison (``test_sharded_beats_flat_at_high_submit_rate``)
drives the same fleet size over a wide burst of cheap ``smoke`` jobs — where
spool-scan and claim contention, not solve time, dominate — once over a flat
spool and once over a 4-shard spool, and requires the sharded throughput to
reach ``REPRO_BENCH_MIN_SHARD_RATIO``x (default 1.0x) the flat throughput:
sharding must never cost throughput, and on wide bursts it should win.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.service import ClusterConfig, ClusterSupervisor, run_loadgen

#: Minimum 3-worker-over-1-worker throughput ratio (relaxable in CI, same
#: pattern as the other harness knobs).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_CLUSTER_SPEEDUP", "1.8"))

#: Burst size; a multiple of 3 so a perfectly balanced fleet has no remainder.
BURST_JOBS = int(os.environ.get("REPRO_BENCH_CLUSTER_JOBS", "9"))

#: Minimum sharded-over-flat throughput ratio (sharding must not regress).
MIN_SHARD_RATIO = float(os.environ.get("REPRO_BENCH_MIN_SHARD_RATIO", "1.0"))

#: Burst size of the sharded-vs-flat comparison: wide and cheap, so the
#: spool scan/claim path is what gets measured rather than the solver.
SHARD_BURST_JOBS = int(os.environ.get("REPRO_BENCH_SHARD_JOBS", "24"))

#: Scenario of the burst: annealed bus panels, widened to ~0.4-0.5 s of
#: solve per job — heavy enough that claiming overhead is noise, small
#: enough for CI.
BURST_SCENARIO = "dense-bus"
BURST_PARAMS = {"panels": 12}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _run_burst(
    root: Path,
    workers: int,
    *,
    shards: int = 1,
    scenario: str = BURST_SCENARIO,
    params: dict | None = None,
    jobs: int = BURST_JOBS,
):
    """Drive one cache-cold burst through a supervised fleet; return report."""
    supervisor = ClusterSupervisor(
        ClusterConfig(
            root=root, workers=workers, shards=shards, poll_interval=0.05, lease_ttl=10.0
        )
    )
    supervisor.start()
    try:
        assert supervisor.wait_alive(timeout=60.0), "fleet failed to come up"
        report = run_loadgen(
            root,
            scenario,
            jobs=jobs,
            params=dict(params if params is not None else BURST_PARAMS),
            timeout=600.0,
            poll=0.05,
        )
    finally:
        supervisor.stop()
    assert report.done == jobs, report.to_dict()
    # ``rglob`` covers both the flat layout (jobs/*.json) and the sharded
    # one (jobs/sNN/*.json) without caring which this root uses.
    records = [
        json.loads(path.read_text(encoding="utf-8"))
        for path in sorted((root / "jobs").rglob("*.json"))
    ]
    assert len(records) == jobs
    # Exactly-once: every job has a single execution entry, and a cold
    # store means every one was actually solved (no cross-run warm start).
    assert all(len(record["executions"]) == 1 for record in records), "double execution"
    if scenario == BURST_SCENARIO:
        assert all(
            record["result"]["cache"]["misses"] > 0 for record in records
        ), "burst not cold"
    return report


@pytest.mark.skipif(
    _usable_cpus() < 3,
    reason="cluster scaling needs >= 3 usable cores (CPU-bound workers "
    "cannot outrun each other on a shared core)",
)
def test_cluster_throughput_scales_with_workers(benchmark, tmp_path):
    """3 workers sustain >= 1.8x the job throughput of 1 on a cold burst."""
    single = _run_burst(tmp_path / "one", workers=1)

    triple = benchmark.pedantic(
        lambda: _run_burst(tmp_path / "three", workers=3), rounds=1, iterations=1
    )

    speedup = triple.throughput / single.throughput
    benchmark.extra_info["single_worker"] = single.to_dict()
    benchmark.extra_info["three_workers"] = triple.to_dict()
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert speedup >= MIN_SPEEDUP, (
        f"3-worker throughput {triple.throughput:.2f} jobs/s is only "
        f"{speedup:.2f}x the single worker's {single.throughput:.2f} jobs/s "
        f"(need >= {MIN_SPEEDUP}x)"
    )


@pytest.mark.skipif(
    _usable_cpus() < 3,
    reason="sharded-vs-flat comparison needs >= 3 usable cores (the fleets "
    "must actually run concurrently for spool contention to show up)",
)
def test_sharded_beats_flat_at_high_submit_rate(benchmark, tmp_path):
    """A 4-shard spool sustains >= flat throughput on a wide cheap burst."""
    flat = _run_burst(
        tmp_path / "flat",
        workers=3,
        scenario="smoke",
        params={},
        jobs=SHARD_BURST_JOBS,
    )

    sharded = benchmark.pedantic(
        lambda: _run_burst(
            tmp_path / "sharded",
            workers=3,
            shards=4,
            scenario="smoke",
            params={},
            jobs=SHARD_BURST_JOBS,
        ),
        rounds=1,
        iterations=1,
    )

    ratio = sharded.throughput / flat.throughput
    benchmark.extra_info["flat"] = flat.to_dict()
    benchmark.extra_info["sharded"] = sharded.to_dict()
    benchmark.extra_info["shard_ratio"] = round(ratio, 2)

    assert ratio >= MIN_SHARD_RATIO, (
        f"sharded throughput {sharded.throughput:.2f} jobs/s is only "
        f"{ratio:.2f}x the flat spool's {flat.throughput:.2f} jobs/s "
        f"(need >= {MIN_SHARD_RATIO}x)"
    )
