"""Experiment C1 — cluster throughput: jobs/second as a function of workers.

The cluster layer's claim is that service throughput scales with worker
count instead of being a single-daemon constant.  Measured here on a
cache-cold burst of annealed ``dense-bus`` scenario jobs (every job a
distinct derived seed, every fleet a fresh store, so nothing is served
from cache): the same burst is driven through a supervised 1-worker fleet
and a 3-worker fleet over their own spools, and the 3-worker throughput
must be at least ``REPRO_BENCH_MIN_CLUSTER_SPEEDUP``x (default 1.8x) the
single-worker throughput.  Exactly-once execution is asserted structurally
from the per-job ``executions`` audit trail on both runs.

Workers are real OS processes (the same ``repro serve --cluster-worker``
path production uses), started and confirmed alive *before* the burst is
submitted, so process start-up cost never pollutes the throughput ratio.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.service import ClusterConfig, ClusterSupervisor, run_loadgen

#: Minimum 3-worker-over-1-worker throughput ratio (relaxable in CI, same
#: pattern as the other harness knobs).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_CLUSTER_SPEEDUP", "1.8"))

#: Burst size; a multiple of 3 so a perfectly balanced fleet has no remainder.
BURST_JOBS = int(os.environ.get("REPRO_BENCH_CLUSTER_JOBS", "9"))

#: Scenario of the burst: annealed bus panels, widened to ~0.4-0.5 s of
#: solve per job — heavy enough that claiming overhead is noise, small
#: enough for CI.
BURST_SCENARIO = "dense-bus"
BURST_PARAMS = {"panels": 12}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _run_burst(root: Path, workers: int):
    """Drive one cache-cold burst through a supervised fleet; return report."""
    supervisor = ClusterSupervisor(
        ClusterConfig(root=root, workers=workers, poll_interval=0.05, lease_ttl=10.0)
    )
    supervisor.start()
    try:
        assert supervisor.wait_alive(timeout=60.0), "fleet failed to come up"
        report = run_loadgen(
            root,
            BURST_SCENARIO,
            jobs=BURST_JOBS,
            params=dict(BURST_PARAMS),
            timeout=600.0,
            poll=0.05,
        )
    finally:
        supervisor.stop()
    assert report.done == BURST_JOBS, report.to_dict()
    records = [
        json.loads(path.read_text(encoding="utf-8"))
        for path in sorted((root / "jobs").glob("*.json"))
    ]
    assert len(records) == BURST_JOBS
    # Exactly-once: every job has a single execution entry, and a cold
    # store means every one was actually solved (no cross-run warm start).
    assert all(len(record["executions"]) == 1 for record in records), "double execution"
    assert all(record["result"]["cache"]["misses"] > 0 for record in records), "burst not cold"
    return report


@pytest.mark.skipif(
    _usable_cpus() < 3,
    reason="cluster scaling needs >= 3 usable cores (CPU-bound workers "
    "cannot outrun each other on a shared core)",
)
def test_cluster_throughput_scales_with_workers(benchmark, tmp_path):
    """3 workers sustain >= 1.8x the job throughput of 1 on a cold burst."""
    single = _run_burst(tmp_path / "one", workers=1)

    triple = benchmark.pedantic(
        lambda: _run_burst(tmp_path / "three", workers=3), rounds=1, iterations=1
    )

    speedup = triple.throughput / single.throughput
    benchmark.extra_info["single_worker"] = single.to_dict()
    benchmark.extra_info["three_workers"] = triple.to_dict()
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert speedup >= MIN_SPEEDUP, (
        f"3-worker throughput {triple.throughput:.2f} jobs/s is only "
        f"{speedup:.2f}x the single worker's {single.throughput:.2f} jobs/s "
        f"(need >= {MIN_SPEEDUP}x)"
    )
