"""Tests for the LSK table characterisation sweep and the fidelity study."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.coupled_lines import WireRole
from repro.noise.fidelity import kendall_tau, lsk_fidelity_report, pearson_r
from repro.noise.keff import DEFAULT_KEFF_MODEL
from repro.noise.table_builder import (
    LskTableBuilder,
    TableBuildConfig,
    build_default_table,
    isotonic_fit,
)


class TestIsotonicFit:
    def test_already_monotone_unchanged(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert np.allclose(isotonic_fit(values), values)

    def test_single_violation_pooled(self):
        fitted = isotonic_fit([1.0, 3.0, 2.0, 4.0])
        assert np.all(np.diff(fitted) >= -1e-12)
        assert fitted[1] == pytest.approx(2.5)
        assert fitted[2] == pytest.approx(2.5)

    def test_strictly_decreasing_becomes_flat(self):
        fitted = isotonic_fit([3.0, 2.0, 1.0])
        assert np.allclose(fitted, 2.0)

    def test_empty(self):
        assert isotonic_fit([]).size == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=30))
    def test_output_is_monotone_and_mean_preserving(self, values):
        fitted = isotonic_fit(values)
        assert np.all(np.diff(fitted) >= -1e-9)
        assert float(np.mean(fitted)) == pytest.approx(float(np.mean(values)), abs=1e-9)


class TestTableBuildConfig:
    def test_defaults_resolve(self):
        config = TableBuildConfig()
        assert config.resolved_interface() is not None
        assert config.resolved_noise_floor() == pytest.approx(0.10, abs=1e-6)
        assert config.resolved_noise_ceiling() == pytest.approx(0.20, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            TableBuildConfig(num_entries=1)
        with pytest.raises(ValueError):
            TableBuildConfig(num_samples=2)
        with pytest.raises(ValueError):
            TableBuildConfig(wire_lengths=())
        with pytest.raises(ValueError):
            TableBuildConfig(track_counts=(1,))
        with pytest.raises(ValueError):
            TableBuildConfig(sensitivity_rates=(0.0,))
        with pytest.raises(ValueError):
            TableBuildConfig(shield_probability=1.0)


class TestLskTableBuilder:
    @pytest.fixture(scope="class")
    def built(self):
        config = TableBuildConfig(
            num_samples=24,
            num_entries=40,
            wire_lengths=(0.5e-3, 1.0e-3),
            track_counts=(3, 4, 5),
            segments_per_wire=3,
            num_steps=200,
            seed=5,
        )
        builder = LskTableBuilder(config)
        table = builder.build()
        return builder, table

    def test_samples_collected(self, built):
        builder, _ = built
        assert len(builder.samples) == 24
        for sample in builder.samples:
            assert sample.noise_voltage >= 0.0
            assert sample.lsk_value >= 0.0
            assert any(role is WireRole.VICTIM for role in sample.roles)

    def test_table_shape(self, built):
        _, table = built
        assert table.num_entries == 40
        noise = table.noise_values
        assert np.all(np.diff(noise) >= -1e-12)

    def test_lsk_of_roles_consistent_with_keff(self):
        roles = (WireRole.AGGRESSOR, WireRole.VICTIM, WireRole.SHIELD, WireRole.AGGRESSOR)
        value = LskTableBuilder.lsk_of_roles(roles, 1e-3, DEFAULT_KEFF_MODEL)
        # Victim at track 1: aggressor at track 0 (d=1), aggressor at track 3
        # behind a shield (d=2, one shield), adjacent shield bonus applies.
        expected_k = (1.0 + (1.0 / 2.0) / DEFAULT_KEFF_MODEL.shield_attenuation)
        expected_k /= DEFAULT_KEFF_MODEL.adjacent_shield_bonus
        assert value == pytest.approx(1e-3 * expected_k)

    def test_lsk_of_roles_requires_victim(self):
        with pytest.raises(ValueError):
            LskTableBuilder.lsk_of_roles((WireRole.AGGRESSOR,), 1e-3, DEFAULT_KEFF_MODEL)

    def test_build_default_table_smoke(self):
        table = build_default_table(num_samples=16, seed=2)
        assert table.num_entries == 100


class TestFidelityMetrics:
    def test_kendall_tau_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_kendall_tau_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_kendall_tau_validation(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1])
        with pytest.raises(ValueError):
            kendall_tau([1], [1])

    def test_pearson_r_linear(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0, 4.0, 6.0, 8.0]
        assert pearson_r(x, y) == pytest.approx(1.0)

    def test_pearson_r_constant_is_zero(self):
        assert pearson_r([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_fidelity_report_supports_paper_claims(self):
        report = lsk_fidelity_report(
            num_samples=12,
            lengths=(0.5e-3, 1.0e-3, 1.5e-3),
            segments_per_wire=3,
            num_steps=200,
            seed=3,
        )
        # The LSK model must rank noise well and noise must grow with length.
        assert report.rank_correlation > 0.4
        assert report.length_linearity > 0.6
        assert report.num_samples == 12
        assert report.passes(min_rank=0.3, min_linearity=0.5)
