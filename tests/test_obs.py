"""Tests for repro.obs — event log, tracing spans, metrics and snapshots.

The event-log tests enforce the layer's headline guarantees: atomic line
appends under thread *and* process concurrency (no torn lines, gapless
per-writer sequence numbers), size rotation that loses nothing mid-burst,
corrupt-tail tolerance on read, and incremental cursors that never skip or
double-deliver across a rotation.  The snapshot tests prove the event log
is a faithful second source: per-job statuses replayed from events match
the spool, and loadgen's event-derived report matches a spool scan.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventCursor,
    EventLog,
    event_log_for,
    events_dir,
    format_event,
    iter_events,
    read_events,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    format_metrics,
    merge_snapshots,
    snapshot_percentile,
)
from repro.obs.snapshot import (
    ServiceSnapshot,
    job_counts_from_events,
    job_statuses_from_events,
)
from repro.obs.trace import Tracer, maybe_span
from repro.service import (
    ClusterWorker,
    ResultStore,
    ServiceConfig,
    ServiceDaemon,
    WorkerConfig,
    read_cumulative_store_stats,
    run_loadgen,
    service_status,
    submit_job,
)
from repro.service.cluster import format_loadgen_report

# -- event log: basics ----------------------------------------------------------------


class TestEventLog:
    def test_emit_roundtrip_with_schema_and_gapless_seq(self, tmp_path):
        log = EventLog(tmp_path, writer="w1")
        log.emit("submitted", job="a", priority=3)
        log.emit("released", job="a", status="done")
        records = read_events(tmp_path)
        assert [r["event"] for r in records] == ["submitted", "released"]
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["v"] == EVENT_SCHEMA_VERSION for r in records)
        assert all(r["writer"] == "w1" for r in records)
        assert records[0]["priority"] == 3 and records[1]["status"] == "done"

    def test_none_fields_are_dropped(self, tmp_path):
        EventLog(tmp_path, writer="w").emit("released", job="a", latency=None)
        (record,) = read_events(tmp_path)
        assert "latency" not in record

    def test_filters_by_job_and_event(self, tmp_path):
        log = EventLog(tmp_path, writer="w")
        log.emit("submitted", job="a")
        log.emit("submitted", job="b")
        log.emit("released", job="a", status="done")
        assert [r["event"] for r in read_events(tmp_path, job_id="a")] == [
            "submitted",
            "released",
        ]
        assert len(read_events(tmp_path, event="submitted")) == 2
        assert read_events(tmp_path, tail=1)[0]["event"] == "released"

    def test_client_log_is_shared_per_root(self, tmp_path):
        first = event_log_for(tmp_path)
        assert event_log_for(tmp_path) is first
        assert event_log_for(tmp_path / "other") is not first

    def test_rejects_nonpositive_segment_size(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path, max_segment_bytes=0)


# -- event log: rotation --------------------------------------------------------------


class TestEventLogRotation:
    def test_rotation_mid_burst_loses_nothing(self, tmp_path):
        log = EventLog(tmp_path, writer="w", max_segment_bytes=256)
        for index in range(60):
            log.emit("tick", n=index)
        segments = list(events_dir(tmp_path).glob("log-*.jsonl"))
        assert len(segments) >= 2, "burst should have rotated at least twice"
        records = read_events(tmp_path)
        assert [r["seq"] for r in records] == list(range(60))
        assert [r["n"] for r in records] == list(range(60))

    def test_cursor_survives_rotation_between_polls(self, tmp_path):
        log = EventLog(tmp_path, writer="w", max_segment_bytes=128)
        cursor = EventCursor(tmp_path)
        seen = []
        for index in range(40):
            log.emit("tick", n=index)
            if index % 7 == 0:
                seen += [r["n"] for r in cursor.poll()]
        seen += [r["n"] for r in cursor.poll()]
        assert seen == list(range(40))
        assert cursor.poll() == []


# -- event log: corruption tolerance --------------------------------------------------


class TestEventLogCorruption:
    def test_torn_tail_line_is_skipped_not_fatal(self, tmp_path):
        log = EventLog(tmp_path, writer="w")
        log.emit("first")
        current = events_dir(tmp_path) / "log.jsonl"
        with open(current, "ab") as handle:
            handle.write(b'{"v": 1, "seq": 99, "tr')  # crash mid-write, no newline
        # A torn tail is invisible until terminated; later appends terminate
        # it into one garbage line, which readers skip.
        log.emit("second")
        records = read_events(tmp_path)
        assert [r["event"] for r in records] == ["first", "second"]

    def test_garbage_and_foreign_version_lines_are_skipped(self, tmp_path):
        log = EventLog(tmp_path, writer="w")
        log.emit("first")
        current = events_dir(tmp_path) / "log.jsonl"
        with open(current, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"v": 999, "event": "future-schema"}\n')
        log.emit("second")
        assert [r["event"] for r in read_events(tmp_path)] == ["first", "second"]
        cursor = EventCursor(tmp_path)
        assert [r["event"] for r in cursor.poll()] == ["first", "second"]
        assert cursor.skipped == 2

    def test_cursor_waits_for_incomplete_last_line(self, tmp_path):
        log = EventLog(tmp_path, writer="w")
        log.emit("first")
        cursor = EventCursor(tmp_path)
        assert len(cursor.poll()) == 1
        current = events_dir(tmp_path) / "log.jsonl"
        with open(current, "ab") as handle:
            handle.write(b'{"v": 1, "seq": 1, "ts": 1.0, "writer": "w", "event": "par')
        assert cursor.poll() == []  # incomplete: not consumed, not skipped
        with open(current, "ab") as handle:
            handle.write(b'tial"}\n')
        (record,) = cursor.poll()
        assert record["event"] == "partial"
        assert cursor.skipped == 0


# -- event log: concurrency -----------------------------------------------------------

_WRITER_SCRIPT = """
import sys
from repro.obs.events import EventLog
log = EventLog(sys.argv[1], writer=sys.argv[2])
for index in range(int(sys.argv[3])):
    log.emit("tick", n=index)
"""


class TestEventLogConcurrency:
    def test_threads_and_processes_append_while_reader_tails(self, tmp_path):
        """No torn lines, gapless per-writer seq, under real concurrency."""
        per_writer = 50
        thread_writers = [f"thread-{i}" for i in range(4)]
        process_writers = [f"proc-{i}" for i in range(2)]
        tailed = []
        stop = threading.Event()

        def tail():
            cursor = EventCursor(tmp_path)
            while not stop.is_set():
                tailed.extend(cursor.poll())
                time.sleep(0.005)
            tailed.extend(cursor.poll())
            assert cursor.skipped == 0

        def write(writer_id):
            log = EventLog(tmp_path, writer=writer_id, max_segment_bytes=2048)
            for index in range(per_writer):
                log.emit("tick", n=index)

        reader = threading.Thread(target=tail)
        reader.start()
        threads = [threading.Thread(target=write, args=(w,)) for w in thread_writers]
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), w, str(per_writer)],
                env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
            )
            for w in process_writers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        stop.set()
        reader.join()

        everyone = thread_writers + process_writers
        assert len(tailed) == per_writer * len(everyone)
        for writer in everyone:
            seqs = [r["seq"] for r in tailed if r["writer"] == writer]
            assert sorted(seqs) == list(range(per_writer)), f"gap in {writer}"
            payload = sorted(r["n"] for r in tailed if r["writer"] == writer)
            assert payload == list(range(per_writer))


# -- tracing --------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_carry_timings_and_counters(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", tasks=3) as inner:
                inner.add(tasks=2, hits=1)
            outer.add(total=1)
        (root,) = tracer.roots
        assert root.name == "outer" and root.finished
        (child,) = root.children
        assert child.parent_id == root.span_id
        assert child.counters == {"tasks": 5.0, "hits": 1.0}
        assert root.wall_seconds >= child.wall_seconds >= 0.0
        tree = tracer.to_tree()
        assert tree[0]["name"] == "outer"
        assert tree[0]["children"][0]["counters"] == {"hits": 1, "tasks": 5}

    def test_sibling_spans_after_pop_share_the_root(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (root,) = tracer.roots
        assert [child.name for child in root.children] == ["a", "b"]

    def test_maybe_span_is_a_noop_without_a_tracer(self):
        with maybe_span(None, "anything", tasks=1) as span:
            assert span is None

    def test_format_report_renders_names_shares_and_counters(self):
        tracer = Tracer()
        with tracer.span("solve", tasks=4):
            with tracer.span("dispatch"):
                pass
        report = tracer.format_report()
        assert "trace report" in report
        assert "solve" in report and "  dispatch" in report
        assert "tasks=4" in report

    def test_format_report_renders_empty_trace(self):
        assert "(no spans recorded)" in Tracer().format_report()


# -- metrics --------------------------------------------------------------------------


class TestMetrics:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert registry.counter("jobs") is counter

    def test_histogram_percentiles_are_ordered_and_bounded(self):
        histogram = Histogram("latency")
        for value in (0.002, 0.02, 0.02, 0.2, 2.0, 400.0):
            histogram.observe(value)
        assert histogram.count == 6
        p50, p90, p99 = (histogram.percentile(f) for f in (0.5, 0.9, 0.99))
        assert 0.0 < p50 <= p90 <= p99
        assert histogram.bucket_counts[-1] == 1  # 400s landed in overflow
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_merge_sums_counters_gauges_and_histogram_buckets(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        for registry in (first, second):
            registry.counter("done").inc(2)
            registry.gauge("queued").set(3)
            registry.histogram("latency").observe(0.05)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["done"]["value"] == 4
        assert merged["queued"]["value"] == 6
        assert merged["latency"]["count"] == 2
        assert sum(merged["latency"]["bucket_counts"]) == 2
        assert snapshot_percentile(merged["latency"], 0.5) is not None

    def test_merge_keeps_first_on_mismatched_bounds(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("latency", bounds=(1.0, 2.0)).observe(1.5)
        second.histogram("latency", bounds=(5.0, 9.0)).observe(6.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["latency"]["bounds"] == [1.0, 2.0]
        assert merged["latency"]["count"] == 1

    def test_format_metrics_renders_each_kind(self):
        registry = MetricsRegistry()
        registry.counter("solve.batches").inc(7)
        registry.gauge("spool.queued").set(2)
        registry.histogram("solve.seconds").observe(0.3)
        text = format_metrics(registry.snapshot())
        assert "solve.batches (counter) 7" in text
        assert "spool.queued (gauge) 2" in text
        assert "solve.seconds (histogram) count=1" in text and "p99=" in text
        assert format_metrics({}) == "metrics: none recorded"


# -- store: cumulative stats across sessions ------------------------------------------


class TestStoreCumulativeStats:
    def test_stats_survive_across_store_sessions(self, tmp_path):
        root = tmp_path / "store"
        first = ResultStore(root)
        first.put_layout("a" * 64, (1, None, 2))
        assert first.get_layout("a" * 64) is not None
        first.persist_stats()
        # A second session (another process in real life) adds its own traffic.
        second = ResultStore(root)
        assert second.get_layout("b" * 64) is None  # miss
        total = second.cumulative_stats()
        assert (total.hits, total.misses, total.writes) == (1, 1, 1)
        # The module-level reader sees both sessions without opening a store.
        persisted = read_cumulative_store_stats(root)
        assert (persisted.hits, persisted.misses, persisted.writes) == (1, 1, 1)

    def test_reader_tolerates_garbage_session_files(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        store.put_layout("c" * 64, (1,))
        store.persist_stats()
        (root / "stats" / "junk.json").write_text("not json", encoding="utf-8")
        (root / "stats" / "odd.json").write_text('{"stats": 3}', encoding="utf-8")
        assert read_cumulative_store_stats(root).writes == 1

    def test_reader_returns_zero_for_missing_store(self, tmp_path):
        stats = read_cumulative_store_stats(tmp_path / "nowhere")
        assert stats.hits == stats.misses == stats.writes == 0


# -- snapshots: event log vs spool ----------------------------------------------------


class TestSnapshots:
    def _settle_jobs(self, root):
        submit_job(root, "smoke")
        submit_job(root, "smoke", params={"seed": 9})
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.run(max_jobs=2, idle_exit=0.05) == 2

    def test_service_status_keeps_its_dict_shape(self, tmp_path):
        root = tmp_path / "svc"
        self._settle_jobs(root)
        report = service_status(root)
        assert set(report) == {"root", "daemon", "jobs", "cache_totals", "store", "cluster"}
        assert set(report["daemon"]) == {"alive", "heartbeat_age", "heartbeat"}
        assert report["jobs"]["counts"] == {"done": 2}
        assert len(report["jobs"]["records"]) == 2
        assert report["cache_totals"]["misses"] > 0
        assert report["store"]["entries"] > 0
        assert report["cluster"] is None
        snapshot = ServiceSnapshot.collect(root)
        assert snapshot.to_dict()["jobs"] == report["jobs"]
        json.dumps(report)  # stays JSON-serialisable end to end

    def test_job_statuses_from_events_match_the_spool(self, tmp_path):
        root = tmp_path / "svc"
        self._settle_jobs(root)
        from_spool = {
            record["job_id"]: record["status"]
            for record in service_status(root)["jobs"]["records"]
        }
        assert job_statuses_from_events(root) == from_spool
        assert job_counts_from_events(root) == {"done": 2}

    def test_job_statuses_from_events_none_without_a_log(self, tmp_path):
        assert job_statuses_from_events(tmp_path / "empty") is None

    def test_daemon_emits_the_full_job_lifecycle(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.run(max_jobs=1, idle_exit=0.05) == 1
        lifecycle = [r["event"] for r in read_events(root, job_id=job.job_id)]
        assert lifecycle == ["submitted", "claimed", "released"]
        released = read_events(root, job_id=job.job_id, event="released")[0]
        assert released["status"] == "done" and released["latency"] >= 0.0
        snapshots = read_events(root, event="metrics")
        assert snapshots and all("metrics" in r for r in snapshots)
        merged = merge_snapshots(
            [r["metrics"] for r in snapshots if r["writer"] == snapshots[-1]["writer"]][-1:]
        )
        assert merged["solve.seconds"]["count"] == 1

    def test_loadgen_event_report_matches_spool_scan(self, tmp_path):
        root = tmp_path / "svc"
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        thread = threading.Thread(target=worker.run, kwargs={"idle_exit": 0.5})
        thread.start()
        try:
            report = run_loadgen(root, "smoke", jobs=3, timeout=30.0, poll=0.05, verify=True)
        finally:
            thread.join()
        assert report.done == 3 and report.timed_out == 0
        check = report.spool_check
        assert check is not None
        assert (check["done"], check["failed"], check["cancelled"]) == (3, 0, 0)
        payload = report.to_dict()
        assert payload["latency_p50"] <= payload["latency_p99"] <= payload["latency_max"]
        assert abs(payload["latency_p50"] - check["latency_p50"]) < 0.5
        # The smoke scenario is greedy-only: no anneal counters, no rate.
        assert report.anneal_steps_per_s is None
        assert "mean anneal step rate" not in "\n".join(format_loadgen_report(report))

    def test_loadgen_reports_anneal_step_rate_for_annealed_scenarios(self, tmp_path):
        root = tmp_path / "svc"
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        thread = threading.Thread(target=worker.run, kwargs={"idle_exit": 0.5})
        thread.start()
        try:
            report = run_loadgen(root, "dense-bus", jobs=2, timeout=60.0, poll=0.05)
        finally:
            thread.join()
        assert report.done == 2
        # dense-bus anneals its panels, so the workers' anneal.steps /
        # anneal.seconds counters reach the metrics snapshots and the report
        # derives a mean step rate from the merged fleet view.
        assert report.anneal_steps_per_s is not None
        assert report.anneal_steps_per_s > 0.0
        assert report.to_dict()["anneal_steps_per_s"] == round(report.anneal_steps_per_s, 1)
        assert "mean anneal step rate" in "\n".join(format_loadgen_report(report))


# -- CLI verbs ------------------------------------------------------------------------


class TestObsCli:
    def _settled_root(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.run(max_jobs=1, idle_exit=0.05) == 1
        return root, job

    def test_events_verb_prints_human_lines(self, tmp_path, capsys):
        root, job = self._settled_root(tmp_path)
        assert main(["events", "--root", str(root)]) == 0
        output = capsys.readouterr().out
        assert f"submitted job={job.job_id}" in output
        assert "released" in output and "metrics=<snapshot>" in output

    def test_events_verb_json_job_filter_proves_exactly_once(self, tmp_path, capsys):
        root, job = self._settled_root(tmp_path)
        assert main(["events", "--root", str(root), "--job", job.job_id, "--json"]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [r["event"] for r in records] == ["submitted", "claimed", "released"]
        assert all(r["job"] == job.job_id for r in records)

    def test_events_verb_tail_limits_output(self, tmp_path, capsys):
        root, _job = self._settled_root(tmp_path)
        assert main(["events", "--root", str(root), "--tail", "1", "--json"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1

    def test_events_verb_on_empty_root(self, tmp_path, capsys):
        assert main(["events", "--root", str(tmp_path / "empty")]) == 0
        assert "no events recorded" in capsys.readouterr().out

    def test_metrics_verb_aggregates_solves_and_store(self, tmp_path, capsys):
        root, _job = self._settled_root(tmp_path)
        assert main(["metrics", "--root", str(root)]) == 0
        output = capsys.readouterr().out
        assert "solve.seconds (histogram) count=1" in output
        assert "store lifetime:" in output
        assert main(["metrics", "--root", str(root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["solve.seconds"]["count"] == 1
        assert payload["store"]["writes"] > 0
        assert len(payload["writers"]) == 1

    def test_metrics_verb_on_empty_root(self, tmp_path, capsys):
        assert main(["metrics", "--root", str(tmp_path / "empty")]) == 0
        assert "metrics: none recorded" in capsys.readouterr().out

    def test_flows_trace_flag_prints_report(self, capsys):
        code = main(
            ["flows", "--run", "id_no", "--trace", "--scale", "0.015", "--seed", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "trace report" in output
        assert "stage." in output
        assert "engine.solve_tasks" in output

    def test_format_event_is_greppable(self):
        line = format_event(
            {"v": 1, "seq": 4, "ts": 12.5, "writer": "w", "event": "claimed", "job": "j1"}
        )
        assert "w#4 claimed" in line and "job=j1" in line

    def test_gc_verb_emits_a_gc_event(self, tmp_path, capsys):
        root, _job = self._settled_root(tmp_path)
        assert main(["gc", "--root", str(root), "--purge-jobs"]) == 0
        capsys.readouterr()
        events = read_events(root, event="gc")
        assert events and events[-1]["purged_jobs"] == 1
