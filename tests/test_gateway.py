"""Tests for the gateway tier (policy classes, batch submit, HTTP server, loadgen).

The policy section is the tier-1 contract the ISSUE asks for: token-bucket
refill/burst math, bounded-queue overflow ordering and batcher flush
semantics, all with explicit clocks so nothing sleeps.  The socket-level
section proves the properties that matter end-to-end: a rejected client's
job never reaches the spool, admitted work is exactly-once in the spool
and event log, and a stopping gateway flushes what it admitted.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import pytest

from repro.obs.aggregate import iter_merged_events
from repro.obs.events import EventLog
from repro.obs.snapshot import collect_gateway
from repro.service import (
    ServiceConfig,
    ServiceDaemon,
    SubmitRequest,
    service_status,
    submit_job,
    submit_jobs,
)
from repro.service.gateway import (
    AdmissionQueue,
    GatewayConfig,
    GatewayRunner,
    MicroBatcher,
    TokenBucket,
    TokenBucketTable,
    format_http_loadgen_report,
    run_http_loadgen,
)
from repro.service.gateway.loadgen import HttpLoadgenReport, _nearest_rank


# -- token bucket ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_admits_then_rejects(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.acquire(now=0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        # Bucket empty: the hint is exactly the time until one token refills.
        assert bucket.acquire(now=0.0) == pytest.approx(1.0)

    def test_rejection_consumes_nothing(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.acquire(now=0.0) == 0.0
        first_hint = bucket.acquire(now=0.0)
        assert first_hint == pytest.approx(0.5)
        # Asking again at the same instant gives the same answer: rejected
        # requests must not drain the bucket further.
        assert bucket.acquire(now=0.0) == pytest.approx(0.5)

    def test_refill_is_proportional_to_elapsed_time(self):
        bucket = TokenBucket(rate=4.0, burst=8)
        for _ in range(8):
            assert bucket.acquire(now=10.0) == 0.0
        # 0.75s at 4 tokens/s refills 3 tokens.
        assert bucket.acquire(now=10.75) == 0.0
        assert bucket.acquire(now=10.75) == 0.0
        assert bucket.acquire(now=10.75) == 0.0
        assert bucket.acquire(now=10.75) > 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.acquire(now=0.0) == 0.0
        # An hour idle still holds only `burst` tokens.
        assert bucket.acquire(now=3600.0) == 0.0
        assert bucket.acquire(now=3600.0) == 0.0
        assert bucket.acquire(now=3600.0) > 0.0

    def test_retry_after_shrinks_as_time_passes(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.acquire(now=0.0)
        assert bucket.acquire(now=0.0) == pytest.approx(1.0)
        assert bucket.acquire(now=0.6) == pytest.approx(0.4)

    def test_clock_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.acquire(now=100.0) == 0.0
        # A non-monotonic caller must not produce negative refill.
        assert bucket.acquire(now=99.0) == pytest.approx(1.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestTokenBucketTable:
    def test_clients_have_independent_budgets(self):
        table = TokenBucketTable(rate=1.0, burst=1)
        assert table.acquire("alice", now=0.0) == 0.0
        assert table.acquire("alice", now=0.0) > 0.0
        assert table.acquire("bob", now=0.0) == 0.0

    def test_lru_eviction_bounds_the_table(self):
        table = TokenBucketTable(rate=1.0, burst=1, max_clients=2)
        assert table.acquire("a", now=0.0) == 0.0
        assert table.acquire("b", now=0.0) == 0.0
        assert table.acquire("c", now=0.0) == 0.0  # evicts "a"
        assert len(table) == 2
        # "a" comes back with a fresh bucket (evicting "b"); "c" kept its
        # drained one — the eviction reset only ever helps idle clients.
        assert table.acquire("a", now=0.0) == 0.0
        assert len(table) == 2
        assert table.acquire("c", now=0.0) > 0.0

    def test_recent_use_protects_against_eviction(self):
        table = TokenBucketTable(rate=1.0, burst=2, max_clients=2)
        table.acquire("a", now=0.0)
        table.acquire("b", now=0.0)
        table.acquire("a", now=0.0)  # refresh "a"; "b" is now LRU
        table.acquire("c", now=0.0)  # evicts "b"
        assert table.acquire("a", now=0.0) > 0.0  # drained bucket survived


# -- admission queue -------------------------------------------------------------------


class TestAdmissionQueue:
    def test_overflow_rejects_without_queueing(self):
        queue = AdmissionQueue(max_depth=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert len(queue) == 2
        assert queue.accepted == 2 and queue.rejected == 1

    def test_take_preserves_fifo_order_across_overflow(self):
        queue = AdmissionQueue(max_depth=3)
        for item in ("a", "b", "c"):
            assert queue.offer(item)
        assert not queue.offer("d")
        assert queue.take(limit=2) == ["a", "b"]
        # Rejected "d" never entered; room freed, later arrivals go behind "c".
        assert queue.offer("e")
        assert queue.take() == ["c", "e"]
        assert len(queue) == 0

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)


# -- micro-batcher ---------------------------------------------------------------------


class TestMicroBatcher:
    def test_flush_on_size(self):
        batcher = MicroBatcher(max_batch=3, max_delay=60.0)
        assert batcher.add("a", now=0.0) is None
        assert batcher.add("b", now=0.0) is None
        assert batcher.add("c", now=0.0) == ["a", "b", "c"]
        assert len(batcher) == 0

    def test_flush_on_deadline_uses_oldest_item_age(self):
        batcher = MicroBatcher(max_batch=100, max_delay=0.5)
        batcher.add("a", now=0.0)
        batcher.add("b", now=0.4)  # newer item must not extend the deadline
        assert batcher.poll(now=0.49) is None
        assert batcher.poll(now=0.5) == ["a", "b"]
        assert batcher.poll(now=1.0) is None  # empty again

    def test_next_deadline_tracks_oldest_item(self):
        batcher = MicroBatcher(max_batch=100, max_delay=2.0)
        assert batcher.next_deadline() is None
        batcher.add("a", now=10.0)
        batcher.add("b", now=11.0)
        assert batcher.next_deadline() == pytest.approx(12.0)
        batcher.flush()
        assert batcher.next_deadline() is None

    def test_flush_counts_batches(self):
        batcher = MicroBatcher(max_batch=2, max_delay=60.0)
        batcher.add("a", now=0.0)
        batcher.add("b", now=0.0)
        batcher.add("c", now=0.0)
        batcher.flush()
        assert batcher.batches == 2  # the size flush and the manual flush
        assert batcher.flush() == []
        assert batcher.batches == 2  # empty flushes do not count

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0, max_delay=1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=1, max_delay=-0.1)


# -- batched submission ----------------------------------------------------------------


class TestSubmitJobs:
    def test_batch_writes_every_record_and_event(self, tmp_path):
        requests = [SubmitRequest(scenario="smoke", params={"seed": i}) for i in range(3)]
        jobs = submit_jobs(tmp_path, requests)
        assert len(jobs) == 3
        assert len({job.job_id for job in jobs}) == 3
        records = sorted(path.stem for path in (tmp_path / "jobs").glob("*.json"))
        assert records == sorted(job.job_id for job in jobs)
        submitted = [e for e in iter_merged_events(tmp_path) if e["event"] == "submitted"]
        assert sorted(e["job"] for e in submitted) == sorted(job.job_id for job in jobs)

    def test_batch_events_use_the_callers_writer(self, tmp_path):
        log = EventLog(tmp_path, writer="front-door")
        submit_jobs(tmp_path, [SubmitRequest(scenario="smoke")], events=log)
        (event,) = [e for e in iter_merged_events(tmp_path) if e["event"] == "submitted"]
        assert event["writer"] == "front-door"

    def test_invalid_request_rejects_the_whole_batch(self, tmp_path):
        requests = [
            SubmitRequest(scenario="smoke"),
            SubmitRequest(scenario="no-such-scenario"),
        ]
        with pytest.raises(KeyError):
            submit_jobs(tmp_path, requests)
        assert not (tmp_path / "jobs").exists()  # nothing half-submitted

    def test_duplicate_id_within_batch_rejects_before_writing(self, tmp_path):
        requests = [
            SubmitRequest(scenario="smoke", job_id="twin"),
            SubmitRequest(scenario="smoke", job_id="twin"),
        ]
        with pytest.raises(ValueError, match="already exists"):
            submit_jobs(tmp_path, requests)
        assert not (tmp_path / "jobs").exists()

    def test_duplicate_id_against_spool_rejects(self, tmp_path):
        submit_job(tmp_path, "smoke", job_id="taken")
        with pytest.raises(ValueError, match="'taken' already exists"):
            submit_jobs(tmp_path, [SubmitRequest(scenario="smoke", job_id="taken")])

    def test_submit_job_still_delegates(self, tmp_path):
        job = submit_job(tmp_path, "smoke", params={"seed": 5}, priority=3)
        assert (tmp_path / "jobs" / f"{job.job_id}.json").exists()
        assert job.priority == 3


# -- live server -----------------------------------------------------------------------


def _gateway(tmp_path, submit_fn=None, **overrides):
    defaults = dict(
        root=tmp_path,
        port=0,
        rate=1000.0,
        burst=1000.0,
        batch_delay=0.01,
        heartbeat_interval=0.2,
    )
    defaults.update(overrides)
    return GatewayRunner(GatewayConfig(**defaults), submit_fn=submit_fn).start()


def _request(port, method, path, payload=None, client=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        headers = {"Content-Type": "application/json"}
        if client:
            headers["X-Repro-Client"] = client
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()
        try:
            parsed = json.loads(data)
        except json.JSONDecodeError:
            parsed = data.decode("utf-8", "replace")
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


class TestGatewayServer:
    def test_healthz_reports_queue_and_counters(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            status, _, payload = _request(runner.port, "GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["queue"]["capacity"] == 256
            assert payload["counters"]["gateway.requests"] >= 1
        finally:
            runner.stop()

    def test_submit_writes_spool_record_and_status_roundtrip(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            status, _, payload = _request(
                runner.port, "POST", "/v1/jobs", {"scenario": "smoke", "priority": 2}
            )
            assert status == 202
            job_id = payload["job_id"]
            assert payload["status"] == "queued"
            record = json.loads((tmp_path / "jobs" / f"{job_id}.json").read_text())
            assert record["priority"] == 2
            status, _, seen = _request(runner.port, "GET", f"/v1/jobs/{job_id}")
            assert status == 200 and seen["status"] == "queued" and seen["terminal"] is False
        finally:
            runner.stop()

    def test_bad_requests_get_4xx_not_spool_writes(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            cases = [
                ("POST", "/v1/jobs", {"scenario": "no-such-scenario"}, 400),
                ("POST", "/v1/jobs", {"scenario": "smoke", "params": {"bogus": 1}}, 400),
                ("POST", "/v1/jobs", {"params": {}}, 400),
                ("GET", "/v1/jobs/never-submitted", None, 404),
                ("POST", "/v1/jobs/some-id", {"scenario": "smoke"}, 405),
                ("GET", "/v1/nope", None, 404),
            ]
            for method, path, payload, expected in cases:
                status, _, _ = _request(runner.port, method, path, payload)
                assert status == expected, (method, path)
            assert not list((tmp_path / "jobs").glob("*.json")) if (
                tmp_path / "jobs"
            ).exists() else True
        finally:
            runner.stop()

    def test_scenarios_endpoint_lists_registry(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            status, _, payload = _request(runner.port, "GET", "/v1/scenarios")
            assert status == 200
            names = [entry["name"] for entry in payload["scenarios"]]
            assert "smoke" in names
        finally:
            runner.stop()

    def test_rate_limited_job_never_reaches_the_spool(self, tmp_path):
        """The socket-level backpressure proof: 429 means zero spool bytes."""
        runner = _gateway(tmp_path, rate=0.001, burst=2)
        try:
            statuses = []
            for seed in range(4):
                status, headers, payload = _request(
                    runner.port,
                    "POST",
                    "/v1/jobs",
                    {"scenario": "smoke", "params": {"seed": seed}},
                    client="greedy",
                )
                statuses.append(status)
                if status == 429:
                    assert int(headers["Retry-After"]) >= 1
                    assert "retry after" in payload["error"]
            assert statuses == [202, 202, 429, 429]
            # Exactly the two admitted jobs exist; the rejected ones left no trace.
            assert len(list((tmp_path / "jobs").glob("*.json"))) == 2
            rejected = [
                e for e in iter_merged_events(tmp_path) if e["event"] == "gateway-rejected"
            ]
            assert len(rejected) == 2
            assert {e["reason"] for e in rejected} == {"rate"}
            assert all(e["client"] == "greedy" for e in rejected)
        finally:
            runner.stop()

    def test_distinct_clients_have_distinct_budgets(self, tmp_path):
        runner = _gateway(tmp_path, rate=0.001, burst=1)
        try:
            for name in ("c1", "c2", "c3"):
                status, _, _ = _request(
                    runner.port, "POST", "/v1/jobs", {"scenario": "smoke"}, client=name
                )
                assert status == 202
            status, _, _ = _request(
                runner.port, "POST", "/v1/jobs", {"scenario": "smoke"}, client="c1"
            )
            assert status == 429
        finally:
            runner.stop()

    def test_full_admission_queue_answers_429_queue(self, tmp_path):
        """Wedge the spool write; the bounded queue must reject, not grow."""
        release = threading.Event()
        started = threading.Event()

        def slow_submit(root, requests, events=None):
            started.set()
            assert release.wait(timeout=30.0)
            return submit_jobs(root, requests, events=events)

        runner = _gateway(
            tmp_path, submit_fn=slow_submit, queue_depth=2, batch_max=1, batch_delay=0.0
        )
        results = []

        def post(seed):
            results.append(
                _request(
                    runner.port,
                    "POST",
                    "/v1/jobs",
                    {"scenario": "smoke", "params": {"seed": seed}},
                    client=f"c{seed}",
                )
            )

        try:
            first = threading.Thread(target=post, args=(0,))
            first.start()
            assert started.wait(timeout=10.0)  # batch 1 is wedged in the executor
            backlog = [threading.Thread(target=post, args=(seed,)) for seed in (1, 2)]
            for thread in backlog:
                thread.start()
            deadline = time.monotonic() + 10.0
            while len(runner.gateway.queue) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            status, headers, _ = _request(
                runner.port, "POST", "/v1/jobs", {"scenario": "smoke"}, client="late"
            )
            assert status == 429
            assert "Retry-After" in headers
            release.set()
            first.join(timeout=30.0)
            for thread in backlog:
                thread.join(timeout=30.0)
            assert sorted(status for status, _, _ in results) == [202, 202, 202]
            rejected = [
                e for e in iter_merged_events(tmp_path) if e["event"] == "gateway-rejected"
            ]
            assert [e["reason"] for e in rejected] == ["queue"]
        finally:
            release.set()
            runner.stop()

    def test_concurrent_burst_is_batched_and_exactly_once(self, tmp_path):
        runner = _gateway(tmp_path, batch_max=16, batch_delay=0.2)
        try:
            report = run_http_loadgen(runner.url, jobs=12, clients=4, wait=False)
            assert report.admitted == 12 and report.errors == 0
            records = sorted(path.stem for path in (tmp_path / "jobs").glob("*.json"))
            assert records == sorted(report.job_ids)  # exactly-once, no extras
            admitted_events = [
                e for e in iter_merged_events(tmp_path) if e["event"] == "gateway-admitted"
            ]
            assert sorted(e["job"] for e in admitted_events) == records
            # Micro-batching amortized the writes: far fewer batches than jobs.
            assert runner.gateway.batcher.batches < 12
        finally:
            runner.stop()

    def test_stop_flushes_admitted_submissions(self, tmp_path):
        """An accepted 202 must never be lost to a graceful shutdown."""
        runner = _gateway(tmp_path, batch_max=100, batch_delay=60.0)
        responses = []

        def post(seed):
            responses.append(
                _request(
                    runner.port, "POST", "/v1/jobs", {"scenario": "smoke", "params": {"seed": seed}}
                )
            )

        threads = [threading.Thread(target=post, args=(seed,)) for seed in range(2)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            depth = len(runner.gateway.queue) + len(runner.gateway.batcher)
            if depth >= 2:
                break
            time.sleep(0.01)
        runner.stop()  # graceful stop: final drain writes the wedged batch
        for thread in threads:
            thread.join(timeout=30.0)
        assert [status for status, _, _ in responses] == [202, 202]
        assert len(list((tmp_path / "jobs").glob("*.json"))) == 2

    def test_event_stream_replays_job_history(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            _, _, payload = _request(runner.port, "POST", "/v1/jobs", {"scenario": "smoke"})
            job_id = payload["job_id"]
            ServiceDaemon(ServiceConfig(root=tmp_path, poll_interval=0.01)).run(
                max_jobs=1, idle_exit=30.0
            )
            connection = http.client.HTTPConnection("127.0.0.1", runner.port, timeout=30)
            try:
                connection.request("GET", f"/v1/jobs/{job_id}/events?timeout=20")
                response = connection.getresponse()
                assert response.status == 200
                assert response.getheader("Content-Type") == "application/x-ndjson"
                lines = response.read().decode("utf-8").splitlines()
            finally:
                connection.close()
            events = [json.loads(line)["event"] for line in lines if line.strip()]
            assert events[0] == "submitted"
            assert "claimed" in events
            assert events[-1] == "released"  # terminal transition closes the stream
        finally:
            runner.stop()

    def test_gateway_emits_lifecycle_events_and_metrics(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            _request(runner.port, "POST", "/v1/jobs", {"scenario": "smoke"})
        finally:
            runner.stop()
        events = list(iter_merged_events(tmp_path))
        names = [e["event"] for e in events]
        assert "gateway-started" in names
        assert "gateway-admitted" in names
        assert names[-1] == "gateway-stopped"
        metrics_events = [e for e in events if e["event"] == "metrics"]
        assert metrics_events, "traffic must produce at least one metrics snapshot"
        snapshot = metrics_events[-1]["metrics"]
        assert snapshot["gateway.requests"]["value"] >= 1.0
        assert snapshot["gateway.admitted"]["value"] == 1.0
        assert "gateway.submit.seconds" in snapshot

    def test_heartbeat_feeds_status_snapshot(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            _request(runner.port, "POST", "/v1/jobs", {"scenario": "smoke"})
            snapshot = collect_gateway(tmp_path)
            assert snapshot is not None and snapshot.alive
            assert snapshot.heartbeat["port"] == runner.port
            report = service_status(tmp_path)
            assert report["gateway"]["alive"] is True
        finally:
            runner.stop()
        report = service_status(tmp_path)
        assert report["gateway"]["alive"] is False  # stopped heartbeat is not liveness
        assert report["gateway"]["heartbeat"]["counters"]["gateway.admitted"] == 1

    def test_roots_without_a_gateway_keep_the_historical_shape(self, tmp_path):
        submit_job(tmp_path, "smoke")
        report = service_status(tmp_path)
        assert "gateway" not in report
        assert collect_gateway(tmp_path) is None


# -- HTTP loadgen ----------------------------------------------------------------------


class TestHttpLoadgen:
    def test_nearest_rank_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert _nearest_rank(values, 0.50) == 50.0
        assert _nearest_rank(values, 0.99) == 100.0
        assert _nearest_rank(values, 1.0) == 100.0  # clamped to the max sample
        assert _nearest_rank([], 0.5) is None

    def test_report_dict_carries_submit_percentiles(self):
        report = HttpLoadgenReport(url="http://x", scenario="smoke", clients=2)
        report.attempted = 4
        report.admitted = 4
        report.submit_latencies = [0.010, 0.020, 0.030, 0.040]
        report.wall_seconds = 2.0
        payload = report.to_dict()
        assert payload["submit_p50"] == 0.020
        assert payload["submit_p99"] == 0.040
        assert payload["submit_rate"] == 2.0

    def test_over_rate_burst_sees_429_and_retries_to_completion(self, tmp_path):
        runner = _gateway(tmp_path, rate=5.0, burst=1, batch_delay=0.0)
        try:
            report = run_http_loadgen(
                runner.url, jobs=5, clients=1, wait=False, timeout=60.0
            )
            assert report.admitted == 5  # Retry-After obeyed until admitted
            assert report.rejected_429 >= 1
            assert report.retry_after_max >= 1.0
            lines = "\n".join(format_http_loadgen_report(report))
            assert "Retry-After" in lines
        finally:
            runner.stop()

    def test_no_retry_mode_gives_up_on_429(self, tmp_path):
        runner = _gateway(tmp_path, rate=0.001, burst=2)
        try:
            report = run_http_loadgen(
                runner.url, jobs=6, clients=1, wait=False, retry_429=False
            )
            assert report.admitted == 2
            assert report.rejected_429 == 4
        finally:
            runner.stop()

    def test_wait_mode_polls_jobs_to_completion_over_http(self, tmp_path):
        runner = _gateway(tmp_path)
        daemon = ServiceDaemon(ServiceConfig(root=tmp_path, poll_interval=0.02))
        worker = threading.Thread(
            target=lambda: daemon.run(max_jobs=4, idle_exit=60.0), daemon=True
        )
        worker.start()
        try:
            report = run_http_loadgen(runner.url, jobs=4, clients=2, wait=True, timeout=120.0)
            assert report.waited
            assert report.done == 4 and report.timed_out == 0
            lines = format_http_loadgen_report(report)
            assert lines[0] == "http loadgen: 4 done, 0 failed, 0 cancelled of 4 admitted"
            assert any("429 rejected: 0" in line for line in lines)
        finally:
            worker.join(timeout=120.0)
            runner.stop()

    def test_seeds_are_strided_across_the_burst(self, tmp_path):
        runner = _gateway(tmp_path)
        try:
            run_http_loadgen(runner.url, jobs=6, clients=3, wait=False)
            seeds = set()
            for path in (tmp_path / "jobs").glob("*.json"):
                seeds.add(json.loads(path.read_text())["params"]["seed"])
            assert len(seeds) == 6  # distinct seeds -> no accidental cache collapse
        finally:
            runner.stop()


# -- CLI wiring ------------------------------------------------------------------------


class TestGatewayCli:
    def test_gateway_parser_accepts_issue_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "gateway",
                "--root",
                "svc",
                "--port",
                "9000",
                "--rate",
                "10",
                "--burst",
                "20",
                "--queue-depth",
                "64",
            ]
        )
        assert args.command == "gateway"
        assert (args.port, args.rate, args.burst, args.queue_depth) == (9000, 10.0, 20.0, 64)

    def test_loadgen_parser_accepts_http_mode(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["loadgen", "--http", "http://127.0.0.1:8750", "--jobs", "24", "--clients", "8"]
        )
        assert args.http == "http://127.0.0.1:8750"
        assert args.clients == 8
        assert args.root is None

    def test_loadgen_requires_root_or_http(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--root"):
            main(["loadgen", "--jobs", "2"])

    def test_loadgen_http_rejects_verify(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="verify"):
            main(["loadgen", "--http", "http://127.0.0.1:1", "--verify"])

    def test_cli_loadgen_http_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        runner = _gateway(tmp_path)
        try:
            code = main(
                [
                    "loadgen",
                    "--http",
                    runner.url,
                    "--jobs",
                    "4",
                    "--clients",
                    "2",
                    "--no-wait",
                ]
            )
        finally:
            runner.stop()
        out = capsys.readouterr().out
        assert code == 0
        assert "http loadgen: 4 admitted of 4 attempted" in out
        assert "submit latency p50=" in out

    def test_cli_status_renders_gateway_section(self, tmp_path, capsys):
        from repro.cli import main

        runner = _gateway(tmp_path)
        try:
            _request(runner.port, "POST", "/v1/jobs", {"scenario": "smoke"})
            assert main(["status", "--root", str(tmp_path)]) == 0
        finally:
            runner.stop()
        out = capsys.readouterr().out
        assert "gateway: listening on 127.0.0.1:" in out
        assert "admitted=1" in out

    def test_cli_status_omits_gateway_section_without_heartbeat(self, tmp_path, capsys):
        from repro.cli import main

        submit_job(tmp_path, "smoke")
        assert main(["status", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "gateway:" not in out and "gateway traffic:" not in out
