"""Tests for the coupled-line panel circuits (the SPICE substitute)."""

import pytest

from repro.circuit.coupled_lines import (
    CoupledLineConfig,
    WireRole,
    build_panel_circuit,
    roles_from_string,
    simulate_panel_noise,
)
from repro.tech.itrs import ITRS_100NM


@pytest.fixture(scope="module")
def config(interface_model):
    return CoupledLineConfig(
        technology=ITRS_100NM,
        interface=interface_model,
        wire_length=1.5e-3,
        segments_per_wire=3,
    )


class TestRoleParsing:
    def test_roles_from_string(self):
        roles = roles_from_string("AVSQ")
        assert roles == (WireRole.AGGRESSOR, WireRole.VICTIM, WireRole.SHIELD, WireRole.QUIET)

    def test_roles_from_string_lowercase_and_spaces(self):
        assert roles_from_string(" avs ") == (WireRole.AGGRESSOR, WireRole.VICTIM, WireRole.SHIELD)

    def test_roles_from_string_rejects_unknown(self):
        with pytest.raises(ValueError):
            roles_from_string("AVX")

    def test_is_signal(self):
        assert WireRole.VICTIM.is_signal
        assert WireRole.AGGRESSOR.is_signal
        assert not WireRole.SHIELD.is_signal


class TestPanelConstruction:
    def test_panel_requires_victim(self, config):
        with pytest.raises(ValueError):
            build_panel_circuit(config, roles_from_string("AAQ"))

    def test_panel_requires_tracks(self, config):
        with pytest.raises(ValueError):
            build_panel_circuit(config, ())

    def test_panel_structure(self, config):
        panel = build_panel_circuit(config, roles_from_string("AVS"))
        assert len(panel.sink_nodes) == 3
        assert len(panel.victim_sinks()) == 1
        # Aggressor and victim have drivers + loads; shield has none.
        assert any(name.startswith("vsrc") for name in (s.name for s in panel.circuit.sources))
        panel.circuit.validate()

    def test_config_validation(self, interface_model):
        with pytest.raises(ValueError):
            CoupledLineConfig(ITRS_100NM, interface_model, wire_length=0.0)
        with pytest.raises(ValueError):
            CoupledLineConfig(ITRS_100NM, interface_model, wire_length=1e-3, segments_per_wire=0)
        with pytest.raises(ValueError):
            CoupledLineConfig(ITRS_100NM, interface_model, wire_length=1e-3, shield_resistance=0.0)


class TestPanelNoisePhysics:
    """The qualitative behaviours the LSK characterisation relies on."""

    def test_noise_is_positive_with_an_aggressor(self, config):
        noise, _ = simulate_panel_noise(config, roles_from_string("AV"), num_steps=300)
        assert noise > 0.01

    def test_shield_between_reduces_noise(self, config):
        unshielded, _ = simulate_panel_noise(config, roles_from_string("AVA"), num_steps=300)
        shielded, _ = simulate_panel_noise(config, roles_from_string("ASVSA"), num_steps=300)
        assert shielded < 0.6 * unshielded

    def test_more_aggressors_more_noise(self, config):
        one, _ = simulate_panel_noise(config, roles_from_string("AVQ"), num_steps=300)
        two, _ = simulate_panel_noise(config, roles_from_string("AVA"), num_steps=300)
        four, _ = simulate_panel_noise(config, roles_from_string("AAVAA"), num_steps=300)
        assert one < two < four

    def test_quiet_neighbour_less_noise_than_aggressor(self, config):
        quiet, _ = simulate_panel_noise(config, roles_from_string("AVQ"), num_steps=300)
        aggressive, _ = simulate_panel_noise(config, roles_from_string("AVA"), num_steps=300)
        assert quiet < aggressive

    def test_distance_reduces_noise(self, config):
        near, _ = simulate_panel_noise(config, roles_from_string("AVQQ"), num_steps=300)
        far, _ = simulate_panel_noise(config, roles_from_string("VQQA"), num_steps=300)
        assert far < near

    def test_noise_below_supply(self, config):
        noise, _ = simulate_panel_noise(config, roles_from_string("AAVAA"), num_steps=300)
        assert noise < config.interface.driver.vdd

    def test_result_contains_victim_waveform(self, config):
        _, result = simulate_panel_noise(config, roles_from_string("AV"), num_steps=200)
        panel = build_panel_circuit(config, roles_from_string("AV"))
        victim_sink = panel.victim_sinks()[0]
        assert victim_sink in result.node_voltages
