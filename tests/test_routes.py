"""Tests for route trees, routing solutions, congestion and the area model."""

import pytest

from repro.grid.area import AreaReport, routing_area
from repro.grid.congestion import CongestionMap, RegionUsage
from repro.grid.nets import Net, Netlist, Pin
from repro.grid.regions import HORIZONTAL, VERTICAL, RoutingGrid
from repro.grid.routes import RouteTree, RoutingSolution, normalize_edge


@pytest.fixture
def grid():
    return RoutingGrid(
        num_cols=3,
        num_rows=3,
        chip_width=300.0,
        chip_height=300.0,
        horizontal_capacity=4,
        vertical_capacity=4,
        track_pitch_um=1.0,
    )


@pytest.fixture
def l_route():
    """An L-shaped two-pin route: (0,0) -> (1,0) -> (1,1)."""
    return RouteTree(
        net_id=0,
        pin_regions=((0, 0), (1, 1)),
        edges=frozenset({((0, 0), (1, 0)), ((1, 0), (1, 1))}),
    )


class TestRouteTree:
    def test_normalize_edge(self):
        assert normalize_edge((1, 0), (0, 0)) == ((0, 0), (1, 0))
        assert normalize_edge((0, 0), (1, 0)) == ((0, 0), (1, 0))

    def test_regions_and_tree_checks(self, l_route):
        assert l_route.regions() == {(0, 0), (1, 0), (1, 1)}
        assert l_route.is_connected()
        assert l_route.is_tree()

    def test_single_region_net_is_a_tree(self):
        route = RouteTree(net_id=1, pin_regions=((2, 2),))
        assert route.is_tree()
        assert route.regions() == {(2, 2)}

    def test_disconnected_is_not_a_tree(self):
        route = RouteTree(net_id=2, pin_regions=((0, 0), (2, 2)), edges=frozenset())
        assert not route.is_connected()
        assert not route.is_tree()

    def test_cycle_is_not_a_tree(self):
        route = RouteTree(
            net_id=3,
            pin_regions=((0, 0), (1, 1)),
            edges=frozenset({
                ((0, 0), (1, 0)), ((1, 0), (1, 1)), ((0, 1), (1, 1)), ((0, 0), (0, 1)),
            }),
        )
        assert route.is_connected()
        assert not route.is_tree()

    def test_requires_pin_regions(self):
        with pytest.raises(ValueError):
            RouteTree(net_id=0, pin_regions=())

    def test_wirelength(self, grid, l_route):
        assert l_route.wirelength_um(grid) == pytest.approx(200.0)

    def test_direction_usage(self, grid, l_route):
        usage = l_route.direction_usage(grid)
        assert usage[(0, 0)] == {HORIZONTAL}
        assert usage[(1, 0)] == {HORIZONTAL, VERTICAL}
        assert usage[(1, 1)] == {VERTICAL}

    def test_region_lengths_sum_to_wirelength(self, grid, l_route):
        lengths = l_route.region_lengths_um(grid)
        assert sum(lengths.values()) == pytest.approx(l_route.wirelength_um(grid))
        assert lengths[(1, 0)] == pytest.approx(100.0)  # half of each incident edge

    def test_path_between(self, l_route):
        path = l_route.path_between((0, 0), (1, 1))
        assert path == [(0, 0), (1, 0), (1, 1)]
        assert l_route.path_between((0, 0), (0, 0)) == [(0, 0)]

    def test_path_between_unknown_region(self, l_route):
        with pytest.raises(ValueError):
            l_route.path_between((0, 0), (2, 2))


class TestRoutingSolution:
    def make_solution(self, grid):
        nets = [
            Net(net_id=0, pins=(Pin(50, 50), Pin(150, 150))),
            Net(net_id=1, pins=(Pin(50, 150), Pin(250, 150))),
        ]
        netlist = Netlist(nets)
        routes = {
            0: RouteTree(0, ((0, 0), (1, 1)), frozenset({((0, 0), (1, 0)), ((1, 0), (1, 1))})),
            1: RouteTree(1, ((0, 1), (2, 1)), frozenset({((0, 1), (1, 1)), ((1, 1), (2, 1))})),
        }
        return RoutingSolution(grid, netlist, routes)

    def test_wirelength_metrics(self, grid):
        solution = self.make_solution(grid)
        assert solution.total_wirelength_um() == pytest.approx(400.0)
        assert solution.average_wirelength_um() == pytest.approx(200.0)
        assert len(solution) == 2
        assert solution.all_trees_valid()

    def test_missing_route_rejected(self, grid):
        nets = [Net(net_id=0, pins=(Pin(50, 50), Pin(150, 150)))]
        with pytest.raises(ValueError):
            RoutingSolution(grid, Netlist(nets), {})

    def test_route_lookup(self, grid):
        solution = self.make_solution(grid)
        assert solution.route(0).net_id == 0
        with pytest.raises(KeyError):
            solution.route(9)

    def test_nets_in_region(self, grid):
        solution = self.make_solution(grid)
        assert solution.nets_in_region((1, 1), VERTICAL) == [0]
        assert solution.nets_in_region((1, 1), HORIZONTAL) == [1]


class TestCongestion:
    def test_region_usage_metrics(self):
        usage = RegionUsage(nets={1, 2, 3}, shields=2.0, capacity=4)
        assert usage.num_segments == 3
        assert usage.utilization == pytest.approx(5.0)
        assert usage.density == pytest.approx(1.25)
        assert usage.overflow == pytest.approx(1.0)
        assert usage.relative_overflow == pytest.approx(0.25)

    def test_zero_capacity_degenerates_gracefully(self):
        usage = RegionUsage(nets={1}, shields=0.0, capacity=0)
        assert usage.density == 0.0
        assert usage.relative_overflow == 0.0

    def test_from_solution_counts_and_shields(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(
            solution, shields={((1, 1), VERTICAL): 3.0}
        )
        assert congestion.usage((1, 1), VERTICAL).num_segments == 1
        assert congestion.usage((1, 1), VERTICAL).shields == pytest.approx(3.0)
        assert congestion.usage((1, 1), HORIZONTAL).num_segments == 1
        assert congestion.total_overflow() == pytest.approx(0.0)
        assert congestion.max_density() == pytest.approx(1.0)

    def test_set_shields_and_histogram(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(solution)
        congestion.set_shields((1, 1), VERTICAL, 5.0)
        assert congestion.usage((1, 1), VERTICAL).overflow == pytest.approx(2.0)
        assert congestion.num_overflowed_regions() == 1
        histogram = congestion.density_histogram(num_bins=4)
        assert sum(histogram) == grid.num_regions * 2
        with pytest.raises(ValueError):
            congestion.set_shields((1, 1), VERTICAL, -1.0)
        with pytest.raises(ValueError):
            congestion.density_histogram(num_bins=0)

    def test_most_and_least_congested(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(solution)
        congestion.set_shields((1, 1), VERTICAL, 5.0)
        coord, direction, usage = congestion.most_congested()
        assert (coord, direction) == ((1, 1), VERTICAL)
        least = congestion.least_congested_among([((1, 1), VERTICAL), ((0, 0), HORIZONTAL)])
        assert least == ((0, 0), HORIZONTAL)
        with pytest.raises(ValueError):
            congestion.least_congested_among([])

    def test_unknown_usage_key(self, grid):
        congestion = CongestionMap(grid)
        with pytest.raises(KeyError):
            congestion.usage((9, 9), HORIZONTAL)


class TestAreaModel:
    def test_no_overflow_keeps_base_dimensions(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(solution)
        report = routing_area(congestion, grid)
        assert report.chip_width == pytest.approx(grid.chip_width)
        assert report.chip_height == pytest.approx(grid.chip_height)
        assert report.overhead == pytest.approx(0.0)

    def test_horizontal_overflow_expands_rows(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(solution)
        congestion.set_shields((1, 1), HORIZONTAL, 6.0)  # utilisation 7 vs capacity 4
        report = routing_area(congestion, grid)
        assert report.chip_height == pytest.approx(grid.chip_height + 3.0)
        assert report.chip_width == pytest.approx(grid.chip_width)
        assert report.overhead > 0.0

    def test_vertical_overflow_expands_columns(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(solution)
        # No net uses (0, 0) vertically, so utilisation is the 8 shields alone:
        # 4 tracks beyond the capacity of 4 widen column 0 by 4 pitches.
        congestion.set_shields((0, 0), VERTICAL, 8.0)
        report = routing_area(congestion, grid)
        assert report.chip_width == pytest.approx(grid.chip_width + 4.0)

    def test_row_expansion_uses_worst_region_only(self, grid):
        solution = TestRoutingSolution().make_solution(grid)
        congestion = CongestionMap.from_solution(solution)
        congestion.set_shields((0, 1), HORIZONTAL, 6.0)
        congestion.set_shields((2, 1), HORIZONTAL, 4.0)
        report = routing_area(congestion, grid)
        # Both overflowing regions are in row 1; the row grows by the larger excess.
        assert report.chip_height == pytest.approx(grid.chip_height + 3.0)

    def test_overhead_vs_other_report(self):
        first = AreaReport(chip_width=100, chip_height=100, base_width=100, base_height=100)
        second = AreaReport(chip_width=110, chip_height=100, base_width=100, base_height=100)
        assert second.overhead_vs(first) == pytest.approx(0.10)
        assert first.dimensions_label() == "100 x 100"
        assert second.area == pytest.approx(11000.0)
