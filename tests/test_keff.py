"""Tests and property checks for the Keff coupling model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.keff import (
    DEFAULT_KEFF_MODEL,
    KeffModel,
    PanelOccupant,
    capacitive_violations,
    coupling_coefficient,
    panel_couplings,
    panel_couplings_fast,
    total_coupling,
)


class TestCouplingCoefficient:
    def test_decreases_with_distance(self):
        near = coupling_coefficient(distance=1, shields_between=0)
        far = coupling_coefficient(distance=5, shields_between=0)
        assert near > far > 0.0

    def test_shield_attenuates(self):
        bare = coupling_coefficient(distance=3, shields_between=0)
        one = coupling_coefficient(distance=3, shields_between=1)
        two = coupling_coefficient(distance=3, shields_between=2)
        assert bare > one > two
        assert one == pytest.approx(bare / DEFAULT_KEFF_MODEL.shield_attenuation)

    def test_adjacent_shield_bonus(self):
        without = coupling_coefficient(distance=2, shields_between=0, victim_has_adjacent_shield=False)
        with_shield = coupling_coefficient(distance=2, shields_between=0, victim_has_adjacent_shield=True)
        assert with_shield < without

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            coupling_coefficient(distance=0, shields_between=0)
        with pytest.raises(ValueError):
            coupling_coefficient(distance=1, shields_between=-1)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            KeffModel(shield_attenuation=1.0)
        with pytest.raises(ValueError):
            KeffModel(adjacent_shield_bonus=0.5)
        with pytest.raises(ValueError):
            KeffModel(distance_exponent=0.0)


class TestTotalCoupling:
    def test_sums_over_sensitive_aggressors_only(self):
        occupants = [
            PanelOccupant(track=0, net_id=10),
            PanelOccupant(track=1, net_id=11),
            PanelOccupant(track=2, net_id=12),
        ]
        victim = occupants[1]
        only_one = total_coupling(victim, occupants, aggressor_net_ids={10})
        both = total_coupling(victim, occupants, aggressor_net_ids={10, 12})
        assert both == pytest.approx(2.0 * only_one)

    def test_shield_between_reduces(self):
        bare = [
            PanelOccupant(track=0, net_id=1),
            PanelOccupant(track=2, net_id=2),
        ]
        shielded = [
            PanelOccupant(track=0, net_id=1),
            PanelOccupant(track=1, net_id=None),
            PanelOccupant(track=2, net_id=2),
        ]
        bare_k = total_coupling(bare[1], bare, {1})
        shielded_k = total_coupling(shielded[2], shielded, {1})
        assert shielded_k < bare_k

    def test_victim_must_be_signal(self):
        occupants = [PanelOccupant(track=0, net_id=None), PanelOccupant(track=1, net_id=1)]
        with pytest.raises(ValueError):
            total_coupling(occupants[0], occupants, {1})

    def test_duplicate_tracks_rejected(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=0, net_id=2)]
        with pytest.raises(ValueError):
            total_coupling(occupants[0], occupants, {2})

    def test_negative_track_rejected(self):
        with pytest.raises(ValueError):
            PanelOccupant(track=-1, net_id=1)


class TestPanelCouplings:
    def test_symmetric_two_net_panel(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=1, net_id=2)]
        sensitivity = {1: {2}, 2: {1}}
        couplings = panel_couplings(occupants, sensitivity)
        assert couplings[1] == pytest.approx(couplings[2])
        assert couplings[1] == pytest.approx(1.0)

    def test_insensitive_nets_have_zero_coupling(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=1, net_id=2)]
        couplings = panel_couplings(occupants, {})
        assert couplings[1] == pytest.approx(0.0)
        assert couplings[2] == pytest.approx(0.0)

    def test_shields_have_no_entry(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=1, net_id=None)]
        couplings = panel_couplings(occupants, {})
        assert set(couplings) == {1}


class TestCapacitiveViolations:
    def test_adjacent_sensitive_pair_detected(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=1, net_id=2)]
        assert capacitive_violations(occupants, {1: {2}}) == [(1, 2)]

    def test_shield_breaks_adjacency(self):
        occupants = [
            PanelOccupant(track=0, net_id=1),
            PanelOccupant(track=1, net_id=None),
            PanelOccupant(track=2, net_id=2),
        ]
        assert capacitive_violations(occupants, {1: {2}}) == []

    def test_gap_breaks_adjacency(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=2, net_id=2)]
        assert capacitive_violations(occupants, {1: {2}}) == []

    def test_insensitive_adjacency_is_fine(self):
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=1, net_id=2)]
        assert capacitive_violations(occupants, {}) == []


@st.composite
def random_panel(draw):
    """A random panel layout with sensitivity map, for equivalence testing."""
    num_tracks = draw(st.integers(min_value=1, max_value=12))
    kinds = draw(st.lists(st.booleans(), min_size=num_tracks, max_size=num_tracks))
    occupants = []
    net_ids = []
    for track, is_shield in enumerate(kinds):
        if is_shield:
            occupants.append(PanelOccupant(track=track, net_id=None))
        else:
            net_id = 100 + track
            occupants.append(PanelOccupant(track=track, net_id=net_id))
            net_ids.append(net_id)
    sensitivity = {}
    for net_id in net_ids:
        others = [other for other in net_ids if other != net_id]
        if others:
            chosen = draw(st.lists(st.sampled_from(others), unique=True, max_size=len(others)))
            sensitivity[net_id] = set(chosen)
    return occupants, sensitivity


class TestFastEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(random_panel())
    def test_fast_matches_reference(self, panel):
        occupants, sensitivity = panel
        reference = panel_couplings(occupants, sensitivity)
        fast = panel_couplings_fast(occupants, sensitivity)
        assert set(reference) == set(fast)
        for net_id, value in reference.items():
            assert fast[net_id] == pytest.approx(value, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(random_panel())
    def test_couplings_are_non_negative(self, panel):
        occupants, sensitivity = panel
        for value in panel_couplings_fast(occupants, sensitivity).values():
            assert value >= 0.0
