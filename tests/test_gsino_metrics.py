"""Tests for the crosstalk / wire-length / area evaluation metrics."""

import pytest

from repro.grid.nets import Net, Netlist, Pin
from repro.grid.regions import HORIZONTAL, RoutingGrid
from repro.grid.routes import RouteTree, RoutingSolution
from repro.gsino.config import GsinoConfig
from repro.gsino.metrics import (
    CrosstalkReport,
    compute_flow_metrics,
    evaluate_crosstalk,
    net_lsk_value,
    net_noise_voltage,
    panel_coupling_cache,
    shields_by_region,
)
from repro.noise.lsk import LskModel, linear_reference_table
from repro.sino.panel import SHIELD, SinoProblem, SinoSolution


@pytest.fixture
def setup():
    """A 2x1 grid with two sensitive nets running in parallel through both regions."""
    grid = RoutingGrid(
        num_cols=2,
        num_rows=1,
        chip_width=2000.0,
        chip_height=1000.0,
        horizontal_capacity=4,
        vertical_capacity=4,
        track_pitch_um=1.0,
    )
    nets = [
        Net(net_id=0, pins=(Pin(100, 500), Pin(1900, 500))),
        Net(net_id=1, pins=(Pin(100, 510), Pin(1900, 510))),
    ]
    netlist = Netlist(nets, sensitivity={0: {1}})
    edges = frozenset({((0, 0), (1, 0))})
    routes = {
        0: RouteTree(0, ((0, 0), (1, 0)), edges),
        1: RouteTree(1, ((0, 0), (1, 0)), edges),
    }
    routing = RoutingSolution(grid, netlist, routes)
    problem = SinoProblem.build([0, 1], {0: {1}}, default_kth=10.0)
    return grid, netlist, routing, problem


class TestNetLskAndNoise:
    def test_adjacent_nets_accumulate_full_coupling(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
        }
        couplings = panel_coupling_cache(panels)
        # K = 1.0 in both regions, net crosses 1000 um per region (half-edge on
        # each side of the single edge): LSK = 1.0 * 1000e-6 + ... = 1e-3.
        lsk = net_lsk_value(0, routing, couplings)
        assert lsk == pytest.approx(1.0e-3)

    def test_shielded_panels_reduce_lsk(self, setup):
        grid, netlist, routing, problem = setup
        bare = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
        }
        shielded = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, 1]),
        }
        lsk_bare = net_lsk_value(0, routing, panel_coupling_cache(bare))
        lsk_shielded = net_lsk_value(0, routing, panel_coupling_cache(shielded))
        assert lsk_shielded < lsk_bare

    def test_length_scale_multiplies_lsk(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
        }
        couplings = panel_coupling_cache(panels)
        assert net_lsk_value(0, routing, couplings, length_scale=3.0) == pytest.approx(
            3.0 * net_lsk_value(0, routing, couplings)
        )

    def test_noise_uses_table(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
        }
        model = LskModel(table=linear_reference_table(slope=100.0))
        noise = net_noise_voltage(0, routing, panel_coupling_cache(panels), model)
        assert noise == pytest.approx(100.0 * 1.0e-3)


class TestEvaluateCrosstalk:
    def test_violations_detected_against_bound(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
        }
        model = LskModel(table=linear_reference_table(slope=200.0))  # noise = 0.2 V
        report = evaluate_crosstalk(routing, panels, model, bound=0.15)
        assert report.num_nets == 2
        assert set(report.violating_nets) == {0, 1}
        assert report.violation_fraction == pytest.approx(1.0)
        assert report.worst_noise() > 0.15
        assert report.excess_of(0) > 0.0

    def test_no_violations_with_loose_bound(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, 1]),
        }
        model = LskModel(table=linear_reference_table(slope=100.0))
        report = evaluate_crosstalk(routing, panels, model, bound=0.15)
        assert report.num_violations == 0
        assert report.violation_fraction == 0.0

    def test_empty_report_defaults(self):
        report = CrosstalkReport(bound=0.15)
        assert report.num_nets == 0
        assert report.worst_noise() == 0.0
        assert report.violation_fraction == 0.0


class TestFlowMetrics:
    def test_compute_flow_metrics_summary(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, 1]),
        }
        config = GsinoConfig(lsk_table=linear_reference_table(slope=100.0))
        metrics, congestion = compute_flow_metrics(routing, panels, config)
        summary = metrics.summary()
        assert summary["average_wirelength_um"] == pytest.approx(1000.0)
        assert summary["total_shields"] == pytest.approx(2.0)
        assert summary["num_violations"] == pytest.approx(0.0)
        assert summary["routing_area_um2"] >= grid.chip_width * grid.chip_height

    def test_shields_by_region_extraction(self, setup):
        grid, netlist, routing, problem = setup
        panels = {
            ((0, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, SHIELD, SHIELD, 1]),
            ((1, 0), HORIZONTAL): SinoSolution(problem=problem, layout=[0, 1]),
        }
        shields = shields_by_region(panels)
        assert shields[((0, 0), HORIZONTAL)] == pytest.approx(2.0)
        assert shields[((1, 0), HORIZONTAL)] == pytest.approx(0.0)
