"""Tests for the MNA transient simulator against analytic circuit behaviour."""

import math

import numpy as np
import pytest

from repro.circuit.elements import GROUND
from repro.circuit.mna import TransientSimulator, peak_noise, simulate
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import constant, ramp, step


def rc_circuit(resistance: float, capacitance: float, vdd: float) -> Circuit:
    """A driver charging a capacitor through a resistor (step input)."""
    circuit = Circuit("rc")
    circuit.add_voltage_source("vin", "in", GROUND, waveform=step(vdd))
    circuit.add_resistor("r1", "in", "out", resistance)
    circuit.add_capacitor("c1", "out", GROUND, capacitance)
    return circuit


class TestRcCharging:
    def test_final_value_reaches_supply(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        result = simulate(circuit, stop_time=2e-9, num_steps=800)
        assert result.final_voltage("out") == pytest.approx(1.0, abs=1e-3)

    def test_exponential_charging_matches_analytic(self):
        resistance, capacitance, vdd = 100.0, 1e-12, 1.0
        tau = resistance * capacitance
        circuit = rc_circuit(resistance, capacitance, vdd)
        result = simulate(circuit, stop_time=5 * tau, num_steps=2000)
        voltage = result.voltage("out")
        times = result.times
        expected = vdd * (1.0 - np.exp(-times / tau))
        error = np.max(np.abs(voltage - expected))
        assert error < 0.01 * vdd

    def test_voltage_at_one_tau(self):
        resistance, capacitance = 50.0, 2e-12
        tau = resistance * capacitance
        circuit = rc_circuit(resistance, capacitance, 1.0)
        result = simulate(circuit, stop_time=tau, num_steps=1000)
        assert result.final_voltage("out") == pytest.approx(1.0 - math.exp(-1.0), abs=0.01)


class TestDcAndDividers:
    def test_resistive_divider(self):
        circuit = Circuit("divider")
        circuit.add_voltage_source("vin", "in", GROUND, waveform=constant(2.0))
        circuit.add_resistor("r1", "in", "mid", 100.0)
        circuit.add_resistor("r2", "mid", GROUND, 300.0)
        result = simulate(circuit, stop_time=1e-9, num_steps=100)
        assert result.final_voltage("mid") == pytest.approx(1.5, abs=1e-6)

    def test_ground_waveform_always_zero(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        result = simulate(circuit, stop_time=1e-9, num_steps=100)
        assert np.allclose(result.voltage(GROUND), 0.0)

    def test_source_current_through_divider(self):
        circuit = Circuit("divider")
        circuit.add_voltage_source("vin", "in", GROUND, waveform=constant(1.0))
        circuit.add_resistor("r1", "in", GROUND, 100.0)
        result = simulate(circuit, stop_time=1e-9, num_steps=50)
        # MNA source current convention: current flows from + terminal through
        # the source; magnitude must equal V/R.
        assert abs(result.current("vin")[-1]) == pytest.approx(0.01, rel=1e-6)


class TestRlcBehaviour:
    def test_underdamped_rlc_oscillates_and_settles(self):
        circuit = Circuit("rlc")
        circuit.add_voltage_source("vin", "in", GROUND, waveform=step(1.0))
        circuit.add_resistor("r1", "in", "a", 1.0)
        circuit.add_inductor("l1", "a", "out", 1e-9)
        circuit.add_capacitor("c1", "out", GROUND, 1e-12)
        period = 2 * math.pi * math.sqrt(1e-9 * 1e-12)
        result = simulate(circuit, stop_time=40 * period, num_steps=4000)
        voltage = result.voltage("out")
        # Underdamped: it must overshoot the final value, then settle to it.
        assert np.max(voltage) > 1.05
        assert result.final_voltage("out") == pytest.approx(1.0, abs=0.02)

    def test_mutual_inductance_induces_noise_on_quiet_line(self):
        circuit = Circuit("coupled")
        circuit.add_voltage_source("vin", "in", GROUND, waveform=ramp(1.0, 50e-12))
        circuit.add_resistor("rdrv", "in", "a1", 30.0)
        circuit.add_inductor("l1", "a1", "a2", 1e-9)
        circuit.add_capacitor("c1", "a2", GROUND, 50e-15)
        # Quiet victim held at 0 by its own driver.
        circuit.add_voltage_source("vq", "q", GROUND, waveform=constant(0.0))
        circuit.add_resistor("rq", "q", "v1", 30.0)
        circuit.add_inductor("l2", "v1", "v2", 1e-9)
        circuit.add_capacitor("c2", "v2", GROUND, 50e-15)
        circuit.add_mutual("k12", "l1", "l2", 0.5e-9)
        result = simulate(circuit, stop_time=2e-9, num_steps=1500)
        noise = result.peak_abs_voltage("v2")
        assert noise > 0.01  # the coupled line definitely moves
        assert noise < 1.0   # but less than the full aggressor swing

    def test_no_mutual_no_noise(self):
        circuit = Circuit("uncoupled")
        circuit.add_voltage_source("vin", "in", GROUND, waveform=ramp(1.0, 50e-12))
        circuit.add_resistor("rdrv", "in", "a1", 30.0)
        circuit.add_inductor("l1", "a1", "a2", 1e-9)
        circuit.add_capacitor("c1", "a2", GROUND, 50e-15)
        circuit.add_voltage_source("vq", "q", GROUND, waveform=constant(0.0))
        circuit.add_resistor("rq", "q", "v1", 30.0)
        circuit.add_inductor("l2", "v1", "v2", 1e-9)
        circuit.add_capacitor("c2", "v2", GROUND, 50e-15)
        result = simulate(circuit, stop_time=2e-9, num_steps=500)
        assert result.peak_abs_voltage("v2") < 1e-9


class TestSimulatorInterface:
    def test_invalid_time_arguments(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        simulator = TransientSimulator(circuit)
        with pytest.raises(ValueError):
            simulator.run(stop_time=0.0)
        with pytest.raises(ValueError):
            simulator.run(stop_time=1e-9, time_step=1e-9, num_steps=10)
        with pytest.raises(ValueError):
            simulator.run(stop_time=1e-9, time_step=2e-9)

    def test_time_step_and_num_steps_agree(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        by_steps = TransientSimulator(circuit).run(stop_time=1e-9, num_steps=500)
        by_step_size = TransientSimulator(circuit).run(stop_time=1e-9, time_step=2e-12)
        assert by_steps.times.size == by_step_size.times.size
        assert by_steps.final_voltage("out") == pytest.approx(
            by_step_size.final_voltage("out"), abs=1e-6
        )

    def test_unknown_node_and_branch_raise(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        result = simulate(circuit, stop_time=1e-9, num_steps=50)
        with pytest.raises(KeyError):
            result.voltage("nope")
        with pytest.raises(KeyError):
            result.current("nope")

    def test_peak_noise_helper(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        result = simulate(circuit, stop_time=2e-9, num_steps=200)
        assert peak_noise(result, ["out"]) == pytest.approx(result.peak_abs_voltage("out"))
        with pytest.raises(ValueError):
            peak_noise(result, [])

    def test_settle_error(self):
        circuit = rc_circuit(100.0, 1e-12, 1.0)
        result = simulate(circuit, stop_time=5e-9, num_steps=500)
        assert result.settle_error("out", 1.0) < 1e-3
