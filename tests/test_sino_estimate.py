"""Tests for the Formula 3 shield-count estimator."""

import numpy as np
import pytest

from repro.sino.estimate import (
    Formula3Coefficients,
    ShieldEstimator,
    default_shield_estimator,
    fit_formula3,
    formula3_features,
)


class TestFeatures:
    def test_feature_vector_structure(self):
        features = formula3_features([0.5, 0.5])
        # [sum S^2, sum S^2 / N, sum S, sum S / N, N, 1]
        assert features == pytest.approx([0.5, 0.25, 1.0, 0.5, 2.0, 1.0])

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            formula3_features([])
        with pytest.raises(ValueError):
            formula3_features([1.5])
        with pytest.raises(ValueError):
            formula3_features([-0.1])


class TestShieldEstimator:
    def test_estimate_is_clamped_non_negative(self):
        estimator = ShieldEstimator(
            coefficients=Formula3Coefficients(0, 0, 0, 0, 0, -5.0)
        )
        assert estimator.estimate([0.5, 0.5]) == 0.0
        assert estimator.estimate_rounded([0.5, 0.5]) == 0

    def test_empty_region_has_no_shields(self):
        estimator = ShieldEstimator(coefficients=Formula3Coefficients(1, 1, 1, 1, 1, 1))
        assert estimator.estimate([]) == 0.0

    def test_coefficients_as_array(self):
        coefficients = Formula3Coefficients(1, 2, 3, 4, 5, 6)
        assert np.allclose(coefficients.as_array(), [1, 2, 3, 4, 5, 6])


class TestFitting:
    @pytest.fixture(scope="class")
    def fitted(self):
        return fit_formula3(
            segment_counts=(2, 4, 6, 8, 10),
            sensitivity_rates=(0.2, 0.4, 0.6, 0.8),
            samples_per_point=2,
            seed=1,
        )

    def test_fit_produces_estimator_and_samples(self, fitted):
        estimator, samples = fitted
        assert len(samples) == 5 * 4 * 2
        assert estimator.reference_kth == pytest.approx(1.0)

    def test_fit_error_is_moderate(self, fitted):
        """The paper reports <=10% error against min-area SINO; our greedy-based
        fit is looser but must stay in the same regime (a fraction, not x2)."""
        estimator, _ = fitted
        assert estimator.fit_relative_error < 0.6

    def test_more_sensitive_regions_need_more_shields(self, fitted):
        estimator, _ = fitted
        low = estimator.estimate([0.1] * 10)
        high = estimator.estimate([0.8] * 10)
        assert high > low

    def test_more_segments_need_more_shields(self, fitted):
        estimator, _ = fitted
        small = estimator.estimate([0.5] * 4)
        large = estimator.estimate([0.5] * 16)
        assert large > small

    def test_samples_per_point_validation(self):
        with pytest.raises(ValueError):
            fit_formula3(samples_per_point=0)

    def test_default_estimator_is_cached(self):
        first = default_shield_estimator()
        second = default_shield_estimator()
        assert first is second
