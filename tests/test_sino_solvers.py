"""Tests for the greedy / annealing SINO solvers and the NO baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sino.anneal import AnnealConfig, anneal_sino, solution_cost, solve_min_area_sino
from repro.sino.checker import assert_valid, check_solution
from repro.sino.greedy import (
    fix_inductive_violations,
    greedy_order,
    greedy_sino,
    insert_capacitive_shields,
)
from repro.sino.net_ordering import net_ordering_only
from repro.sino.panel import SHIELD, SinoProblem, SinoSolution

from tests.conftest import make_random_sino_problem


class TestGreedyOrder:
    def test_order_contains_every_segment_once(self, random_sino_problem):
        problem = random_sino_problem(10, 0.4, 1.0, seed=1)
        order = greedy_order(problem)
        assert sorted(order) == sorted(problem.segments)

    def test_empty_problem(self):
        problem = SinoProblem.build(segments=[], sensitivity={}, default_kth=1.0)
        assert greedy_order(problem) == []

    def test_insensitive_segments_need_no_shields(self):
        problem = SinoProblem.build(segments=[0, 1, 2], sensitivity={}, default_kth=10.0)
        solution = greedy_sino(problem)
        assert solution.num_shields == 0
        assert solution.is_valid()

    def test_capacitive_shield_insertion(self):
        problem = SinoProblem.build(
            segments=[0, 1], sensitivity={0: {1}}, default_kth=10.0
        )
        layout = insert_capacitive_shields(problem, [0, 1])
        assert layout == [0, SHIELD, 1]


class TestGreedySino:
    @pytest.mark.parametrize("num_segments,rate,kth", [
        (4, 0.5, 1.0),
        (8, 0.3, 0.8),
        (12, 0.5, 1.0),
        (16, 0.7, 1.5),
        (24, 0.3, 1.0),
    ])
    def test_produces_valid_solutions(self, num_segments, rate, kth):
        problem = make_random_sino_problem(num_segments, rate, kth, seed=num_segments)
        solution = greedy_sino(problem)
        assert solution.is_valid(), check_solution(solution)
        assert sorted(e for e in solution.layout if e is not SHIELD) == sorted(problem.segments)

    def test_tight_bound_needs_more_shields_than_loose(self):
        tight = make_random_sino_problem(10, 0.5, 0.4, seed=3)
        loose = make_random_sino_problem(10, 0.5, 2.5, seed=3)
        assert greedy_sino(tight).num_shields >= greedy_sino(loose).num_shields

    def test_fully_sensitive_pair_with_extreme_bound(self):
        problem = SinoProblem.build(
            segments=[0, 1], sensitivity={0: {1}}, default_kth=0.01
        )
        solution = greedy_sino(problem)
        # A single shield between two nets at distance 2 attenuates far below 0.01? No —
        # 1/(2*4) = 0.125 > 0.01, so more shields are needed; the solver keeps adding
        # within its guard and reports the best it found.
        assert solution.num_shields >= 1

    def test_fix_inductive_respects_guard(self):
        problem = make_random_sino_problem(6, 0.8, 0.05, seed=9)
        start = SinoSolution(problem=problem, layout=list(problem.segments))
        fixed = fix_inductive_violations(start, max_extra_shields=1)
        assert fixed.num_shields <= 1


class TestNetOrderingBaseline:
    def test_no_shields_ever(self, random_sino_problem):
        problem = random_sino_problem(10, 0.5, 1.0, seed=2)
        solution = net_ordering_only(problem)
        assert solution.num_shields == 0
        assert solution.num_tracks == problem.num_segments

    def test_ordering_reduces_adjacent_sensitive_pairs(self):
        # A path-sensitivity structure can always be ordered conflict-free.
        problem = SinoProblem.build(
            segments=[0, 1, 2, 3],
            sensitivity={0: {1}, 1: {2}, 2: {3}},
            default_kth=10.0,
        )
        solution = net_ordering_only(problem)
        assert solution.capacitive_violation_pairs() == []

    def test_dense_sensitivity_leaves_violations(self):
        problem = make_random_sino_problem(8, 1.0, 10.0, seed=0)
        solution = net_ordering_only(problem)
        # Everything is sensitive to everything: adjacency violations are unavoidable.
        assert len(solution.capacitive_violation_pairs()) == 7


class TestAnnealing:
    def test_anneal_config_validation(self):
        with pytest.raises(ValueError):
            AnnealConfig(iterations=0)
        with pytest.raises(ValueError):
            AnnealConfig(initial_temperature=0.0)
        with pytest.raises(ValueError):
            AnnealConfig(initial_temperature=1.0, final_temperature=2.0)

    def test_temperature_schedule_is_decreasing(self):
        config = AnnealConfig(iterations=100)
        temps = [config.temperature_at(i) for i in range(100)]
        assert temps[0] == pytest.approx(config.initial_temperature)
        assert temps[-1] == pytest.approx(config.final_temperature, rel=1e-6)
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_cost_prefers_valid_small_layouts(self):
        problem = make_random_sino_problem(6, 0.5, 1.0, seed=4)
        config = AnnealConfig()
        valid = greedy_sino(problem)
        invalid = SinoSolution(problem=problem, layout=list(problem.segments))
        if not invalid.is_valid():
            assert solution_cost(invalid, config) > solution_cost(valid, config)

    def test_anneal_never_worse_than_greedy(self):
        problem = make_random_sino_problem(8, 0.5, 0.9, seed=7)
        greedy = greedy_sino(problem)
        annealed = anneal_sino(problem, config=AnnealConfig(iterations=600, seed=1))
        assert annealed.is_valid()
        assert annealed.num_shields <= greedy.num_shields

    def test_solve_min_area_dispatch(self):
        problem = make_random_sino_problem(5, 0.4, 1.0, seed=11)
        assert solve_min_area_sino(problem, effort="greedy").is_valid()
        assert solve_min_area_sino(
            problem, effort="anneal", config=AnnealConfig(iterations=200)
        ).is_valid()
        with pytest.raises(ValueError):
            solve_min_area_sino(problem, effort="exhaustive")


class TestChecker:
    def test_check_result_fields(self):
        problem = make_random_sino_problem(6, 0.6, 0.7, seed=5)
        bare = SinoSolution(problem=problem, layout=list(problem.segments))
        result = check_solution(bare)
        assert result.num_tracks == 6
        assert result.num_shields == 0
        assert result.num_violating_segments > 0
        assert result.worst_inductive_excess() >= 0.0

    def test_assert_valid_raises_with_message(self):
        problem = SinoProblem.build(segments=[0, 1], sensitivity={0: {1}}, default_kth=0.1)
        bare = SinoSolution(problem=problem, layout=[0, 1])
        with pytest.raises(AssertionError):
            assert_valid(bare)
        assert_valid(greedy_sino(make_random_sino_problem(5, 0.3, 1.5, seed=8)))

    @settings(max_examples=25, deadline=None)
    @given(
        num_segments=st.integers(min_value=2, max_value=12),
        rate=st.floats(min_value=0.0, max_value=0.8),
        kth=st.floats(min_value=0.5, max_value=3.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_greedy_solutions_are_valid_property(self, num_segments, rate, kth, seed):
        problem = make_random_sino_problem(num_segments, rate, kth, seed=seed)
        solution = greedy_sino(problem)
        result = check_solution(solution)
        assert result.is_valid
