"""Tests for the three GSINO phases and the baseline flows on a small circuit."""

import pytest

from repro.gsino.baselines import run_id_no, run_isino
from repro.gsino.budgeting import compute_budgets
from repro.gsino.metrics import evaluate_crosstalk
from repro.gsino.phase1 import run_phase1
from repro.gsino.phase2 import build_panel_problem, run_phase2
from repro.gsino.phase3 import run_phase3
from repro.gsino.pipeline import compare_flows


@pytest.fixture(scope="module")
def instance(small_circuit, small_circuit_config):
    """Phase I output shared by the phase tests (module-scoped for speed)."""
    budgets = compute_budgets(small_circuit.netlist, small_circuit_config)
    phase1 = run_phase1(small_circuit.grid, small_circuit.netlist, small_circuit_config, budgets=budgets)
    return small_circuit, small_circuit_config, budgets, phase1


class TestPhase1:
    def test_routing_covers_all_nets_with_trees(self, instance):
        circuit, config, budgets, phase1 = instance
        assert len(phase1.routing) == circuit.netlist.num_nets
        assert phase1.routing.all_trees_valid()

    def test_budgets_are_positive_and_complete(self, instance):
        circuit, config, budgets, phase1 = instance
        assert set(budgets) == set(circuit.netlist.net_ids())
        assert all(budget.kth > 0 for budget in budgets.values())

    def test_router_report_statistics(self, instance):
        _, _, _, phase1 = instance
        assert phase1.router_report.deleted_edges > 0
        assert phase1.router_report.runtime_seconds > 0.0


class TestPhase2:
    def test_every_occupied_panel_gets_a_solution(self, instance):
        circuit, config, budgets, phase1 = instance
        phase2 = run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="sino")
        assert len(phase2.panels) > 0
        assert set(phase2.panels) == set(phase2.problems)
        for key, solution in phase2.panels.items():
            assert sorted(e for e in solution.layout if e is not None) == sorted(
                phase2.problems[key].segments
            )

    def test_sino_panels_are_locally_valid(self, instance):
        circuit, config, budgets, phase1 = instance
        phase2 = run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="sino")
        invalid = phase2.num_invalid_panels()
        assert invalid <= max(1, len(phase2.panels) // 20)

    def test_ordering_solver_inserts_no_shields(self, instance):
        circuit, config, budgets, phase1 = instance
        ordering = run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="ordering")
        assert ordering.total_shields == 0

    def test_unknown_solver_rejected(self, instance):
        circuit, config, budgets, phase1 = instance
        with pytest.raises(ValueError):
            run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="magic")

    def test_build_panel_problem_restricts_sensitivity(self, instance):
        circuit, config, budgets, _ = instance
        nets = circuit.netlist.net_ids()[:6]
        problem = build_panel_problem(nets, circuit.netlist, budgets, capacity=10, config=config)
        assert set(problem.segments) == set(nets)
        for segment in problem.segments:
            assert problem.aggressors_of(segment) <= set(nets)


class TestPhase3:
    def test_phase3_eliminates_all_violations(self, instance):
        circuit, config, budgets, phase1 = instance
        phase2 = run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="sino")
        report = run_phase3(phase1.routing, phase2, budgets, circuit.netlist, config)
        assert report.violations_after == 0
        assert report.unfixable_nets == []
        crosstalk = evaluate_crosstalk(
            phase1.routing,
            phase2.panels,
            config.lsk_model(),
            bound=config.resolved_bound(),
            length_scale=config.length_scale,
        )
        assert crosstalk.num_violations == 0

    def test_pass2_never_increases_shields(self, instance):
        circuit, config, budgets, phase1 = instance
        phase2 = run_phase2(phase1.routing, circuit.netlist, budgets, config, solver="sino")
        report = run_phase3(phase1.routing, phase2, budgets, circuit.netlist, config)
        assert report.shields_after <= report.shields_after_pass1


class TestFlows:
    @pytest.fixture(scope="class")
    def flows(self, small_circuit, small_circuit_config):
        return compare_flows(small_circuit.grid, small_circuit.netlist, small_circuit_config)

    def test_all_three_flows_present(self, flows):
        assert set(flows) == {"id_no", "isino", "gsino"}

    def test_id_no_has_violations_and_no_shields(self, flows):
        id_no = flows["id_no"]
        assert id_no.metrics.total_shields == 0
        assert id_no.num_violations > 0

    def test_gsino_eliminates_violations(self, flows):
        assert flows["gsino"].num_violations == 0
        assert flows["gsino"].phase3_report is not None

    def test_isino_nearly_eliminates_violations(self, flows):
        # iSINO has no Phase III, so a few detoured nets may remain, but the
        # overwhelming majority of the ID+NO violations must be gone.
        assert flows["isino"].num_violations <= max(3, flows["id_no"].num_violations // 4)

    def test_baselines_share_routing(self, flows):
        id_no, isino = flows["id_no"], flows["isino"]
        assert id_no.routing is isino.routing

    def test_area_ordering_matches_paper_shape(self, flows):
        id_no_area = flows["id_no"].metrics.area.area
        isino_area = flows["isino"].metrics.area.area
        gsino_area = flows["gsino"].metrics.area.area
        assert isino_area >= id_no_area
        assert gsino_area <= isino_area + 1e-6

    def test_gsino_uses_fewer_shields_than_isino(self, flows):
        assert flows["gsino"].metrics.total_shields <= flows["isino"].metrics.total_shields

    def test_flow_result_properties(self, flows):
        result = flows["gsino"]
        assert result.average_wirelength_um > 0
        assert result.routing_area_um2 > 0
        assert result.runtime_seconds > 0

    def test_individual_baseline_helpers(self, small_circuit, small_circuit_config):
        id_no = run_id_no(small_circuit.grid, small_circuit.netlist, small_circuit_config)
        isino = run_isino(small_circuit.grid, small_circuit.netlist, small_circuit_config)
        assert id_no.name == "id_no"
        assert isino.name == "isino"
        assert id_no.metrics.total_shields == 0
        assert isino.metrics.total_shields > 0
