"""Tests for the routing grid, nets, sensitivity oracles and Steiner estimates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.nets import Net, Netlist, Pin
from repro.grid.regions import HORIZONTAL, VERTICAL, Region, RoutingGrid
from repro.grid.sensitivity import (
    ExplicitSensitivity,
    RandomPairwiseSensitivity,
)
from repro.grid.steiner import hpwl, prim_steiner_length, rsmt_length_estimate, steiner_ratio


@pytest.fixture
def grid():
    return RoutingGrid(
        num_cols=4,
        num_rows=3,
        chip_width=400.0,
        chip_height=300.0,
        horizontal_capacity=10,
        vertical_capacity=8,
    )


class TestRoutingGrid:
    def test_region_lookup_and_geometry(self, grid):
        region = grid.region((1, 2))
        assert region.width == pytest.approx(100.0)
        assert region.height == pytest.approx(100.0)
        assert region.coord == (1, 2)
        assert region.center == pytest.approx((150.0, 250.0))
        assert grid.num_regions == 12

    def test_region_of_point_and_clamping(self, grid):
        assert grid.region_of_point(0.0, 0.0).coord == (0, 0)
        assert grid.region_of_point(399.9, 299.9).coord == (3, 2)
        assert grid.region_of_point(400.0, 300.0).coord == (3, 2)
        with pytest.raises(ValueError):
            grid.region_of_point(401.0, 10.0)

    def test_unknown_region_raises(self, grid):
        with pytest.raises(KeyError):
            grid.region((9, 9))
        assert (9, 9) not in grid
        assert (1, 1) in grid

    def test_neighbors(self, grid):
        assert set(grid.neighbors((0, 0))) == {(1, 0), (0, 1)}
        assert set(grid.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_edge_direction_and_length(self, grid):
        assert grid.edge_direction((0, 0), (1, 0)) == HORIZONTAL
        assert grid.edge_direction((2, 1), (2, 2)) == VERTICAL
        assert grid.edge_length((0, 0), (1, 0)) == pytest.approx(100.0)
        assert grid.edge_length((2, 1), (2, 2)) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            grid.edge_direction((0, 0), (1, 1))

    def test_bounding_box_regions(self, grid):
        box = grid.bounding_box_regions([(0, 0), (2, 1)])
        assert len(box) == 6
        margin = grid.bounding_box_regions([(0, 0), (2, 1)], margin=1)
        assert len(margin) == 12  # clipped to the grid
        with pytest.raises(ValueError):
            grid.bounding_box_regions([])

    def test_manhattan_distance(self, grid):
        assert grid.manhattan_distance_um((0, 0), (2, 1)) == pytest.approx(300.0)

    def test_capacity_and_span_by_direction(self, grid):
        region = grid.region((0, 0))
        assert region.capacity(HORIZONTAL) == 10
        assert region.capacity(VERTICAL) == 8
        assert region.span(HORIZONTAL) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            region.capacity("diagonal")

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            RoutingGrid(0, 3, 100, 100, 5, 5)
        with pytest.raises(ValueError):
            RoutingGrid(2, 2, -1, 100, 5, 5)
        with pytest.raises(ValueError):
            RoutingGrid(2, 2, 100, 100, 0, 5)
        with pytest.raises(ValueError):
            RoutingGrid(2, 2, 100, 100, 5, 5, track_pitch_um=0.0)

    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region(ix=-1, iy=0, width=1, height=1, horizontal_capacity=1, vertical_capacity=1)
        with pytest.raises(ValueError):
            Region(ix=0, iy=0, width=0, height=1, horizontal_capacity=1, vertical_capacity=1)


class TestPinsAndNets:
    def test_pin_distance(self):
        assert Pin(0, 0).manhattan_distance(Pin(3, 4)) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            Pin(-1.0, 0.0)

    def test_net_requires_two_pins(self):
        with pytest.raises(ValueError):
            Net(net_id=0, pins=(Pin(0, 0),))
        with pytest.raises(ValueError):
            Net(net_id=-1, pins=(Pin(0, 0), Pin(1, 1)))

    def test_net_source_sinks_hpwl(self):
        net = Net(net_id=0, pins=(Pin(0, 0), Pin(10, 5), Pin(4, 20)))
        assert net.source == Pin(0, 0)
        assert len(net.sinks) == 2
        assert net.hpwl() == pytest.approx(30.0)
        assert net.source_sink_distances() == [pytest.approx(15.0), pytest.approx(24.0)]

    def test_net_pin_regions(self, grid):
        net = Net(net_id=0, pins=(Pin(10, 10), Pin(210, 10), Pin(15, 12)))
        regions = net.pin_regions(grid)
        assert regions == [(0, 0), (2, 0)]


class TestNetlist:
    def make_netlist(self):
        nets = [
            Net(net_id=i, pins=(Pin(0, i * 10.0), Pin(50, i * 10.0)))
            for i in range(4)
        ]
        return Netlist(nets, sensitivity={0: {1}, 2: {3}}, name="t")

    def test_lookup_and_iteration(self):
        netlist = self.make_netlist()
        assert netlist.num_nets == 4
        assert len(netlist) == 4
        assert netlist.net(2).net_id == 2
        assert [net.net_id for net in netlist.nets()] == [0, 1, 2, 3]
        assert 3 in netlist and 9 not in netlist
        with pytest.raises(KeyError):
            netlist.net(9)

    def test_duplicate_ids_rejected(self):
        pins = (Pin(0, 0), Pin(1, 1))
        with pytest.raises(ValueError):
            Netlist([Net(0, pins), Net(0, pins)])

    def test_sensitivity_is_symmetric(self):
        netlist = self.make_netlist()
        assert netlist.are_sensitive(0, 1)
        assert netlist.are_sensitive(1, 0)
        assert not netlist.are_sensitive(0, 2)

    def test_sensitivity_rate_definition(self):
        netlist = self.make_netlist()
        assert netlist.sensitivity_rate(0) == pytest.approx(1 / 3)
        assert netlist.average_sensitivity_rate() == pytest.approx(1 / 3)

    def test_local_sensitivity_map(self):
        netlist = self.make_netlist()
        local = netlist.local_sensitivity_map([0, 1, 2])
        assert local[0] == {1}
        assert local[2] == set()

    def test_aggressors_among(self):
        netlist = self.make_netlist()
        assert netlist.aggressors_among(0, [1, 2, 3]) == {1}

    def test_with_sensitivity_replaces_oracle(self):
        netlist = self.make_netlist()
        rewired = netlist.with_sensitivity({0: {3}})
        assert rewired.are_sensitive(0, 3)
        assert not rewired.are_sensitive(0, 1)

    def test_unknown_sensitivity_entry_rejected(self):
        pins = (Pin(0, 0), Pin(1, 1))
        with pytest.raises(ValueError):
            Netlist([Net(0, pins)], sensitivity={5: {0}})

    def test_aggregate_statistics(self):
        netlist = self.make_netlist()
        assert netlist.total_hpwl() == pytest.approx(200.0)
        assert netlist.average_pin_count() == pytest.approx(2.0)


class TestSensitivityOracles:
    def test_explicit_empty(self):
        oracle = ExplicitSensitivity.empty()
        assert not oracle.are_sensitive(0, 1)
        assert oracle.rate_of(0, 100) == 0.0

    def test_random_oracle_is_symmetric_and_deterministic(self):
        oracle = RandomPairwiseSensitivity(rate=0.4, seed=3)
        again = RandomPairwiseSensitivity(rate=0.4, seed=3)
        for a in range(20):
            for b in range(a + 1, 20):
                assert oracle.are_sensitive(a, b) == oracle.are_sensitive(b, a)
                assert oracle.are_sensitive(a, b) == again.are_sensitive(a, b)

    def test_random_oracle_never_self_sensitive(self):
        oracle = RandomPairwiseSensitivity(rate=1.0, seed=0)
        assert not oracle.are_sensitive(7, 7)

    def test_random_oracle_rate_matches_nominal(self):
        oracle = RandomPairwiseSensitivity(rate=0.3, seed=1)
        count = 0
        total = 0
        for a in range(60):
            for b in range(a + 1, 60):
                total += 1
                count += oracle.are_sensitive(a, b)
        assert count / total == pytest.approx(0.3, abs=0.05)
        assert oracle.rate_of(0, 1000) == pytest.approx(0.3)

    def test_random_oracle_rate_validation(self):
        with pytest.raises(ValueError):
            RandomPairwiseSensitivity(rate=1.5)

    def test_local_map_symmetry(self):
        oracle = RandomPairwiseSensitivity(rate=0.5, seed=2)
        local = oracle.local_sensitivity_map(range(10))
        for net, others in local.items():
            for other in others:
                assert net in local[other]


class TestSteiner:
    def test_hpwl_simple(self):
        pins = [Pin(0, 0), Pin(10, 0), Pin(0, 5)]
        assert hpwl(pins) == pytest.approx(15.0)
        with pytest.raises(ValueError):
            hpwl([])

    def test_prim_two_pins_is_manhattan(self):
        pins = [Pin(0, 0), Pin(7, 3)]
        assert prim_steiner_length(pins) == pytest.approx(10.0)

    def test_prim_single_pin_zero(self):
        assert prim_steiner_length([Pin(1, 1)]) == 0.0

    def test_rsmt_estimate_small_nets_equal_hpwl(self):
        pins = [Pin(0, 0), Pin(10, 0), Pin(5, 8)]
        assert rsmt_length_estimate(pins) == pytest.approx(hpwl(pins))

    def test_rsmt_estimate_never_below_hpwl(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            pins = [Pin(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(6, 2))]
            assert rsmt_length_estimate(pins) >= hpwl(pins) - 1e-9

    def test_rsmt_estimate_never_above_prim(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            pins = [Pin(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(7, 2))]
            assert rsmt_length_estimate(pins) <= prim_steiner_length(pins) + 1e-9

    def test_steiner_ratio_at_least_one(self):
        pins = [Pin(0, 0), Pin(10, 10), Pin(20, 0), Pin(10, 25), Pin(3, 17)]
        assert steiner_ratio(pins) >= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1000), st.floats(0, 1000)), min_size=2, max_size=8))
    def test_estimate_bounds_property(self, coords):
        pins = [Pin(x, y) for x, y in coords]
        estimate = rsmt_length_estimate(pins)
        assert estimate >= hpwl(pins) - 1e-6
        assert estimate <= prim_steiner_length(pins) + 1e-6
