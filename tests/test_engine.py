"""Tests for the execution engine: backends, cache, signatures and sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig, run_table_suite
from repro.engine import (
    BACKEND_NAMES,
    CacheStats,
    Engine,
    PanelTask,
    ProcessBackend,
    SerialBackend,
    SolutionCache,
    SweepRunner,
    ThreadBackend,
    create_backend,
    panel_signature,
    problem_token,
    solve_panel_task,
)
from repro.engine.backends import chunk_tasks
from repro.gsino.pipeline import compare_flows
from repro.sino.anneal import AnnealConfig


def _double(value: int) -> int:
    return value * 2


class TestBackends:
    def test_create_backend_names(self):
        for name in BACKEND_NAMES:
            workers = None if name == "serial" else 2
            backend = create_backend(name, workers=workers)
            assert backend.name == name

    def test_create_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("gpu")

    def test_create_backend_rejects_workers_for_serial(self):
        with pytest.raises(ValueError, match="serial backend takes no worker count"):
            create_backend("serial", workers=2)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessBackend(workers=-1)

    def test_chunk_tasks_partitions_in_order(self):
        assert chunk_tasks([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            chunk_tasks([1], 0)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_map_tasks_preserves_order(self, name):
        with create_backend(name, workers=None if name == "serial" else 2) as backend:
            tasks = list(range(23))
            assert backend.map_tasks(_double, tasks) == [t * 2 for t in tasks]
            assert backend.map_tasks(_double, []) == []

    def test_pooled_backend_reuses_executor_until_shutdown(self):
        backend = ThreadBackend(workers=2)
        assert backend.map_tasks(_double, [1, 2]) == [2, 4]
        executor = backend._executor
        assert executor is not None
        assert backend.map_tasks(_double, [3]) == [6]
        assert backend._executor is executor  # same pool across batches
        backend.shutdown()
        assert backend._executor is None
        backend.shutdown()  # idempotent
        # Usable again after shutdown (a fresh pool is created lazily).
        assert backend.map_tasks(_double, [5]) == [10]
        backend.shutdown()

    def test_map_tasks_explicit_chunk_size(self):
        backend = SerialBackend()
        assert backend.map_tasks(_double, [1, 2, 3], chunk_size=1) == [2, 4, 6]

    def test_default_chunk_size_scales_with_workers(self):
        backend = ThreadBackend(workers=4)
        assert backend.default_chunk_size(160) == 10
        assert backend.default_chunk_size(1) == 1


class TestSignature:
    def test_signature_is_stable_across_equal_problems(self, random_sino_problem):
        a = random_sino_problem(10, 0.4, 1.5, seed=3)
        b = random_sino_problem(10, 0.4, 1.5, seed=3)
        assert a is not b
        assert problem_token(a) == problem_token(b)
        assert panel_signature(a, "sino", "greedy") == panel_signature(b, "sino", "greedy")

    def test_signature_distinguishes_every_input(self, random_sino_problem):
        problem = random_sino_problem(8, 0.5, 1.2, seed=1)
        base = panel_signature(problem, "sino", "greedy")
        assert panel_signature(problem, "ordering", "greedy") != base
        assert panel_signature(problem, "sino", "anneal") != base
        assert panel_signature(problem, "sino", "greedy", seed=7) != base
        assert (
            panel_signature(problem, "sino", "greedy", anneal=AnnealConfig(iterations=9))
            != base
        )
        other = random_sino_problem(8, 0.5, 1.2, seed=2)
        assert panel_signature(other, "sino", "greedy") != base

    def test_signature_changes_under_mutated_bounds(self, random_sino_problem):
        problem = random_sino_problem(8, 0.5, 1.2, seed=1)
        tightened = problem.with_bounds({0: 0.25})
        assert panel_signature(problem, "sino", "greedy") != panel_signature(
            tightened, "sino", "greedy"
        )
        # Restoring the original bound restores the original signature.
        restored = tightened.with_bounds({0: problem.bound_of(0)})
        assert panel_signature(restored, "sino", "greedy") == panel_signature(
            problem, "sino", "greedy"
        )


class TestSolutionCache:
    def test_hit_returns_layout_bound_to_the_requesting_problem(self, random_sino_problem):
        problem_a = random_sino_problem(6, 0.5, 1.2, seed=4)
        problem_b = random_sino_problem(6, 0.5, 1.2, seed=4)
        cache = SolutionCache()
        key = panel_signature(problem_a, "sino", "greedy")
        solution = solve_panel_task(PanelTask(key=((0, 0), "h"), problem=problem_a))[1]
        cache.put(key, solution)

        hit = cache.get(key, problem_b)
        assert hit is not None
        assert hit.layout == solution.layout
        assert hit.problem is problem_b
        # Mutating the returned layout must not corrupt the cached copy.
        hit.layout.reverse()
        again = cache.get(key, problem_b)
        assert again.layout == solution.layout

    def test_stats_count_hits_and_misses(self, random_sino_problem):
        cache = SolutionCache()
        problem = random_sino_problem(5, 0.4, 1.0, seed=2)
        key = panel_signature(problem, "sino", "greedy")
        assert cache.get(key, problem) is None
        cache.put(key, solve_panel_task(PanelTask(key=((0, 0), "h"), problem=problem))[1])
        assert cache.get(key, problem) is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)
        delta = stats - CacheStats(hits=1, misses=0)
        assert (delta.hits, delta.misses) == (0, 1)

    def test_lru_eviction(self, random_sino_problem):
        cache = SolutionCache(max_entries=2)
        problems = [random_sino_problem(4, 0.5, 1.0, seed=s) for s in range(3)]
        keys = [panel_signature(p, "sino", "greedy") for p in problems]
        for key, problem in zip(keys, problems):
            cache.put(key, solve_panel_task(PanelTask(key=((0, 0), "h"), problem=problem))[1])
        assert len(cache) == 2
        assert keys[0] not in cache  # oldest entry evicted
        assert keys[1] in cache and keys[2] in cache
        assert cache.stats().evictions == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SolutionCache(max_entries=0)


class TestEngine:
    def test_mutated_bounds_never_get_stale_hits(self, random_sino_problem):
        """Phase III's tightened bounds must re-solve, not reuse, a panel."""
        problem = random_sino_problem(10, 0.6, 1.1, seed=5)
        engine = Engine(cache=SolutionCache())
        first = engine.solve_panel(problem)
        # Tighten one segment's bound far below its current coupling: a stale
        # hit would return `first`, whose coupling violates the new bound.
        tightened = problem.with_bounds({0: 1e-3})
        second = engine.solve_panel(tightened)
        assert engine.cache_stats().misses == 2
        assert second.problem.bound_of(0) == pytest.approx(1e-3)
        # The tightened solve saw the tight bound; the stale layout did not.
        assert second.coupling_of(0) <= first.coupling_of(0) + 1e-12

    def test_solve_panel_cache_roundtrip(self, random_sino_problem):
        problem = random_sino_problem(8, 0.4, 1.3, seed=6)
        engine = Engine(cache=SolutionCache())
        first = engine.solve_panel(problem)
        second = engine.solve_panel(problem)
        assert first.layout == second.layout
        assert engine.cache_stats() == CacheStats(hits=1, misses=1)

    def test_solve_panels_deduplicates_identical_panels(self, random_sino_problem):
        problem = random_sino_problem(7, 0.5, 1.2, seed=8)
        clone = random_sino_problem(7, 0.5, 1.2, seed=8)
        engine = Engine(cache=SolutionCache())
        solutions = engine.solve_panels({((0, 0), "h"): problem, ((3, 1), "v"): clone})
        assert solutions[((0, 0), "h")].layout == solutions[((3, 1), "v")].layout
        # Both lookups miss (the batch is new) but only one distinct instance
        # is ever solved and stored.
        assert engine.cache_stats().misses == 2
        assert len(engine.cache) == 1

    def test_solve_panels_sorted_insertion_order(self, random_sino_problem):
        problems = {
            ((2, 1), "v"): random_sino_problem(5, 0.4, 1.0, seed=1),
            ((0, 3), "h"): random_sino_problem(5, 0.4, 1.0, seed=2),
            ((0, 0), "v"): random_sino_problem(5, 0.4, 1.0, seed=3),
        }
        solutions = Engine().solve_panels(problems)
        assert list(solutions) == sorted(problems)


class TestBackendParity:
    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_compare_flows_identical_across_backends(
        self, name, small_circuit, small_circuit_config
    ):
        """serial == thread == process on a seeded ibm01 instance."""
        reference = compare_flows(
            small_circuit.grid,
            small_circuit.netlist,
            small_circuit_config,
            engine=Engine(backend=SerialBackend(), cache=SolutionCache()),
        )
        parallel = compare_flows(
            small_circuit.grid,
            small_circuit.netlist,
            small_circuit_config,
            engine=Engine(backend=create_backend(name, workers=2), cache=SolutionCache()),
        )
        for flow in ("id_no", "isino", "gsino"):
            ref, par = reference[flow], parallel[flow]
            assert par.metrics.crosstalk.num_violations == ref.metrics.crosstalk.num_violations
            assert par.metrics.average_wirelength_um == ref.metrics.average_wirelength_um
            assert par.metrics.area.area == ref.metrics.area.area
            assert list(par.panels) == list(ref.panels)
            for key, solution in ref.panels.items():
                assert par.panels[key].layout == solution.layout

    def test_uncached_engine_matches_cached(self, small_circuit, small_circuit_config):
        cached = compare_flows(
            small_circuit.grid,
            small_circuit.netlist,
            small_circuit_config,
            engine=Engine(cache=SolutionCache()),
        )
        uncached = compare_flows(
            small_circuit.grid,
            small_circuit.netlist,
            small_circuit_config,
            engine=Engine(cache=None),
        )
        for flow in ("id_no", "isino", "gsino"):
            assert (
                cached[flow].metrics.crosstalk.num_violations
                == uncached[flow].metrics.crosstalk.num_violations
            )
            assert cached[flow].metrics.area.area == uncached[flow].metrics.area.area
            assert cached[flow].cache_stats is not None
            assert uncached[flow].cache_stats is None

    def test_flow_results_record_runtime_and_cache_traffic(
        self, small_circuit, small_circuit_config
    ):
        results = compare_flows(
            small_circuit.grid, small_circuit.netlist, small_circuit_config
        )
        total_lookups = 0
        for flow in ("id_no", "isino", "gsino"):
            assert results[flow].runtime_seconds > 0.0
            assert results[flow].cache_stats is not None
            total_lookups += results[flow].cache_stats.lookups
        assert total_lookups > 0


class TestSweepRunner:
    @staticmethod
    def _sweep_config(backend: str = "serial") -> ExperimentConfig:
        return ExperimentConfig(
            circuits=("ibm01", "ibm02"),
            sensitivity_rates=(0.3,),
            scale=0.01,
            seed=3,
            backend=backend,
            workers=None if backend == "serial" else 2,
        )

    def test_points_follow_grid_order(self):
        points = SweepRunner.points(self._sweep_config())
        assert [(p.circuit, p.seed_offset) for p in points] == [("ibm01", 0), ("ibm02", 1)]

    def test_parallel_sweep_matches_serial(self):
        serial = run_table_suite(self._sweep_config("serial"))
        threaded = run_table_suite(self._sweep_config("thread"))
        assert len(serial) == len(threaded) == 2
        for a, b in zip(serial, threaded):
            assert a.circuit.profile.name == b.circuit.profile.name
            for flow in ("id_no", "isino", "gsino"):
                assert (
                    a.flows[flow].metrics.crosstalk.num_violations
                    == b.flows[flow].metrics.crosstalk.num_violations
                )
                assert a.flows[flow].metrics.area.area == b.flows[flow].metrics.area.area

    def test_summarize_aggregates_per_flow(self):
        comparisons = run_table_suite(self._sweep_config())
        summary = SweepRunner.summarize(comparisons)
        assert set(summary) == {"id_no", "isino", "gsino"}
        for aggregate in summary.values():
            assert aggregate.instances == 2
            assert aggregate.total_runtime_seconds > 0.0
            assert aggregate.mean_wirelength_um > 0.0
        # ID+NO inserts no shields; iSINO must insert at least as many as GSINO overall.
        assert summary["id_no"].total_shields == 0

    def test_experiment_config_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExperimentConfig(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            ExperimentConfig(backend="thread", workers=0)
        # Same rule as the CLI: workers is meaningless for the serial backend.
        with pytest.raises(ValueError, match="parallel backend"):
            ExperimentConfig(backend="serial", workers=2)
