"""Tests for the technology node descriptions and parasitic extraction."""


import pytest

from repro.tech.driver import DriverModel, ReceiverModel, UniformInterfaceModel
from repro.tech.itrs import ITRS_100NM, ITRS_130NM, ITRS_70NM, Technology, get_technology
from repro.tech.parasitics import (
    WireGeometry,
    coupling_capacitance_per_meter,
    extract_parasitics,
    ground_capacitance_per_meter,
    inductive_coupling_ratio,
    mutual_inductance_per_meter,
    self_inductance_per_meter,
    wire_resistance_per_meter,
)


class TestTechnologyNodes:
    def test_paper_node_parameters(self):
        assert ITRS_100NM.vdd == pytest.approx(1.05)
        assert ITRS_100NM.clock_ghz == pytest.approx(3.0)
        assert ITRS_100NM.feature_size == pytest.approx(0.10e-6)

    def test_default_crosstalk_bound_is_fifteen_percent_of_vdd(self):
        bound = ITRS_100NM.default_crosstalk_bound()
        assert bound == pytest.approx(0.15, abs=1e-6)
        assert bound / ITRS_100NM.vdd == pytest.approx(0.1428, abs=1e-3)

    def test_noise_table_window_matches_paper(self):
        assert ITRS_100NM.crosstalk_noise_floor == pytest.approx(0.10, abs=1e-6)
        assert ITRS_100NM.crosstalk_noise_ceiling == pytest.approx(0.20, abs=1e-6)

    def test_clock_period_and_rise_time(self):
        assert ITRS_100NM.clock_period == pytest.approx(1.0 / 3.0e9)
        assert ITRS_100NM.rise_time == pytest.approx(0.1 * ITRS_100NM.clock_period)

    def test_track_pitch_is_width_plus_spacing(self):
        assert ITRS_100NM.track_pitch == pytest.approx(
            ITRS_100NM.wire_width + ITRS_100NM.wire_spacing
        )

    def test_lookup_by_name_and_alias(self):
        assert get_technology("itrs-0.10um") is ITRS_100NM
        assert get_technology("100nm") is ITRS_100NM
        assert get_technology("0.13um") is ITRS_130NM
        assert get_technology("70NM") is ITRS_70NM

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_technology("45nm")

    def test_scaled_copy_changes_only_requested_fields(self):
        stronger = ITRS_100NM.scaled(driver_resistance=15.0)
        assert stronger.driver_resistance == pytest.approx(15.0)
        assert stronger.wire_width == ITRS_100NM.wire_width
        assert stronger.name == ITRS_100NM.name

    def test_nodes_are_physically_ordered(self):
        # Smaller nodes have smaller wires and lower supply.
        assert ITRS_70NM.wire_width < ITRS_100NM.wire_width < ITRS_130NM.wire_width
        assert ITRS_70NM.vdd < ITRS_100NM.vdd < ITRS_130NM.vdd


class TestWireGeometry:
    def test_from_technology(self):
        geometry = WireGeometry.from_technology(ITRS_100NM, length=1e-3)
        assert geometry.width == ITRS_100NM.wire_width
        assert geometry.length == pytest.approx(1e-3)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            WireGeometry(width=0.0, spacing=1e-6, thickness=1e-6, height=1e-6, length=1e-3)
        with pytest.raises(ValueError):
            WireGeometry(width=1e-6, spacing=1e-6, thickness=1e-6, height=1e-6, length=-1.0)


class TestParasitics:
    def test_resistance_scales_inversely_with_cross_section(self):
        narrow = WireGeometry(width=0.25e-6, spacing=0.5e-6, thickness=1e-6, height=0.8e-6, length=1e-3)
        wide = WireGeometry(width=0.5e-6, spacing=0.5e-6, thickness=1e-6, height=0.8e-6, length=1e-3)
        r_narrow = wire_resistance_per_meter(narrow, ITRS_100NM.resistivity)
        r_wide = wire_resistance_per_meter(wide, ITRS_100NM.resistivity)
        assert r_narrow == pytest.approx(2.0 * r_wide, rel=1e-9)

    def test_ground_capacitance_grows_with_width(self):
        narrow = WireGeometry(width=0.3e-6, spacing=0.5e-6, thickness=1e-6, height=0.8e-6, length=1e-3)
        wide = WireGeometry(width=0.9e-6, spacing=0.5e-6, thickness=1e-6, height=0.8e-6, length=1e-3)
        assert ground_capacitance_per_meter(wide, 2.8) > ground_capacitance_per_meter(narrow, 2.8)

    def test_coupling_capacitance_decreases_with_spacing(self):
        tight = WireGeometry(width=0.5e-6, spacing=0.3e-6, thickness=1e-6, height=0.8e-6, length=1e-3)
        loose = WireGeometry(width=0.5e-6, spacing=1.2e-6, thickness=1e-6, height=0.8e-6, length=1e-3)
        assert coupling_capacitance_per_meter(tight, 2.8) > coupling_capacitance_per_meter(loose, 2.8)

    def test_self_inductance_positive_and_grows_with_length(self):
        short = WireGeometry.from_technology(ITRS_100NM, length=0.5e-3)
        long = WireGeometry.from_technology(ITRS_100NM, length=4e-3)
        assert self_inductance_per_meter(short) > 0.0
        assert self_inductance_per_meter(long) > self_inductance_per_meter(short)

    def test_mutual_inductance_decays_slowly_with_distance(self):
        geometry = WireGeometry.from_technology(ITRS_100NM, length=2e-3)
        near = mutual_inductance_per_meter(geometry, centre_distance=1e-6)
        far = mutual_inductance_per_meter(geometry, centre_distance=10e-6)
        assert near > far > 0.0
        # Logarithmic decay: a 10x distance increase loses far less than 10x coupling.
        assert far > near / 10.0

    def test_mutual_inductance_rejects_non_positive_distance(self):
        geometry = WireGeometry.from_technology(ITRS_100NM, length=2e-3)
        with pytest.raises(ValueError):
            mutual_inductance_per_meter(geometry, centre_distance=0.0)

    def test_extract_parasitics_bundle(self):
        parasitics = extract_parasitics(ITRS_100NM, length=1e-3)
        assert parasitics.resistance > 0
        assert parasitics.ground_capacitance > 0
        assert parasitics.coupling_capacitance > 0
        assert parasitics.self_inductance > parasitics.mutual_inductance > 0

    def test_extract_parasitics_far_neighbour_couples_less(self):
        adjacent = extract_parasitics(ITRS_100NM, length=1e-3, neighbour_tracks=1)
        distant = extract_parasitics(ITRS_100NM, length=1e-3, neighbour_tracks=4)
        assert distant.coupling_capacitance < adjacent.coupling_capacitance
        assert distant.mutual_inductance < adjacent.mutual_inductance

    def test_extract_parasitics_rejects_bad_neighbour(self):
        with pytest.raises(ValueError):
            extract_parasitics(ITRS_100NM, length=1e-3, neighbour_tracks=0)

    def test_capacitive_screening_faster_than_inductive(self):
        """The core physical motivation of the paper: Cc screens quickly, M does not."""
        near = extract_parasitics(ITRS_100NM, length=2e-3, neighbour_tracks=1)
        far = extract_parasitics(ITRS_100NM, length=2e-3, neighbour_tracks=5)
        cc_ratio = far.coupling_capacitance / near.coupling_capacitance
        m_ratio = far.mutual_inductance / near.mutual_inductance
        assert m_ratio > cc_ratio

    def test_inductive_coupling_ratio_bounded(self):
        ratio = inductive_coupling_ratio(ITRS_100NM, length=2e-3, neighbour_tracks=1)
        assert 0.0 < ratio < 1.0

    def test_scaled_to_length(self):
        parasitics = extract_parasitics(ITRS_100NM, length=1e-3)
        lumped = parasitics.scaled_to_length(2e-3)
        assert lumped.resistance == pytest.approx(parasitics.resistance * 2e-3)
        with pytest.raises(ValueError):
            parasitics.scaled_to_length(0.0)


class TestDriverReceiver:
    def test_interface_from_technology(self, interface_model):
        assert interface_model.driver.resistance == pytest.approx(ITRS_100NM.driver_resistance)
        assert interface_model.driver.vdd == pytest.approx(ITRS_100NM.vdd)
        assert interface_model.receiver.capacitance == pytest.approx(ITRS_100NM.load_capacitance)

    def test_invalid_driver_parameters(self):
        with pytest.raises(ValueError):
            DriverModel(resistance=-1.0, rise_time=1e-11, vdd=1.0)
        with pytest.raises(ValueError):
            DriverModel(resistance=30.0, rise_time=0.0, vdd=1.0)
        with pytest.raises(ValueError):
            ReceiverModel(capacitance=0.0)

    def test_cache_key_distinguishes_interfaces(self, interface_model):
        other = UniformInterfaceModel(
            driver=DriverModel(resistance=60.0, rise_time=interface_model.driver.rise_time, vdd=1.05),
            receiver=interface_model.receiver,
        )
        assert interface_model.cache_key() != other.cache_key()
        assert interface_model.cache_key() == UniformInterfaceModel.from_technology(ITRS_100NM).cache_key()
