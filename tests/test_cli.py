"""Tests for the command-line interface."""

import json
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.noise.lsk import LskTable


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"
        assert args.scale == pytest.approx(0.03)
        assert "ibm01" in args.circuits

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--circuit", "ibm04", "--rate", "0.5", "--scale", "0.02"]
        )
        assert args.circuit == "ibm04"
        assert args.rate == pytest.approx(0.5)
        assert args.backend == "serial"
        assert args.workers is None
        assert args.no_cache is False

    def test_engine_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--backend", "thread", "--workers", "2", "--no-cache"]
        )
        assert args.backend == "thread"
        assert args.workers == 2
        assert args.no_cache is True
        args = build_parser().parse_args(["tables", "--backend", "process"])
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--backend", "gpu"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workers", "0"])

    def test_characterize_arguments(self, tmp_path):
        args = build_parser().parse_args(
            ["characterize", "--samples", "16", "--output", str(tmp_path / "t.json")]
        )
        assert args.samples == 16

    def test_store_argument(self, tmp_path):
        args = build_parser().parse_args(["compare", "--store", str(tmp_path / "s")])
        assert args.store == tmp_path / "s"
        args = build_parser().parse_args(["tables", "--store", str(tmp_path / "s")])
        assert args.store == tmp_path / "s"

    def test_service_verbs_parse(self, tmp_path):
        root = str(tmp_path / "svc")
        args = build_parser().parse_args(
            ["serve", "--root", root, "--max-jobs", "2", "--idle-exit", "5", "--poll", "0.1"]
        )
        assert args.command == "serve" and args.max_jobs == 2
        args = build_parser().parse_args(
            ["submit", "--root", root, "--scenario", "smoke",
             "--param", "seed=9", "--priority", "3"]
        )
        assert args.scenario == "smoke" and args.param == ["seed=9"]
        args = build_parser().parse_args(["status", "--root", root, "--json"])
        assert args.json is True
        args = build_parser().parse_args(["cancel", "--root", root, "some-job"])
        assert args.job_id == "some-job"
        args = build_parser().parse_args(["gc", "--root", root, "--max-mb", "8", "--purge-jobs"])
        assert args.purge_jobs is True
        # --root is mandatory for every service verb.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_cluster_verbs_parse(self, tmp_path):
        root = str(tmp_path / "svc")
        args = build_parser().parse_args(
            ["serve", "--root", root, "--workers", "3", "--lease-ttl", "5"]
        )
        assert args.workers == 3 and args.lease_ttl == pytest.approx(5.0)
        assert args.cluster_worker is False and args.backend_workers is None
        args = build_parser().parse_args(["status", "--root", root, "--cluster"])
        assert args.cluster is True
        args = build_parser().parse_args(
            ["loadgen", "--root", root, "--scenario", "dense-bus", "--jobs", "6",
             "--param", "panels=2", "--timeout", "30"]
        )
        assert args.jobs == 6 and args.param == ["panels=2"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--root", root, "--jobs", "0"])

    def test_serve_workers_is_cluster_size_not_backend_pool(self, tmp_path):
        """On serve, --workers never requires a parallel backend; the engine
        pool flag is --backend-workers and does."""
        from repro.cli import main

        root = str(tmp_path / "svc")
        with pytest.raises(SystemExit):
            main(["serve", "--root", root, "--backend-workers", "2"])  # serial backend
        # A serial-backend cluster of 1 is valid and runs to idle exit.
        assert main(["serve", "--root", root, "--workers", "1", "--poll", "0.05",
                     "--idle-exit", "0.2"]) == 0


class TestCommands:
    def test_compare_command_runs(self, capsys):
        exit_code = main(
            ["compare", "--circuit", "ibm01", "--rate", "0.3", "--scale", "0.01", "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "gsino" in output
        assert "violations=" in output
        # Per-flow runtime and cache hit-rate are surfaced.
        assert "runtime=" in output
        assert "cache_hits=" in output
        assert "panel cache:" in output

    def test_compare_command_with_thread_backend_and_no_cache(self, capsys):
        exit_code = main(
            [
                "compare", "--circuit", "ibm01", "--rate", "0.3",
                "--scale", "0.01", "--seed", "3",
                "--backend", "thread", "--workers", "2", "--no-cache",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend=thread" in output
        assert "cache=off" in output
        assert "cache_hits=" not in output

    def test_tables_command_writes_output_file(self, tmp_path, capsys):
        output = tmp_path / "tables.txt"
        exit_code = main(
            [
                "tables",
                "--circuits", "ibm01",
                "--rates", "0.3",
                "--scale", "0.01",
                "--seed", "3",
                "--output", str(output),
            ]
        )
        assert exit_code == 0
        text = output.read_text()
        assert "Table 1" in text and "Table 3" in text
        assert "ibm01" in capsys.readouterr().out

    def test_characterize_command_saves_table(self, tmp_path, capsys):
        output = tmp_path / "table.json"
        exit_code = main(
            ["characterize", "--samples", "12", "--seed", "4", "--output", str(output)]
        )
        assert exit_code == 0
        data = json.loads(output.read_text())
        table = LskTable.from_dict(data)
        assert table.num_entries == 100
        assert "LSK budget" in capsys.readouterr().out

    def test_compare_command_with_store_warm_starts(self, tmp_path, capsys):
        command = [
            "compare", "--circuit", "ibm01", "--rate", "0.3",
            "--scale", "0.01", "--seed", "3",
            "--store", str(tmp_path / "store"),
        ]
        assert main(command) == 0
        cold = capsys.readouterr().out
        assert "persistent store:" in cold and "cold solves" in cold
        # A fresh engine (new in-memory cache) over the same store directory:
        # whole stage artifacts come from disk, so nothing is re-solved —
        # the panel cache is not even consulted.
        assert main(command) == 0
        warm = capsys.readouterr().out
        assert "zero redundant solves" in warm
        assert "stage graph: 0 executed" in warm

    @pytest.mark.parametrize("verb", ["compare", "tables"])
    def test_store_conflicts_with_no_cache(self, tmp_path, verb):
        with pytest.raises(SystemExit):
            main([verb, "--scale", "0.01", "--no-cache", "--store", str(tmp_path / "s")])


class TestServiceCommands:
    def test_submit_list_needs_no_root(self, capsys):
        exit_code = main(["submit", "--list"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "smoke" in output and "dense-bus" in output

    def test_submit_requires_scenario_and_root(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", "--root", str(tmp_path / "svc")])
        with pytest.raises(SystemExit):
            main(["submit", "--scenario", "smoke"])

    def test_submit_operator_errors_are_clean(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        with pytest.raises(SystemExit):
            main(["submit", "--root", root, "--scenario", "smoke", "--param", "not-a-pair"])
        with pytest.raises(SystemExit, match="submit rejected"):
            main(["submit", "--root", root, "--scenario", "no-such-scenario"])
        with pytest.raises(SystemExit, match="submit rejected"):
            main(["submit", "--root", root, "--scenario", "smoke", "--param", "panels=0"])
        with pytest.raises(SystemExit, match="submit rejected"):
            main(["submit", "--root", root, "--scenario", "smoke", "--param", "panels=abc"])
        with pytest.raises(SystemExit, match="submit rejected"):
            main(["submit", "--root", root, "--scenario", "smoke", "--param", "seed=1.5"])

    def test_submit_wait_without_daemon_times_out_cleanly(self, tmp_path, capsys):
        exit_code = main(
            ["submit", "--root", str(tmp_path / "svc"), "--scenario", "smoke",
             "--wait", "0.3"]
        )
        assert exit_code == 1
        assert "is a daemon serving" in capsys.readouterr().out

    def test_serve_submit_status_gc_loop(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert main(["submit", "--root", root, "--scenario", "smoke", "--param", "seed=5"]) == 0
        submitted = capsys.readouterr().out
        job_id = submitted.split()[1]
        assert main(["serve", "--root", root, "--max-jobs", "1", "--idle-exit", "0.1",
                     "--poll", "0.05"]) == 0
        assert "served 1 job(s)" in capsys.readouterr().out
        assert main(["status", "--root", root]) == 0
        status = capsys.readouterr().out
        assert job_id in status and "1 done" in status
        assert "cache totals:" in status and "store:" in status
        assert "daemon: not running" in status  # clean exit, despite fresh heartbeat
        # An in-flight heartbeat (stopped not yet set) reads as a live daemon.
        heartbeat_path = Path(root) / "service.json"
        heartbeat = json.loads(heartbeat_path.read_text())
        heartbeat["stopped"] = False
        heartbeat["updated_at"] = time.time()
        heartbeat_path.write_text(json.dumps(heartbeat))
        assert main(["status", "--root", root]) == 0
        status = capsys.readouterr().out
        assert "daemon: running" in status and "daemon cache:" in status
        assert main(["status", "--root", root, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"]["counts"] == {"done": 1}
        assert main(["gc", "--root", root, "--purge-jobs"]) == 0
        assert "purged 1 job(s)" in capsys.readouterr().out

    def test_cancel_command(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        main(["submit", "--root", root, "--scenario", "smoke"])
        job_id = capsys.readouterr().out.split()[1]
        assert main(["cancel", "--root", root, job_id]) == 0
        assert "cancellation requested" in capsys.readouterr().out
        assert main(["cancel", "--root", root, "nope"]) == 1

    def test_loadgen_and_cluster_status_loop(self, tmp_path, capsys):
        """loadgen drains through a cluster worker; status --cluster reports it."""
        import threading

        from repro.service import ClusterWorker, WorkerConfig

        root = tmp_path / "svc"
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        thread = threading.Thread(target=worker.run, kwargs={"idle_exit": 0.5})
        thread.start()
        try:
            exit_code = main(
                ["loadgen", "--root", str(root), "--scenario", "smoke",
                 "--jobs", "3", "--timeout", "30"]
            )
        finally:
            thread.join()
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "3 job(s) submitted" in output
        assert "3 done, 0 failed, 0 cancelled" in output
        assert "throughput" in output and "p50=" in output
        assert main(["status", "--root", str(root), "--cluster"]) == 0
        status = capsys.readouterr().out
        assert "cluster: 1 workers" in status
        assert "done=3" in status and "reclaimed=0" in status
        assert main(["status", "--root", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cluster"]["workers"][worker.identity.worker_id]["alive"] is False

    def test_loadgen_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(SystemExit, match="loadgen rejected"):
            main(["loadgen", "--root", str(tmp_path / "svc"), "--scenario", "nope"])

    def test_loadgen_no_wait_submits_and_returns(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main(
            ["loadgen", "--root", str(root), "--scenario", "smoke",
             "--jobs", "2", "--no-wait"]
        ) == 0
        output = capsys.readouterr().out
        assert "2 job(s) submitted" in output
        assert len(list((root / "jobs").glob("*.json"))) == 2
