"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.noise.lsk import LskTable


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"
        assert args.scale == pytest.approx(0.03)
        assert "ibm01" in args.circuits

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--circuit", "ibm04", "--rate", "0.5", "--scale", "0.02"]
        )
        assert args.circuit == "ibm04"
        assert args.rate == pytest.approx(0.5)
        assert args.backend == "serial"
        assert args.workers is None
        assert args.no_cache is False

    def test_engine_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--backend", "thread", "--workers", "2", "--no-cache"]
        )
        assert args.backend == "thread"
        assert args.workers == 2
        assert args.no_cache is True
        args = build_parser().parse_args(["tables", "--backend", "process"])
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--backend", "gpu"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workers", "0"])

    def test_characterize_arguments(self, tmp_path):
        args = build_parser().parse_args(
            ["characterize", "--samples", "16", "--output", str(tmp_path / "t.json")]
        )
        assert args.samples == 16


class TestCommands:
    def test_compare_command_runs(self, capsys):
        exit_code = main(
            ["compare", "--circuit", "ibm01", "--rate", "0.3", "--scale", "0.01", "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "gsino" in output
        assert "violations=" in output
        # Per-flow runtime and cache hit-rate are surfaced.
        assert "runtime=" in output
        assert "cache_hits=" in output
        assert "panel cache:" in output

    def test_compare_command_with_thread_backend_and_no_cache(self, capsys):
        exit_code = main(
            [
                "compare", "--circuit", "ibm01", "--rate", "0.3",
                "--scale", "0.01", "--seed", "3",
                "--backend", "thread", "--workers", "2", "--no-cache",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend=thread" in output
        assert "cache=off" in output
        assert "cache_hits=" not in output

    def test_tables_command_writes_output_file(self, tmp_path, capsys):
        output = tmp_path / "tables.txt"
        exit_code = main(
            [
                "tables",
                "--circuits", "ibm01",
                "--rates", "0.3",
                "--scale", "0.01",
                "--seed", "3",
                "--output", str(output),
            ]
        )
        assert exit_code == 0
        text = output.read_text()
        assert "Table 1" in text and "Table 3" in text
        assert "ibm01" in capsys.readouterr().out

    def test_characterize_command_saves_table(self, tmp_path, capsys):
        output = tmp_path / "table.json"
        exit_code = main(
            ["characterize", "--samples", "12", "--seed", "4", "--output", str(output)]
        )
        assert exit_code == 0
        data = json.loads(output.read_text())
        table = LskTable.from_dict(data)
        assert table.num_entries == 100
        assert "LSK budget" in capsys.readouterr().out
