"""Tests for the repro.flow stage-graph subsystem.

Covers the golden-equivalence guarantee (staged flows bit-identical to the
retained pre-refactor oracle in ``repro.gsino.reference``), stage sharing
within one comparison, store-backed resume with zero redundant stage
executions, the artifact codecs, the speculative Phase III engine dispatch,
flow scenarios in the service layer, and the ``repro flows`` CLI verb.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.experiments import (
    CircuitComparison,
    ExperimentConfig,
    run_circuit_comparison,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.bench.ibm import generate_circuit
from repro.cli import main
from repro.engine.backends import create_backend
from repro.engine.cache import SolutionCache
from repro.engine.panels import Engine
from repro.engine.signature import STAGE_SIGNATURE_VERSION, instance_token, stage_signature
from repro.flow.artifacts import (
    decode_budgets,
    decode_metrics,
    decode_panels,
    decode_refine,
    decode_routing,
    encode_budgets,
    encode_metrics,
    encode_panels,
    encode_refine,
    encode_routing,
)
from repro.flow.flows import (
    BUDGETS,
    FLOW_NAMES,
    PANELS_GSINO,
    REFINE_GSINO,
    build_context,
    flow_graph,
    list_flows,
    run_compare,
    run_flow,
)
from repro.flow.graph import FlowGraph, Stage
from repro.flow.runner import FlowRunner
from repro.gsino.budgeting import compute_budgets
from repro.gsino.config import GsinoConfig
from repro.gsino.pipeline import compare_flows, run_gsino
from repro.gsino.reference import (
    reference_compare_flows,
    reference_run_gsino,
    reference_run_id_no,
    reference_run_isino,
)
from repro.service import Job, JobQueue, ResultStore, Scheduler
from repro.service.scenarios import (
    FlowScenarioSpec,
    generate_scenario,
    scenario_kind,
    scenario_spec,
)

SCALE = 0.01


@pytest.fixture(scope="module")
def flow_circuit():
    """A tiny ibm01 instance shared by the flow tests."""
    return generate_circuit("ibm01", sensitivity_rate=0.3, scale=SCALE, seed=11)


@pytest.fixture(scope="module")
def flow_config():
    return GsinoConfig(length_scale=1.0 / (SCALE**0.5))


@pytest.fixture(scope="module")
def staged(flow_circuit, flow_config):
    """The three staged flows over one shared runner (and the runner)."""
    context = build_context(
        flow_circuit.grid, flow_circuit.netlist, flow_config, Engine(cache=SolutionCache())
    )
    return run_compare(context)


@pytest.fixture(scope="module")
def reference(flow_circuit, flow_config):
    """The pre-refactor monolithic comparison on the same instance."""
    return reference_compare_flows(flow_circuit.grid, flow_circuit.netlist, flow_config)


def _layouts(result):
    return {key: solution.layout for key, solution in result.panels.items()}


def _routes(result):
    return {net_id: route.edges for net_id, route in result.routing.routes.items()}


class TestGoldenEquivalence:
    """The staged flows are bit-identical to the pre-refactor oracle."""

    @pytest.mark.parametrize("flow", FLOW_NAMES)
    def test_metrics_bit_identical(self, staged, reference, flow):
        assert staged.results[flow].metrics.summary() == reference[flow].metrics.summary()

    @pytest.mark.parametrize("flow", FLOW_NAMES)
    def test_panel_layouts_bit_identical(self, staged, reference, flow):
        assert _layouts(staged.results[flow]) == _layouts(reference[flow])

    @pytest.mark.parametrize("flow", FLOW_NAMES)
    def test_routes_bit_identical(self, staged, reference, flow):
        assert _routes(staged.results[flow]) == _routes(reference[flow])

    def test_phase3_report_identical(self, staged, reference):
        assert dataclasses.asdict(staged.results["gsino"].phase3_report) == dataclasses.asdict(
            reference["gsino"].phase3_report
        )

    def test_budgets_identical(self, staged, reference):
        staged_budgets = staged.results["gsino"].budgets
        reference_budgets = reference["gsino"].budgets
        assert set(staged_budgets) == set(reference_budgets)
        for net_id in staged_budgets:
            assert staged_budgets[net_id] == reference_budgets[net_id]

    def test_table_rows_bit_identical(self, flow_circuit, staged, reference):
        def comparisons(flows):
            return [
                CircuitComparison(circuit=flow_circuit, sensitivity_rate=0.3, flows=flows)
            ]

        staged_cmp = comparisons(staged.results)
        reference_cmp = comparisons(reference)
        assert table1_rows(staged_cmp) == table1_rows(reference_cmp)
        assert table2_rows(staged_cmp) == table2_rows(reference_cmp)
        assert table3_rows(staged_cmp) == table3_rows(reference_cmp)

    def test_run_gsino_matches_reference(self, flow_circuit, flow_config):
        staged = run_gsino(flow_circuit.grid, flow_circuit.netlist, flow_config)
        oracle = reference_run_gsino(flow_circuit.grid, flow_circuit.netlist, flow_config)
        assert staged.metrics.summary() == oracle.metrics.summary()
        assert _layouts(staged) == _layouts(oracle)

    def test_standalone_baselines_match_reference(self, flow_circuit, flow_config):
        from repro.gsino.baselines import run_id_no, run_isino

        assert (
            run_id_no(flow_circuit.grid, flow_circuit.netlist, flow_config).metrics.summary()
            == reference_run_id_no(
                flow_circuit.grid, flow_circuit.netlist, flow_config
            ).metrics.summary()
        )
        assert (
            run_isino(flow_circuit.grid, flow_circuit.netlist, flow_config).metrics.summary()
            == reference_run_isino(
                flow_circuit.grid, flow_circuit.netlist, flow_config
            ).metrics.summary()
        )


class TestStageSharing:
    """Shared ancestors are materialised exactly once per comparison."""

    def test_baseline_routing_executed_once(self, staged):
        assert staged.runner.executed_stages("route_id") == 2  # baseline + reserved
        assert staged.runner.executed_stages("budgeting") == 1

    def test_three_artifacts_shared(self, staged):
        # route_baseline for isino; budgets for isino and gsino.
        assert staged.runner.shared_count == 3

    def test_baselines_share_routing_object(self, staged):
        assert staged.results["id_no"].routing is staged.results["isino"].routing

    def test_all_flows_share_budgets_object(self, staged):
        budgets = staged.results["id_no"].budgets
        assert staged.results["isino"].budgets is budgets
        assert staged.results["gsino"].budgets is budgets

    def test_stage_timings_reported(self, staged):
        for flow in FLOW_NAMES:
            timings = staged.results[flow].stage_timings
            assert timings is not None and timings
            assert all(seconds >= 0.0 for seconds in timings.values())
        # iSINO reuses the baseline routing: zero additional seconds.
        assert staged.results["isino"].stage_timings["route_baseline"] == 0.0

    def test_compare_flows_facade_unchanged(self, flow_circuit, flow_config, staged):
        results = compare_flows(flow_circuit.grid, flow_circuit.netlist, flow_config)
        assert set(results) == set(FLOW_NAMES)
        for flow in FLOW_NAMES:
            assert results[flow].metrics.summary() == staged.results[flow].metrics.summary()

    def test_seeded_budgets_are_used(self, flow_circuit, flow_config):
        budgets = compute_budgets(flow_circuit.netlist, flow_config)
        result = run_gsino(flow_circuit.grid, flow_circuit.netlist, flow_config, budgets=budgets)
        assert result.budgets is budgets

    def test_seeded_artifacts_never_touch_the_store(self, flow_circuit, flow_config, tmp_path):
        # A caller-supplied (unverifiable) budgets value must not let any
        # derived artifact be persisted under its canonical signature — a
        # later un-seeded run with the same store would silently restore
        # results derived from the foreign value.
        budgets = compute_budgets(flow_circuit.netlist, flow_config)
        doctored = dict(budgets)
        store = ResultStore(tmp_path / "store")
        context = build_context(
            flow_circuit.grid, flow_circuit.netlist, flow_config, Engine(cache=SolutionCache())
        )
        runner = FlowRunner(context, store=store)
        run_flow("gsino", context, runner=runner, seeds={BUDGETS: doctored})
        graph = flow_graph("gsino")
        # Everything downstream of the seeded budgets stays out of the
        # store; the independent reserved routing is legitimately persisted.
        for artifact in (BUDGETS, PANELS_GSINO, REFINE_GSINO, "metrics_gsino"):
            assert store.get_artifact(runner.signature_of(graph, artifact)) is None
        assert store.get_artifact(runner.signature_of(graph, "route_reserved")) is not None
        # And a seeded re-run does not restore canonical artifacts either.
        cold_store = ResultStore(tmp_path / "canonical")
        cold_context = build_context(
            flow_circuit.grid, flow_circuit.netlist, flow_config, Engine(cache=SolutionCache())
        )
        run_compare(cold_context, store=cold_store)  # populate canonical artifacts
        seeded_runner = FlowRunner(cold_context, store=cold_store)
        seeded_runner.seed(flow_graph("gsino"), BUDGETS, doctored)
        seeded_runner.materialize(flow_graph("gsino"))
        outcomes = {e.artifact: e.outcome for e in seeded_runner.executions}
        assert outcomes[PANELS_GSINO] == "executed"  # not restored past the seed


class TestGraph:
    def test_registered_flows(self):
        assert [name for name, _ in list_flows()] == list(FLOW_NAMES)

    def test_unknown_flow_rejected(self):
        with pytest.raises(KeyError):
            flow_graph("warp")

    def test_schedule_is_dependency_ordered(self):
        graph = flow_graph("gsino")
        order = graph.schedule()
        for artifact in order:
            for needed in graph.stages[artifact].inputs:
                assert order.index(needed) < order.index(artifact)

    def test_describe_lists_every_stage(self):
        lines = flow_graph("isino").describe()
        assert any(line.startswith("route_baseline <- route_id") for line in lines)
        assert any("solver" not in line for line in lines)

    def test_unknown_input_rejected(self):
        stage = Stage(name="s", inputs=("missing",), compute=lambda context, inputs: None)
        with pytest.raises(ValueError):
            FlowGraph(name="bad", stages={"a": stage}, targets=("a",))

    def test_cycle_rejected(self):
        stage_a = Stage(name="a", inputs=("b",), compute=lambda context, inputs: None)
        stage_b = Stage(name="b", inputs=("a",), compute=lambda context, inputs: None)
        with pytest.raises(ValueError):
            FlowGraph(name="cyclic", stages={"a": stage_a, "b": stage_b}, targets=("a",))

    def test_unknown_target_rejected(self):
        stage = Stage(name="s", inputs=(), compute=lambda context, inputs: None)
        with pytest.raises(ValueError):
            FlowGraph(name="bad", stages={"a": stage}, targets=("z",))


class TestSignatures:
    def test_instance_token_stable_across_regeneration(self, flow_circuit):
        twin = generate_circuit("ibm01", sensitivity_rate=0.3, scale=SCALE, seed=11)
        assert instance_token(flow_circuit.grid, flow_circuit.netlist) == instance_token(
            twin.grid, twin.netlist
        )

    def test_instance_token_differs_across_seeds(self, flow_circuit):
        other = generate_circuit("ibm01", sensitivity_rate=0.3, scale=SCALE, seed=12)
        assert instance_token(flow_circuit.grid, flow_circuit.netlist) != instance_token(
            other.grid, other.netlist
        )

    def test_stage_signature_covers_every_field(self):
        base = dict(stage="s", version=1, params="-", instance="i", config="c", inputs=["x"])
        signature = stage_signature(**base)
        for key, value in (
            ("stage", "t"),
            ("version", 2),
            ("params", "solver=sino"),
            ("instance", "j"),
            ("config", "d"),
            ("inputs", ["y"]),
        ):
            assert stage_signature(**{**base, key: value}) != signature

    def test_artifact_signatures_differ_across_configs(self, flow_circuit, flow_config):
        context_a = build_context(flow_circuit.grid, flow_circuit.netlist, flow_config, Engine())
        context_b = build_context(
            flow_circuit.grid,
            flow_circuit.netlist,
            flow_config.with_changes(refine_kth_shrink=0.5),
            Engine(),
        )
        graph = flow_graph("gsino")
        for artifact in graph.schedule():
            assert FlowRunner(context_a).signature_of(graph, artifact) != FlowRunner(
                context_b
            ).signature_of(graph, artifact)

    def test_artifact_signatures_cover_technology_fields(self, flow_circuit, flow_config):
        # Any electrical parameter of the node feeds the LSK model; a
        # doctored technology with the same name and Vdd must still produce
        # different stage signatures (no stale cross-technology restores).
        from repro.tech.itrs import ITRS_100NM

        doctored = dataclasses.replace(
            ITRS_100NM, driver_resistance=ITRS_100NM.driver_resistance * 2
        )
        context_a = build_context(flow_circuit.grid, flow_circuit.netlist, flow_config, Engine())
        context_b = build_context(
            flow_circuit.grid,
            flow_circuit.netlist,
            flow_config.with_changes(technology=doctored),
            Engine(),
        )
        graph = flow_graph("gsino")
        assert FlowRunner(context_a).signature_of(graph, BUDGETS) != FlowRunner(
            context_b
        ).signature_of(graph, BUDGETS)

    def test_artifact_signatures_stable_within_config(self, flow_circuit, flow_config):
        graph = flow_graph("gsino")
        context = build_context(flow_circuit.grid, flow_circuit.netlist, flow_config, Engine())
        twin = build_context(flow_circuit.grid, flow_circuit.netlist, flow_config, Engine())
        for artifact in graph.schedule():
            assert FlowRunner(context).signature_of(graph, artifact) == FlowRunner(
                twin
            ).signature_of(graph, artifact)


class TestStoreResume:
    def _context(self, circuit, config, root):
        store = ResultStore(root)
        return build_context(
            circuit.grid, circuit.netlist, config, Engine(cache=SolutionCache(store=store))
        ), store

    def test_warm_compare_restores_every_stage(self, flow_circuit, flow_config, tmp_path):
        context, store = self._context(flow_circuit, flow_config, tmp_path / "store")
        cold = run_compare(context, store=store)
        assert cold.runner.executed_count == 10
        warm_context, warm_store = self._context(flow_circuit, flow_config, tmp_path / "store")
        warm = run_compare(warm_context, store=warm_store)
        assert warm.runner.executed_count == 0
        assert warm.runner.restored_count == 10
        for flow in FLOW_NAMES:
            assert (
                warm.results[flow].metrics.summary() == cold.results[flow].metrics.summary()
            )
            assert _layouts(warm.results[flow]) == _layouts(cold.results[flow])
            assert _routes(warm.results[flow]) == _routes(cold.results[flow])

    def test_interrupted_run_resumes_stage_granular(self, flow_circuit, flow_config, tmp_path):
        context, store = self._context(flow_circuit, flow_config, tmp_path / "store")
        run_flow("id_no", context, store=store)  # "interrupted" after the first flow
        resumed_context, resumed_store = self._context(
            flow_circuit, flow_config, tmp_path / "store"
        )
        outcome = run_compare(resumed_context, store=resumed_store)
        by_artifact = {}
        for execution in outcome.runner.executions:
            by_artifact.setdefault(execution.artifact, execution.outcome)
        assert by_artifact["route_baseline"] == "restored"
        assert by_artifact[BUDGETS] == "restored"
        assert by_artifact["panels_id_no"] == "restored"
        assert by_artifact["route_reserved"] == "executed"
        assert by_artifact[REFINE_GSINO] == "executed"

    def test_corrupt_artifact_falls_back_to_compute(self, flow_circuit, flow_config, tmp_path):
        context, store = self._context(flow_circuit, flow_config, tmp_path / "store")
        cold = run_compare(context, store=store)
        graph = flow_graph("gsino")
        signature = cold.runner.signature_of(graph, PANELS_GSINO)
        # Poison the persisted payload with a structurally valid but wrong body.
        store.put_artifact(signature, {"panels": []})
        warm_context, warm_store = self._context(flow_circuit, flow_config, tmp_path / "store")
        warm = run_compare(warm_context, store=warm_store)
        assert warm.results["gsino"].metrics.summary() == cold.results["gsino"].metrics.summary()
        by_artifact = {e.artifact: e.outcome for e in warm.runner.executions}
        assert by_artifact[PANELS_GSINO] == "executed"

    def test_store_artifact_version_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_artifact("a" * 64, {"k": 1})
        path = store._blob_path("a" * 64)
        payload = json.loads(path.read_text())
        payload["stage_signature_version"] = STAGE_SIGNATURE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.get_artifact("a" * 64) is None
        # A scheme mismatch is a plain miss: the intact blob is left in
        # place (dead weight for the LRU), not counted as corruption.
        assert store.stats().corrupt_dropped == 0
        assert store.stats().misses >= 1
        assert path.exists()

    def test_store_artifact_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = {"nested": {"values": [1, 2.5, None, "x"]}}
        store.put_artifact("b" * 64, payload)
        assert store.get_artifact("b" * 64) == payload
        assert store.get_artifact("c" * 64) is None


class TestCodecs:
    @pytest.fixture(scope="class")
    def artifacts(self, flow_circuit, flow_config):
        context = build_context(
            flow_circuit.grid, flow_circuit.netlist, flow_config, Engine(cache=SolutionCache())
        )
        runner = FlowRunner(context)
        values = runner.materialize(flow_graph("gsino"))
        return context, values

    def _roundtrip(self, payload):
        return json.loads(json.dumps(payload))

    def test_budgets_roundtrip(self, artifacts):
        _context, values = artifacts
        decoded = decode_budgets(self._roundtrip(encode_budgets(values[BUDGETS])))
        assert decoded == values[BUDGETS]
        assert list(decoded) == list(values[BUDGETS])

    def test_routing_roundtrip(self, artifacts):
        context, values = artifacts
        artifact = values["route_reserved"]
        decoded = decode_routing(context, self._roundtrip(encode_routing(artifact)))
        assert decoded.report == artifact.report
        assert list(decoded.routing.routes) == list(artifact.routing.routes)
        for net_id, route in artifact.routing.routes.items():
            assert decoded.routing.routes[net_id].edges == route.edges
            assert decoded.routing.routes[net_id].pin_regions == route.pin_regions
        assert (
            decoded.routing.total_wirelength_um() == artifact.routing.total_wirelength_um()
        )

    def test_panels_roundtrip(self, artifacts):
        _context, values = artifacts
        artifact = values[PANELS_GSINO]
        decoded = decode_panels(
            artifact.problems, self._roundtrip(encode_panels(artifact))
        )
        assert {k: s.layout for k, s in decoded.panels.items()} == {
            k: s.layout for k, s in artifact.panels.items()
        }

    def test_panels_key_mismatch_rejected(self, artifacts):
        _context, values = artifacts
        artifact = values[PANELS_GSINO]
        payload = self._roundtrip(encode_panels(artifact))
        payload["panels"] = payload["panels"][:-1]
        with pytest.raises(ValueError):
            decode_panels(artifact.problems, payload)

    def test_refine_roundtrip(self, artifacts):
        _context, values = artifacts
        base = values[PANELS_GSINO]
        artifact = values[REFINE_GSINO]
        decoded = decode_refine(base, self._roundtrip(encode_refine(base, artifact)))
        assert dataclasses.asdict(decoded.report) == dataclasses.asdict(artifact.report)
        assert {k: s.layout for k, s in decoded.phase2.panels.items()} == {
            k: s.layout for k, s in artifact.phase2.panels.items()
        }
        for key, problem in artifact.phase2.problems.items():
            assert dict(decoded.phase2.problems[key].kth) == dict(problem.kth)

    def test_metrics_roundtrip(self, artifacts):
        _context, values = artifacts
        routing = values["route_reserved"]
        artifact = values["metrics_gsino"]
        decoded = decode_metrics(routing, self._roundtrip(encode_metrics(artifact)))
        assert decoded.metrics.summary() == artifact.metrics.summary()
        assert decoded.metrics.crosstalk.net_noise == artifact.metrics.crosstalk.net_noise
        assert decoded.congestion.total_overflow() == artifact.congestion.total_overflow()


class TestSpeculativePhase3:
    def test_parallel_backend_bit_identical(self, flow_circuit, flow_config):
        serial = run_gsino(flow_circuit.grid, flow_circuit.netlist, flow_config)
        with Engine(backend=create_backend("thread", 2), cache=SolutionCache()) as engine:
            speculative = run_gsino(
                flow_circuit.grid, flow_circuit.netlist, flow_config, engine=engine
            )
        assert serial.metrics.summary() == speculative.metrics.summary()
        assert _layouts(serial) == _layouts(speculative)
        assert dataclasses.asdict(serial.phase3_report) == dataclasses.asdict(
            speculative.phase3_report
        )


class TestInstanceConstruction:
    def test_instance_generated_once_per_comparison(self, monkeypatch):
        import repro.analysis.experiments as experiments

        calls = []
        real = experiments.generate_circuit

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(experiments, "generate_circuit", counting)
        config = ExperimentConfig(circuits=("ibm01",), sensitivity_rates=(0.3,), scale=SCALE)
        comparison = run_circuit_comparison("ibm01", 0.3, config)
        assert len(calls) == 1
        grid = comparison.flows["id_no"].routing.grid
        assert comparison.flows["gsino"].routing.grid is grid
        assert comparison.flows["isino"].routing.grid is grid


class TestFlowScenarios:
    def test_scenario_kinds(self):
        assert scenario_kind("flow-compare") == "flow"
        assert scenario_kind("smoke") == "panels"

    def test_scenario_flow_names_pin_the_flow_registry(self):
        # scenarios.py duplicates the flow-name tuple on purpose (keeping
        # the daemon's startup import light); the duplicate must track the
        # real registry.
        from repro.service.scenarios import FLOW_SCENARIO_FLOWS

        assert FLOW_SCENARIO_FLOWS == FLOW_NAMES

    def test_generate_scenario_rejects_flow_scenarios(self):
        with pytest.raises(ValueError):
            generate_scenario("flow-gsino")

    def test_flow_scenario_validation(self):
        with pytest.raises(ValueError):
            FlowScenarioSpec(name="x", description="", flow="warp")
        with pytest.raises(KeyError):
            FlowScenarioSpec(name="x", description="", circuit="ibm99")
        with pytest.raises(ValueError):
            FlowScenarioSpec(name="x", description="", scale=0.0)

    def test_flow_scenario_param_overrides(self):
        spec = scenario_spec("flow-gsino").with_params({"circuit": "ibm02", "scale": 0.02})
        assert spec.circuit == "ibm02"
        assert spec.scale == pytest.approx(0.02)
        with pytest.raises(ValueError):
            scenario_spec("flow-gsino").with_params({"panels": 3})

    def test_flow_job_runs_and_reports(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = JobQueue()
        queue.submit(Job(job_id="flow-1", scenario="flow-gsino", params={"scale": SCALE}))
        scheduler = Scheduler(queue, Engine(cache=SolutionCache(store=store)))
        job = scheduler.run_once()
        assert job.status == "done"
        assert set(job.result["flows"]) == {"gsino"}
        assert job.result["stages"]["executed"] == 5
        assert job.result["panels"] > 0

        # A repeated submission restores every stage from the store.
        warm_queue = JobQueue()
        warm_queue.submit(Job(job_id="flow-2", scenario="flow-gsino", params={"scale": SCALE}))
        warm = Scheduler(
            warm_queue, Engine(cache=SolutionCache(store=ResultStore(tmp_path / "store")))
        ).run_once()
        assert warm.status == "done"
        assert warm.result["stages"]["executed"] == 0
        assert warm.result["stages"]["restored"] == 5
        assert warm.result["flows"] == job.result["flows"]

    def test_flow_compare_job_shares_stages(self):
        queue = JobQueue()
        queue.submit(Job(job_id="cmp-1", scenario="flow-compare", params={"scale": SCALE}))
        job = Scheduler(queue, Engine(cache=SolutionCache())).run_once()
        assert job.status == "done"
        assert set(job.result["flows"]) == set(FLOW_NAMES)
        assert job.result["stages"]["executed"] == 10
        assert job.result["stages"]["shared"] == 3
        assert job.result["batches"] == 3


class TestFlowsCli:
    def test_list(self, capsys):
        assert main(["flows", "--list"]) == 0
        out = capsys.readouterr().out
        for name in FLOW_NAMES:
            assert name in out

    def test_show(self, capsys):
        assert main(["flows", "--show", "gsino"]) == 0
        out = capsys.readouterr().out
        assert "refine_gsino <- refine_phase3" in out

    def test_run_requires_a_mode(self):
        with pytest.raises(SystemExit):
            main(["flows"])

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["flows", "--run", "gsino", "--resume"])
        with pytest.raises(SystemExit):
            main(["flows", "--resume", "--store", "somewhere"])

    def test_run_and_resume(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        cold_command = ["flows", "--run", "compare", "--scale", str(SCALE), "--store", store]
        assert main(cold_command) == 0
        cold = capsys.readouterr().out
        assert "stage graph: 10 executed, 0 restored, 3 shared" in cold
        warm_command = ["flows", "--run", "gsino", "--scale", str(SCALE)]
        warm_command += ["--store", store, "--resume"]
        assert main(warm_command) == 0
        warm = capsys.readouterr().out
        assert "stage graph: 0 executed, 5 restored, 0 shared" in warm
        assert "5 stage(s) restored, 0 executed" in warm

    def test_compare_prints_stage_breakdown(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        arguments = ["compare", "--circuit", "ibm01", "--scale", str(SCALE), "--store", store]
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert "stages: route_baseline=" in cold
        assert "stage graph: 10 executed" in cold
        assert main(arguments) == 0
        warm = capsys.readouterr().out
        assert "stage graph: 0 executed, 10 restored, 3 shared" in warm
        assert "zero redundant solves" in warm
