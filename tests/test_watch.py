"""Tests for repro.watch — the dashboard's data layer and (optionally) its TUI.

The data layer (:mod:`repro.watch.data`) is stdlib-only and tested
unconditionally: sparkline rendering, the incremental WatchPoller frames,
the job table across shard layouts, and the cancel/requeue operator
actions.  The Textual TUI tests run only when the optional ``[tui]``
extra is installed (``pytest.importorskip``): CI's watch-smoke job
installs it and drives the app headless through Textual's ``run_test``
pilot; the core test job skips them.
"""

from __future__ import annotations

import asyncio
import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.events import EventLog, iter_events
from repro.service import ServiceConfig, ServiceDaemon, submit_job
from repro.service.sharding import ensure_layout, read_layout
from repro.watch.data import (
    HISTORY_POINTS,
    WatchPoller,
    cancel_job,
    frame_summary,
    job_audit,
    read_job_table,
    requeue_job,
    sparkline,
)

# -- data layer -----------------------------------------------------------------------


class TestSparkline:
    def test_empty_series_is_blank_fixed_width(self):
        assert sparkline([], width=8) == " " * 8

    def test_peak_maps_to_tallest_glyph(self):
        rendered = sparkline([0.0, 1.0, 2.0, 4.0], width=4)
        assert len(rendered) == 4
        assert rendered[-1] == "█"

    def test_window_keeps_newest_values(self):
        rendered = sparkline([9.0] * 50 + [0.0], width=5)
        assert len(rendered) == 5


class TestWatchPoller:
    def _settled_root(self, tmp_path: Path) -> Path:
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.run(max_jobs=1, idle_exit=0.05) == 1
        return root

    def test_frames_fold_health_jobs_and_tail(self, tmp_path):
        root = self._settled_root(tmp_path)
        poller = WatchPoller(root)
        frame = poller.poll()
        assert frame.jobs and frame.jobs[0]["status"] == "done"
        assert any(r["event"] == "released" for r in frame.tail)
        verdict, _live, total = frame_summary(frame)
        assert total == len(frame.jobs)
        assert isinstance(verdict, str)

    def test_history_is_bounded_and_incremental(self, tmp_path):
        root = self._settled_root(tmp_path)
        poller = WatchPoller(root)
        for _n in range(HISTORY_POINTS + 5):
            frame = poller.poll()
        for series in frame.queue_history.values():
            assert len(series) <= HISTORY_POINTS
        # A second poll delivers no duplicate tail events.
        tail_lengths = [len(poller.poll().tail) for _n in range(2)]
        assert tail_lengths[0] == tail_lengths[1]

    def test_job_table_spans_shard_directories(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        jobs = [submit_job(root, "smoke") for _n in range(5)]
        table = read_job_table(root)
        assert sorted(r["job_id"] for r in table) == sorted(j.job_id for j in jobs)
        created = [float(r["created_at"]) for r in table]
        assert created == sorted(created)

    def test_job_audit_formats_lifecycle(self, tmp_path):
        root = self._settled_root(tmp_path)
        job_id = read_job_table(root)[0]["job_id"]
        lines = job_audit(root, job_id)
        assert any("submitted" in line for line in lines)
        assert any("released" in line for line in lines)


class TestOperatorActions:
    def test_cancel_queued_job_writes_marker(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        assert cancel_job(root, job.job_id) is True
        layout = read_layout(root)
        assert layout.cancel_path(job.job_id).exists()

    def test_cancel_missing_job_is_refused(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        assert cancel_job(root, "no-such-job") is False

    def _fail_job(self, root: Path, job_id: str) -> Path:
        layout = read_layout(root)
        path = layout.job_path(job_id)
        record = json.loads(path.read_text())
        record["status"] = "failed"
        record["attempts"] = 2
        record["error"] = "boom"
        path.write_text(json.dumps(record))
        return path

    def test_requeue_failed_job_resets_record_and_emits_event(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = self._fail_job(root, job.job_id)
        assert requeue_job(root, job.job_id) is True
        record = json.loads(path.read_text())
        assert record["status"] == "queued"
        assert record["attempts"] == 0 and record["error"] is None
        events = list(iter_events(root, job_id=job.job_id, event="requeued"))
        assert len(events) == 1

    def test_requeue_respects_terminal_and_missing_jobs(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")  # still queued: not requeueable
        assert requeue_job(root, job.job_id) is False
        assert requeue_job(root, "no-such-job") is False

    def test_requeue_works_on_sharded_roots(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        job = submit_job(root, "smoke")
        self._fail_job(root, job.job_id)
        assert requeue_job(root, job.job_id) is True
        requeued = list(iter_events(root, job_id=job.job_id, event="requeued"))
        assert requeued and str(requeued[0]["shard"]).startswith("s")


class TestWatchCli:
    def test_watch_verb_reports_missing_tui_extra(self, tmp_path, capsys):
        if importlib.util.find_spec("textual") is not None:
            pytest.skip("textual installed; the verb would launch the real TUI")
        assert main(["watch", "--root", str(tmp_path / "svc")]) == 1
        assert "[tui]" in capsys.readouterr().err


# -- Textual TUI (requires the [tui] extra) -------------------------------------------

_HAS_TEXTUAL = importlib.util.find_spec("textual") is not None

needs_textual = pytest.mark.skipif(
    not _HAS_TEXTUAL, reason="the [tui] extra (textual) is not installed"
)


def _dashboard_root(tmp_path: Path) -> Path:
    """A root with 3 worker heartbeats, queued jobs, and event history."""
    root = tmp_path / "svc"
    jobs = [submit_job(root, "smoke") for _n in range(3)]
    workers = root / "workers"
    workers.mkdir(parents=True, exist_ok=True)
    now = time.time()
    for index in range(3):
        (workers / f"worker-{index}.json").write_text(
            json.dumps(
                {
                    "updated_at": now,
                    "started_at": now - 30.0,
                    "poll_interval": 0.1,
                    "stopped": False,
                    "jobs_done": index,
                }
            )
        )
    log = EventLog(root, writer="seed")
    for job in jobs:
        log.emit("claimed", job=job.job_id)
    return root


@needs_textual
class TestWatchApp:
    def test_dashboard_renders_workers_shards_and_jobs(self, tmp_path):
        from textual.widgets import DataTable, Static

        from repro.watch.app import WatchApp

        root = _dashboard_root(tmp_path)

        async def scenario() -> None:
            app = WatchApp(root, interval=0.1)
            async with app.run_test() as pilot:
                await pilot.pause()
                assert app.query_one("#workers", DataTable).row_count == 3
                assert app.query_one("#jobs", DataTable).row_count == 3
                assert app.query_one("#shards", DataTable).row_count >= 1
                summary = str(app.query_one("#summary", Static).renderable)
                assert "workers(live): 3" in summary

        asyncio.run(scenario())

    def test_cancel_keybinding_writes_cancel_marker(self, tmp_path):
        from repro.watch.app import WatchApp

        root = _dashboard_root(tmp_path)

        async def scenario() -> None:
            app = WatchApp(root, interval=0.1)
            async with app.run_test() as pilot:
                await pilot.pause()
                job_id = app.selected_job()
                assert job_id is not None
                await pilot.press("c")
                await pilot.pause()
                layout = read_layout(root)
                assert layout.cancel_path(job_id).exists()

        asyncio.run(scenario())

    def test_detail_keybinding_opens_job_audit_screen(self, tmp_path):
        from repro.watch.app import JobDetailScreen, WatchApp

        root = _dashboard_root(tmp_path)

        async def scenario() -> None:
            app = WatchApp(root, interval=0.1)
            async with app.run_test() as pilot:
                await pilot.pause()
                await pilot.press("d")
                await pilot.pause()
                assert isinstance(app.screen, JobDetailScreen)
                await pilot.press("escape")
                await pilot.pause()
                assert not isinstance(app.screen, JobDetailScreen)

        asyncio.run(scenario())
