"""Sharded spool layout: assignment stability, migration, stealing, store gc.

Covers the sharding layer end to end — the stable hash assignment (pinned
values so a dependency bump can never silently re-route a live spool), the
``SpoolLayout`` path arithmetic, the one-shot flat↔sharded migration, the
cluster workers' home-shard-first/steal-in-rotation scan, the per-shard
observability surface and the result store's per-bucket gc accounting.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import _render_cluster, main
from repro.obs.events import read_events
from repro.service import (
    MAX_SHARDS,
    ClusterWorker,
    LeaseManager,
    ResultStore,
    ServiceConfig,
    ServiceDaemon,
    WorkerConfig,
    WorkerIdentity,
    adopt_stray_records,
    ensure_layout,
    gc_service,
    read_layout,
    request_cancel,
    service_status,
    shard_index,
    submit_job,
)
from repro.service.cluster import _striped_job_id
from repro.service.sharding import (
    SHARD_MARKER_NAME,
    SpoolLayout,
    shard_dir_name,
    write_shard_marker,
)
from repro.service.store import bucket_disk_usage, scan_bucket_blobs


def _ids_for_shard(shard: int, shards: int, count: int, prefix: str = "job") -> list:
    """Deterministic job ids that hash to one shard under an N-way layout."""
    ids = []
    index = 0
    while len(ids) < count:
        candidate = f"{prefix}-{index:04d}"
        if shard_index(candidate, shards) == shard:
            ids.append(candidate)
        index += 1
    return ids


def _finish_job(layout: SpoolLayout, job_id: str, status: str = "done") -> None:
    """Rewrite a spool record into a terminal status (simulating a serve)."""
    path = layout.job_path(job_id)
    record = json.loads(path.read_text(encoding="utf-8"))
    record["status"] = status
    path.write_text(json.dumps(record), encoding="utf-8")


# -- assignment --------------------------------------------------------------------


class TestShardAssignment:
    # Pinned against the blake2b scheme: a hash change would re-route every
    # record of every live sharded spool, so these values must never move.
    PINNED = {
        "smoke-00000000": [0, 1, 2, 1, 1],
        "load-abc123-000": [0, 0, 0, 0, 0],
        "dense-bus-1": [0, 0, 1, 2, 6],
        "a": [0, 1, 2, 3, 7],
        "job": [0, 0, 2, 0, 4],
    }
    COUNTS = (1, 2, 3, 4, 8)

    def test_pinned_assignments(self):
        for job_id, expected in self.PINNED.items():
            assert [shard_index(job_id, n) for n in self.COUNTS] == expected

    def test_assignment_is_stable_across_processes(self):
        """A fresh interpreter (fresh hash salt) maps ids identically."""
        script = (
            "from repro.service.sharding import shard_index\n"
            "import json, sys\n"
            "ids = json.loads(sys.argv[1])\n"
            "print(json.dumps({i: [shard_index(i, n) for n in (1, 2, 3, 4, 8)]"
            " for i in ids}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(list(self.PINNED))],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert json.loads(out.stdout) == self.PINNED

    def test_every_id_lands_in_range_and_flat_is_zero(self):
        for index in range(200):
            job_id = f"prop-{index:05d}"
            assert shard_index(job_id, 1) == 0
            for shards in (2, 4, 8, MAX_SHARDS):
                assert 0 <= shard_index(job_id, shards) < shards

    def test_assignment_spreads_over_all_shards(self):
        seen = {shard_index(f"spread-{i}", 8) for i in range(200)}
        assert seen == set(range(8))

    def test_shard_dir_names(self):
        assert shard_dir_name(0) == "s00"
        assert shard_dir_name(63) == "s63"


# -- layout + marker ---------------------------------------------------------------


class TestSpoolLayout:
    def test_flat_layout_reproduces_legacy_paths(self, tmp_path):
        layout = SpoolLayout(root=tmp_path, shards=1)
        assert not layout.sharded
        assert layout.job_path("j1") == tmp_path / "jobs" / "j1.json"
        assert layout.cancel_path("j1") == tmp_path / "jobs" / "j1.cancel"
        assert layout.lease_path("w0", "j1") == tmp_path / "leases" / "w0" / "j1.json"
        assert layout.shard_tag("j1") is None

    def test_sharded_paths_nest_by_hash(self, tmp_path):
        layout = SpoolLayout(root=tmp_path, shards=4)
        job_id = "smoke-00000000"  # pinned: shard 1 of 4
        assert layout.job_path(job_id) == tmp_path / "jobs" / "s01" / f"{job_id}.json"
        assert layout.lease_path("w0", job_id).parent == tmp_path / "leases" / "s01" / "w0"
        assert layout.shard_tag(job_id) == "s01"
        assert layout.shard_names() == ["s00", "s01", "s02", "s03"]

    def test_shard_count_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            SpoolLayout(root=tmp_path, shards=0)
        with pytest.raises(ValueError):
            SpoolLayout(root=tmp_path, shards=MAX_SHARDS + 1)

    def test_marker_round_trip(self, tmp_path):
        write_shard_marker(tmp_path, 6)
        layout = read_layout(tmp_path)
        assert layout.shards == 6

    def test_missing_or_corrupt_marker_reads_flat(self, tmp_path):
        assert read_layout(tmp_path).shards == 1
        (tmp_path / SHARD_MARKER_NAME).write_text("{not json", encoding="utf-8")
        assert read_layout(tmp_path).shards == 1

    def test_unknown_layout_version_is_a_hard_error(self, tmp_path):
        (tmp_path / SHARD_MARKER_NAME).write_text(
            json.dumps({"layout_version": 99, "shards": 4}), encoding="utf-8"
        )
        with pytest.raises(RuntimeError, match="layout version"):
            read_layout(tmp_path)

    def test_nonsense_shard_count_is_a_hard_error(self, tmp_path):
        (tmp_path / SHARD_MARKER_NAME).write_text(
            json.dumps({"layout_version": 1, "shards": "many"}), encoding="utf-8"
        )
        with pytest.raises(RuntimeError, match="corrupt shard marker"):
            read_layout(tmp_path)

    def test_ensure_layout_stamps_marker_without_migrating(self, tmp_path):
        layout = ensure_layout(tmp_path / "svc", shards=3)
        assert layout.shards == 3
        assert read_layout(tmp_path / "svc").shards == 3
        # Reopening without a count keeps the recorded layout.
        assert ensure_layout(tmp_path / "svc").shards == 3


# -- migration ---------------------------------------------------------------------


class TestMigration:
    def test_flat_to_sharded_moves_records_byte_for_byte(self, tmp_path):
        root = tmp_path / "svc"
        jobs = [submit_job(root, "smoke", params={"seed": i}) for i in range(6)]
        originals = {
            job.job_id: (root / "jobs" / f"{job.job_id}.json").read_bytes() for job in jobs
        }
        marker_id = jobs[0].job_id
        (root / "jobs" / f"{marker_id}.cancel").write_text("", encoding="utf-8")
        layout = ensure_layout(root, shards=4)
        assert layout.sharded
        for job_id, payload in originals.items():
            target = layout.job_path(job_id)
            assert target.parent.name == shard_dir_name(shard_index(job_id, 4))
            assert target.read_bytes() == payload  # rename, never re-serialised
        assert layout.cancel_path(marker_id).exists()
        assert not (root / "jobs" / f"{marker_id}.json").exists()

    def test_resharding_n_to_m_rebuckets_everything(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        jobs = [
            submit_job(root, "smoke", params={"seed": i}, job_id=f"re-{i:03d}")
            for i in range(8)
        ]
        payloads = {job.job_id: read_layout(root).job_path(job.job_id).read_bytes() for job in jobs}
        layout = ensure_layout(root, shards=3)
        assert layout.shards == 3
        for job_id, payload in payloads.items():
            assert layout.job_path(job_id).read_bytes() == payload
        # The old 4-shard directory of a now-unused index is pruned.
        assert not (root / "jobs" / "s03").exists()

    def test_migration_moves_lease_files_and_reclaim_temps(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        manager = LeaseManager(root, WorkerIdentity.create("w"), lease_ttl=5.0)
        claimed = manager.claim(job.job_id)
        assert claimed is not None
        lease_payload = manager.lease_path(job.job_id).read_bytes()
        # A stranded reclaim temp must ride along: it may be the only copy.
        temp = manager.my_dir / f"{job.job_id}.json.reclaim"
        temp.write_bytes(lease_payload)
        layout = ensure_layout(root, shards=4)
        shard = shard_dir_name(layout.shard_of(job.job_id))
        worker_id = manager.identity.worker_id
        moved = root / "leases" / shard / worker_id / f"{job.job_id}.json"
        assert moved.read_bytes() == lease_payload
        assert (moved.parent / f"{job.job_id}.json.reclaim").exists()
        assert not (root / "leases" / worker_id).exists()  # old dir pruned

    def test_migration_refuses_a_live_fleet(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        (root / "workers").mkdir(exist_ok=True)
        (root / "workers" / "w-live.json").write_text(
            json.dumps(
                {
                    "worker_id": "w-live",
                    "pid": 999999,
                    "updated_at": time.time(),
                    "poll_interval": 0.1,
                    "stopped": False,
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(RuntimeError, match="live processes"):
            ensure_layout(root, shards=4)
        # A stale (dead) heartbeat no longer blocks the migration.
        beat = json.loads((root / "workers" / "w-live.json").read_text())
        beat["updated_at"] = time.time() - 3600
        (root / "workers" / "w-live.json").write_text(json.dumps(beat), encoding="utf-8")
        assert ensure_layout(root, shards=4).sharded

    def test_migration_emits_resharded_event(self, tmp_path):
        root = tmp_path / "svc"
        for i in range(5):
            submit_job(root, "smoke", params={"seed": i})
        ensure_layout(root, shards=2)
        events = read_events(root, event="resharded")
        assert len(events) == 1
        assert events[0]["previous"] == 1
        assert events[0]["shards"] == 2
        assert events[0]["moved"] >= 1


# -- stray adoption (submit racing the migration) ----------------------------------


class TestStrayAdoption:
    def test_adopt_moves_flat_records_and_markers_into_their_shard(self, tmp_path):
        root = tmp_path / "svc"
        layout = ensure_layout(root, shards=4)
        job_id = _ids_for_shard(2, 4, 1, prefix="stray")[0]
        submit_job(root, "smoke", job_id=job_id)
        # Simulate a submitter whose layout read predated the shard marker:
        # its record and cancel marker land on the flat paths.
        flat = SpoolLayout(root)
        os.rename(layout.job_path(job_id), flat.job_path(job_id))
        flat.cancel_path(job_id).write_text("", encoding="utf-8")
        assert adopt_stray_records(layout) == 2
        assert layout.job_path(job_id).exists()
        assert layout.cancel_path(job_id).exists()
        assert not flat.job_path(job_id).exists()
        assert not flat.cancel_path(job_id).exists()
        events = read_events(root, event="adopted")
        assert len(events) == 1
        assert events[0]["moved"] == 2
        assert adopt_stray_records(layout) == 0  # idempotent once clean

    def test_adopt_is_a_noop_on_flat_roots(self, tmp_path):
        root = tmp_path / "svc"
        layout = ensure_layout(root)
        submit_job(root, "smoke", job_id="flat-0001")
        assert adopt_stray_records(layout) == 0
        assert layout.job_path("flat-0001").exists()
        assert read_events(root, event="adopted") == []

    def test_worker_adopts_and_drains_a_stray_record(self, tmp_path):
        root = tmp_path / "svc"
        layout = ensure_layout(root, shards=2)
        job_id = _ids_for_shard(1, 2, 1, prefix="stray")[0]
        submit_job(root, "smoke", job_id=job_id)
        os.rename(layout.job_path(job_id), SpoolLayout(root).job_path(job_id))
        worker = ClusterWorker(WorkerConfig(root=root, home_shard=0, poll_interval=0.02))
        job = worker.step()
        assert job is not None
        assert job.job_id == job_id
        record = json.loads(layout.job_path(job_id).read_text(encoding="utf-8"))
        assert record["status"] == "done"
        claims = read_events(root, event="claimed")
        assert [claim["job"] for claim in claims] == [job_id]
        assert claims[0]["shard"] == "s01"
        assert claims[0]["steal"] is True  # adopted into s01, stolen by the s00 home


# -- sharded service end-to-end ----------------------------------------------------


class TestShardedService:
    def test_daemon_serves_a_migrated_root(self, tmp_path):
        root = tmp_path / "svc"
        for i in range(5):
            submit_job(root, "smoke", params={"seed": i}, job_id=f"smoke-{i:08d}")
        daemon = ServiceDaemon(ServiceConfig(root=root, shards=4))
        assert daemon.run(max_jobs=5, idle_exit=0.2) == 5
        report = service_status(root)
        assert report["jobs"]["counts"] == {"done": 5}
        claimed = read_events(root, event="claimed")
        assert {event["job"] for event in claimed} == {f"smoke-{i:08d}" for i in range(5)}
        assert all(str(event.get("shard", "")).startswith("s") for event in claimed)

    def test_cancel_lands_in_the_jobs_shard(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        job = submit_job(root, "smoke", job_id="cancel-me")
        layout = read_layout(root)
        assert request_cancel(root, job.job_id) is True
        assert layout.cancel_path(job.job_id).exists()
        events = read_events(root, event="cancel-requested")
        assert events[-1]["shard"] == layout.shard_tag(job.job_id)

    def test_gc_purge_sweeps_orphan_markers_in_every_shard(self, tmp_path):
        """The fix pin: orphaned cancel markers are swept shard by shard."""
        root = tmp_path / "svc"
        layout = ensure_layout(root, shards=4)
        first, second = _ids_for_shard(0, 4, 1)[0], _ids_for_shard(2, 4, 1)[0]
        for job_id in (first, second):
            submit_job(root, "smoke", job_id=job_id)
            _finish_job(layout, job_id)
            layout.cancel_path(job_id).write_text("", encoding="utf-8")
        # A marker of a *leased* job is pending, not orphaned: it survives.
        pending = _ids_for_shard(1, 4, 1, prefix="pend")[0]
        submit_job(root, "smoke", job_id=pending)
        manager = LeaseManager(root, WorkerIdentity.create("w"), lease_ttl=30.0)
        assert manager.claim(pending) is not None
        layout.cancel_path(pending).write_text("", encoding="utf-8")
        report = gc_service(root, purge_jobs=True)
        assert report["purged_jobs"] == 2
        assert not layout.cancel_path(first).exists()
        assert not layout.cancel_path(second).exists()
        assert layout.cancel_path(pending).exists()

    def test_gc_sweeps_dead_worker_lease_dirs_across_shards(self, tmp_path):
        root = tmp_path / "svc"
        layout = ensure_layout(root, shards=3)
        (root / "workers").mkdir(exist_ok=True)
        (root / "workers" / "w-dead.json").write_text(
            json.dumps(
                {
                    "worker_id": "w-dead",
                    "pid": 999999,
                    "updated_at": time.time() - 3600,
                    "poll_interval": 0.1,
                    "stopped": False,
                }
            ),
            encoding="utf-8",
        )
        for directory in layout.worker_lease_dirs("w-dead"):
            directory.mkdir(parents=True, exist_ok=True)
        assert gc_service(root)["purged_workers"] == 1
        assert not (root / "workers" / "w-dead.json").exists()
        assert all(not d.exists() for d in layout.worker_lease_dirs("w-dead"))

    def test_gc_keeps_dead_worker_with_a_pending_lease_in_any_shard(self, tmp_path):
        root = tmp_path / "svc"
        layout = ensure_layout(root, shards=3)
        job = submit_job(root, "smoke", job_id=_ids_for_shard(2, 3, 1)[0])
        manager = LeaseManager(root, WorkerIdentity.create("w"), lease_ttl=30.0)
        assert manager.claim(job.job_id) is not None
        worker_id = manager.identity.worker_id
        beat_path = root / "workers" / f"{worker_id}.json"
        beat_path.parent.mkdir(parents=True, exist_ok=True)
        beat_path.write_text(
            json.dumps(
                {
                    "worker_id": worker_id,
                    "pid": 999999,
                    "updated_at": time.time() - 3600,
                    "poll_interval": 0.1,
                    "stopped": False,
                }
            ),
            encoding="utf-8",
        )
        assert gc_service(root)["purged_workers"] == 0
        assert beat_path.exists()  # the pending lease still needs its owner


# -- work stealing -----------------------------------------------------------------


class TestWorkStealing:
    def test_scan_order_starts_at_home_and_rotates(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        worker = ClusterWorker(WorkerConfig(root=root, home_shard=2, poll_interval=0.02))
        assert worker._shard_scan_order() == [2, 3, 0, 1]

    def test_home_shard_wraps_modulo_shard_count(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        worker = ClusterWorker(WorkerConfig(root=root, home_shard=6, poll_interval=0.02))
        assert worker.home_shard == 2

    def test_negative_home_shard_is_rejected(self):
        with pytest.raises(ValueError):
            WorkerConfig(root="ignored", home_shard=-1)

    def test_home_shard_drains_before_stealing(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=2)
        home_ids = _ids_for_shard(0, 2, 2, prefix="home")
        away_ids = _ids_for_shard(1, 2, 2, prefix="away")
        for job_id in away_ids + home_ids:  # submit foreign work *first*
            submit_job(root, "smoke", job_id=job_id)
        worker = ClusterWorker(WorkerConfig(root=root, home_shard=0, poll_interval=0.02))
        order = []
        for _ in range(4):
            claimed = worker._claim_next()
            assert claimed is not None
            order.append(claimed.job_id)
        assert order[:2] == sorted(home_ids)  # home first, despite arriving later
        assert sorted(order[2:]) == sorted(away_ids)
        claims = read_events(root, event="claimed")
        stolen = {event["job"] for event in claims if event.get("steal")}
        assert stolen == set(away_ids)
        assert all(not event.get("steal") for event in claims if event["job"] in home_ids)

    def test_two_workers_steal_race_is_exactly_once(self, tmp_path):
        """Two workers homed on the same shard racing steals: one winner each."""
        root = tmp_path / "svc"
        ensure_layout(root, shards=2)
        job_ids = _ids_for_shard(1, 2, 4, prefix="steal")  # all away from home 0
        for job_id in job_ids:
            submit_job(root, "smoke", job_id=job_id)
        workers = [
            ClusterWorker(WorkerConfig(root=root, home_shard=0, poll_interval=0.02))
            for _ in range(2)
        ]
        done = []
        errors = []

        def drain(worker):
            try:
                while True:
                    job = worker.step()
                    if job is None:
                        break
                    done.append(job.job_id)
            except Exception as error:  # pragma: no cover — the assertion target
                errors.append(error)

        threads = [threading.Thread(target=drain, args=(w,)) for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert sorted(done) == sorted(job_ids)  # each job served exactly once
        layout = read_layout(root)
        for job_id in job_ids:
            record = json.loads(layout.job_path(job_id).read_text(encoding="utf-8"))
            assert record["status"] == "done"
            assert len(record["executions"]) == 1, f"{job_id} double-executed"
            assert record["executions"][0]["shard"] == "s01"
        claims = read_events(root, event="claimed")
        assert len(claims) == len(job_ids)
        assert all(event.get("steal") for event in claims)

    def test_flat_root_claims_carry_no_shard_or_steal_tags(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02))
        assert worker.step().status == "done"
        (claim,) = read_events(root, event="claimed")
        assert "shard" not in claim and "steal" not in claim
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert "shard" not in record["executions"][0]


# -- loadgen striping --------------------------------------------------------------


class TestLoadgenStriping:
    def test_flat_ids_are_the_plain_burst_ids(self, tmp_path):
        layout = SpoolLayout(root=tmp_path, shards=1)
        assert _striped_job_id(layout, "abc", 7) == "load-abc-007"

    def test_striped_ids_cover_shards_round_robin(self, tmp_path):
        layout = SpoolLayout(root=tmp_path, shards=4)
        for index in range(12):
            job_id = _striped_job_id(layout, "abc", index)
            assert layout.shard_of(job_id) == index % 4
            assert job_id.startswith(f"load-abc-{index:03d}")


# -- per-shard observability -------------------------------------------------------


class TestShardObservability:
    def test_status_reports_per_shard_depths(self, tmp_path):
        root = tmp_path / "svc"
        layout = ensure_layout(root, shards=2)
        queued = _ids_for_shard(0, 2, 2, prefix="q")
        leased = _ids_for_shard(1, 2, 1, prefix="l")[0]
        for job_id in queued + [leased]:
            submit_job(root, "smoke", job_id=job_id)
        manager = LeaseManager(root, WorkerIdentity.create("w"), lease_ttl=30.0)
        assert manager.claim(leased) is not None
        cluster = service_status(root)["cluster"]
        assert cluster["shards"] == {
            "s00": {"queued": 2, "leased": 0},
            "s01": {"queued": 0, "leased": 1},
        }
        (lease,) = cluster["leases"]
        assert lease["shard"] == "s01"
        rendered = _render_cluster(cluster)
        assert "shard s00: queued=2 leased=0" in rendered
        assert "shard s01: queued=0 leased=1" in rendered
        assert f"{leased} held by {manager.identity.worker_id} in s01" in rendered

    def test_flat_status_keeps_the_legacy_shape(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        manager = LeaseManager(root, WorkerIdentity.create("w"), lease_ttl=30.0)
        assert manager.claim(job.job_id) is not None
        cluster = service_status(root)["cluster"]
        assert "shards" not in cluster
        assert all("shard" not in lease for lease in cluster["leases"])

    def test_events_cli_filters_by_shard(self, tmp_path, capsys):
        root = tmp_path / "svc"
        ensure_layout(root, shards=2)
        for job_id in _ids_for_shard(0, 2, 2, prefix="f0") + _ids_for_shard(1, 2, 1, prefix="f1"):
            submit_job(root, "smoke", job_id=job_id)
        assert main(["events", "--root", str(root), "--shard", "s01", "--json"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines and all(record["shard"] == "s01" for record in lines)
        assert {record["event"] for record in lines} == {"submitted"}

    def test_worker_heartbeat_reports_home_shard(self, tmp_path):
        root = tmp_path / "svc"
        ensure_layout(root, shards=4)
        submit_job(root, "smoke", job_id=_ids_for_shard(3, 4, 1)[0])
        worker = ClusterWorker(WorkerConfig(root=root, home_shard=3, poll_interval=0.02))
        assert worker.run(max_jobs=1, idle_exit=0.1) == 1
        beat = json.loads(
            (root / "workers" / f"{worker.identity.worker_id}.json").read_text()
        )
        assert beat["home_shard"] == "s03"
        (started,) = read_events(root, event="worker-started")
        assert started["home_shard"] == "s03"


# -- store: per-bucket gc accounting -----------------------------------------------


class TestBucketedStoreGc:
    def _fill(self, store, prefixes, per_bucket=3, mtime_base=1000):
        signatures = []
        clock = mtime_base
        for prefix in prefixes:
            for index in range(per_bucket):
                signature = f"{prefix}{index:x}" + "e" * (64 - len(prefix) - 1)
                store.put_layout(signature, tuple(range(16)))
                os.utime(store._blob_path(signature), (clock, clock))
                signatures.append(signature)
                clock += 1
        return signatures

    def test_capped_store_accounts_per_bucket(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=10**9)
        self._fill(store, ["aa", "bb"])
        assert set(store._bucket_bytes) == {"aa", "bb"}
        for bucket, size in store._bucket_bytes.items():
            assert size == bucket_disk_usage(tmp_path / "store" / "blobs" / bucket)[1]

    def test_gc_stats_only_the_buckets_it_may_evict_from(self, tmp_path, monkeypatch):
        from repro.service import store as store_module

        store = ResultStore(tmp_path / "store", max_bytes=10**9)
        self._fill(store, ["aa", "bb", "cc", "dd"])
        total = store.total_bytes()
        scanned = []
        real = scan_bucket_blobs
        monkeypatch.setattr(
            store_module,
            "scan_bucket_blobs",
            lambda directory: (scanned.append(directory.name), real(directory))[1],
        )
        evicted = store.gc(total - 8)  # just over: one bucket covers the overflow
        assert evicted >= 1
        assert len(scanned) == 1  # three of four buckets were never statted
        assert store.total_bytes() <= total - 8

    def test_gc_accounting_resyncs_to_exact_after_eviction(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=10**9)
        self._fill(store, ["aa", "bb"])
        store.gc(store.total_bytes() // 2)
        blobs = tmp_path / "store" / "blobs"
        for bucket, size in store._bucket_bytes.items():
            assert size == bucket_disk_usage(blobs / bucket)[1]
        assert store._approx_bytes == sum(store._bucket_bytes.values())

    def test_write_cap_bounds_the_store_across_buckets(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=600)
        for index in range(24):
            signature = f"{index % 8:02x}" + "f" * 62
            store.put_layout(signature, (index,))
        assert store.total_bytes() <= 600
        assert store.stats().evictions >= 1
        # Whatever survived the churn still round-trips.
        survivors = store.signatures()
        assert survivors
        assert store.get_layout(survivors[0]) is not None

    def test_disk_usage_resyncs_drift_from_concurrent_deletes(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=10**9)
        signatures = self._fill(store, ["aa", "bb"], per_bucket=2)
        store._blob_path(signatures[0]).unlink()  # a concurrent gc got it
        entries, total = store.disk_usage()
        assert entries == 3
        assert store._approx_bytes == total
        assert set(store._bucket_bytes) == {"aa", "bb"}

    def test_gc_trusts_the_account_when_under_cap(self, tmp_path, monkeypatch):
        from repro.service import store as store_module

        store = ResultStore(tmp_path / "store", max_bytes=10**9)
        self._fill(store, ["aa", "bb"])
        monkeypatch.setattr(
            store_module,
            "scan_bucket_blobs",
            lambda directory: pytest.fail("under-cap gc must not stat any bucket"),
        )
        assert store.gc() == 0  # account says we fit: zero filesystem scans

    def test_uncapped_store_keeps_exact_global_lru(self, tmp_path):
        """No account to consult: explicit-cap gc stays strict oldest-first."""
        store = ResultStore(tmp_path / "store")
        assert store._bucket_bytes is None
        signatures = self._fill(store, ["aa", "bb"], per_bucket=2)
        blob_size = store.total_bytes() // 4
        assert store.gc(max_bytes=2 * blob_size) == 2
        assert store.signatures() == sorted(signatures[2:])  # the two oldest went
