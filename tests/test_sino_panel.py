"""Tests for the SINO problem / solution datatypes and the fast evaluator."""

import numpy as np
import pytest

from repro.noise.keff import PanelOccupant, panel_couplings
from repro.sino.evaluator import PanelEvaluator
from repro.sino.panel import SHIELD, SinoProblem, SinoSolution


@pytest.fixture
def triangle_problem():
    """Three mutually sensitive segments with a moderate bound."""
    return SinoProblem.build(
        segments=[0, 1, 2],
        sensitivity={0: {1, 2}, 1: {0, 2}, 2: {0, 1}},
        default_kth=1.2,
    )


class TestSinoProblem:
    def test_build_symmetrises_sensitivity(self):
        problem = SinoProblem.build(segments=[0, 1], sensitivity={0: {1}}, default_kth=1.0)
        assert 0 in problem.aggressors_of(1)
        assert 1 in problem.aggressors_of(0)

    def test_build_drops_foreign_segments(self):
        problem = SinoProblem.build(segments=[0, 1], sensitivity={0: {1, 99}}, default_kth=1.0)
        assert problem.aggressors_of(0) == frozenset({1})

    def test_duplicate_segments_rejected(self):
        with pytest.raises(ValueError):
            SinoProblem.build(segments=[0, 0], sensitivity={}, default_kth=1.0)

    def test_bounds_default_and_explicit(self):
        problem = SinoProblem.build(
            segments=[0, 1], sensitivity={}, kth={0: 0.5}, default_kth=2.0
        )
        assert problem.bound_of(0) == pytest.approx(0.5)
        assert problem.bound_of(1) == pytest.approx(2.0)

    def test_sensitivity_rates(self, triangle_problem):
        assert triangle_problem.sensitivity_degree(0) == 2
        assert triangle_problem.sensitivity_rate_of(0) == pytest.approx(1.0)

    def test_with_bounds_creates_modified_copy(self, triangle_problem):
        tightened = triangle_problem.with_bounds({0: 0.3})
        assert tightened.bound_of(0) == pytest.approx(0.3)
        assert triangle_problem.bound_of(0) == pytest.approx(1.2)
        with pytest.raises(ValueError):
            triangle_problem.with_bounds({0: 0.0})

    def test_invalid_defaults(self):
        with pytest.raises(ValueError):
            SinoProblem.build(segments=[0], sensitivity={}, default_kth=0.0)
        with pytest.raises(ValueError):
            SinoProblem.build(segments=[0], sensitivity={}, default_kth=1.0, capacity=-1)


class TestSinoSolution:
    def test_layout_must_contain_all_segments(self, triangle_problem):
        with pytest.raises(ValueError):
            SinoSolution(problem=triangle_problem, layout=[0, 1])
        with pytest.raises(ValueError):
            SinoSolution(problem=triangle_problem, layout=[0, 1, 2, 2])

    def test_counts(self, triangle_problem):
        solution = SinoSolution(problem=triangle_problem, layout=[0, SHIELD, 1, SHIELD, 2])
        assert solution.num_tracks == 5
        assert solution.num_shields == 2
        assert solution.num_segments == 3

    def test_overflow_against_capacity(self):
        problem = SinoProblem.build(segments=[0, 1], sensitivity={}, default_kth=1.0, capacity=2)
        solution = SinoSolution(problem=problem, layout=[0, SHIELD, 1])
        assert solution.overflow == 1
        unlimited = SinoProblem.build(segments=[0, 1], sensitivity={}, default_kth=1.0)
        assert SinoSolution(problem=unlimited, layout=[0, SHIELD, 1]).overflow == 0

    def test_couplings_match_reference_model(self, triangle_problem):
        solution = SinoSolution(problem=triangle_problem, layout=[0, 1, 2])
        expected = panel_couplings(
            [PanelOccupant(track=i, net_id=net) for i, net in enumerate([0, 1, 2])],
            {0: {1, 2}, 1: {0, 2}, 2: {0, 1}},
        )
        couplings = solution.couplings()
        for net_id, value in expected.items():
            assert couplings[net_id] == pytest.approx(value)

    def test_capacitive_and_inductive_violations(self, triangle_problem):
        bare = SinoSolution(problem=triangle_problem, layout=[0, 1, 2])
        assert len(bare.capacitive_violation_pairs()) == 2
        assert 1 in bare.inductive_violations()  # middle net couples to both sides
        assert not bare.is_valid()
        shielded = SinoSolution(problem=triangle_problem, layout=[0, SHIELD, 1, SHIELD, 2])
        assert shielded.capacitive_violation_pairs() == []

    def test_slack(self, triangle_problem):
        solution = SinoSolution(problem=triangle_problem, layout=[0, SHIELD, 1, SHIELD, 2])
        for segment in triangle_problem.segments:
            assert solution.slack_of(segment) == pytest.approx(
                triangle_problem.bound_of(segment) - solution.coupling_of(segment)
            )

    def test_compact_removes_redundant_shields(self, triangle_problem):
        messy = SinoSolution(
            problem=triangle_problem,
            layout=[SHIELD, 0, SHIELD, SHIELD, 1, 2, SHIELD],
        )
        compacted = messy.compact()
        assert compacted.layout == [0, SHIELD, 1, 2]
        # Compaction never changes which segments are present.
        assert sorted(e for e in compacted.layout if e is not SHIELD) == [0, 1, 2]

    def test_copy_is_independent(self, triangle_problem):
        original = SinoSolution(problem=triangle_problem, layout=[0, 1, 2])
        clone = original.copy()
        clone.layout.insert(1, SHIELD)
        assert original.num_shields == 0
        assert clone.num_shields == 1

    def test_position_of(self, triangle_problem):
        solution = SinoSolution(problem=triangle_problem, layout=[2, SHIELD, 0, 1])
        assert solution.position_of(2) == 0
        assert solution.position_of(0) == 2


class TestPanelEvaluator:
    def test_matches_solution_couplings_random(self, random_sino_problem):
        for seed in range(5):
            problem = random_sino_problem(7, 0.5, 1.0, seed=seed)
            rng = np.random.default_rng(seed)
            layout = list(problem.segments)
            rng.shuffle(layout)
            # Sprinkle a few shields.
            for _ in range(2):
                layout.insert(int(rng.integers(0, len(layout) + 1)), SHIELD)
            solution = SinoSolution(problem=problem, layout=layout)
            evaluator = problem.evaluator()
            fast = evaluator.couplings(layout)
            reference = panel_couplings(
                solution.occupants(),
                {s: set(problem.aggressors_of(s)) for s in problem.segments},
            )
            for segment, value in reference.items():
                assert fast[segment] == pytest.approx(value, abs=1e-12)

    def test_total_excess_and_violations(self):
        problem = SinoProblem.build(
            segments=[0, 1], sensitivity={0: {1}}, default_kth=0.5
        )
        evaluator = problem.evaluator()
        assert evaluator.total_excess([0, 1]) == pytest.approx(1.0)  # two nets, each 0.5 over
        assert set(evaluator.violating_segments([0, 1])) == {0, 1}
        assert evaluator.total_excess([0, None, 1]) == pytest.approx(0.0)

    def test_layout_validation(self):
        problem = SinoProblem.build(segments=[0, 1], sensitivity={}, default_kth=1.0)
        evaluator = problem.evaluator()
        with pytest.raises(ValueError):
            evaluator.couplings([0])
        with pytest.raises(ValueError):
            evaluator.couplings([0, 1, 7])

    def test_evaluator_is_cached_on_problem(self):
        problem = SinoProblem.build(segments=[0, 1], sensitivity={}, default_kth=1.0)
        assert problem.evaluator() is problem.evaluator()
