"""Tests for the sharded event log, merge-reader, health model and parity.

PR 8's headline guarantees: on a sharded root every writer appends to one
per-shard stream (no cross-shard write contention), the merge-reader
presents the streams as one globally-ordered iterator that is gapless per
writer even under a concurrent multi-writer burst, flat roots keep the
byte-identical legacy layout, and event-log replay still matches a spool
scan when the events span shard streams — including the stray-adoption
records a mid-migration submitter leaves behind.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.aggregate import MergedEventCursor, iter_merged_events, stream_dirs
from repro.obs.events import (
    EventLog,
    events_dir,
    follow_events,
    iter_events,
    iter_stream,
    stream_dir,
)
from repro.obs.health import (
    FLAT_SHARD,
    STATE_DEAD,
    STATE_LAGGING,
    STATE_OK,
    STATE_STALLED,
    STATE_STOPPED,
    classify_worker,
    collect_fleet_health,
    format_health,
)
from repro.obs.metrics import MetricsRegistry, fleet_metrics_from_events
from repro.obs.snapshot import ServiceSnapshot, job_statuses_from_events
from repro.service import ClusterWorker, WorkerConfig, service_status, submit_job
from repro.service.cluster import WORKER_STALE_SECONDS
from repro.service.sharding import ensure_layout


def _shard_root(tmp_path: Path, shards: int = 4) -> Path:
    root = tmp_path / "svc"
    ensure_layout(root, shards=shards)
    return root


# -- per-shard streams ----------------------------------------------------------------


class TestShardedStreams:
    def test_flat_root_layout_is_byte_identical(self, tmp_path):
        log = EventLog(tmp_path, writer="w")
        log.emit("submitted", job="j1")
        assert (tmp_path / "events" / "log.jsonl").is_file()
        assert not list(events_dir(tmp_path).glob("s[0-9][0-9]"))
        # One stream: plain append order, no merge reordering.
        assert [r["job"] for r in iter_events(tmp_path)] == ["j1"]

    def test_explicit_shard_routes_to_its_stream(self, tmp_path):
        root = _shard_root(tmp_path)
        log = EventLog(root, writer="worker-a", shard=2)
        log.emit("submitted", job="j1", shard="s02")
        assert log.dir == events_dir(root) / "s02"
        assert (events_dir(root) / "s02" / "log.jsonl").is_file()
        assert not (events_dir(root) / "log.jsonl").exists()

    def test_writer_hash_assignment_is_stable(self, tmp_path):
        root = _shard_root(tmp_path)
        first = EventLog(root, writer="daemon-1234")
        second = EventLog(root, writer="daemon-1234")
        assert first.shard == second.shard
        assert first.dir == second.dir

    def test_explicit_shard_wraps_modulo_shard_count(self, tmp_path):
        root = _shard_root(tmp_path, shards=4)
        assert EventLog(root, writer="w", shard=6).shard == 2

    def test_corrupt_marker_degrades_to_flat_stream(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "shards.json").write_text("{not json")
        log = EventLog(root, writer="w", shard=3)
        log.emit("submitted", job="j1")
        assert (root / "events" / "log.jsonl").is_file()

    def test_streams_do_not_share_append_files(self, tmp_path):
        root = _shard_root(tmp_path)
        for index in range(4):
            EventLog(root, writer=f"w{index}", shard=index).emit("ping", n=index)
        for index in range(4):
            records = list(iter_stream(stream_dir(root, index)))
            # Only this shard's writers appear (the resharding client's own
            # record may share the stream; no other wN writer ever does).
            pings = [r["writer"] for r in records if r["event"] == "ping"]
            assert pings == [f"w{index}"]


# -- merge-reader ---------------------------------------------------------------------


class TestMergeReader:
    def test_flat_stream_is_merged_with_shard_streams(self, tmp_path):
        root = tmp_path / "svc"
        # History written before the migration lands in the flat stream...
        EventLog(root, writer="old").emit("submitted", job="pre")
        ensure_layout(root, shards=4)
        # ...and post-migration writers append to their shard streams.
        EventLog(root, writer="new", shard=1).emit("submitted", job="post")
        jobs = [r["job"] for r in iter_events(root) if r.get("job")]
        assert jobs == ["pre", "post"]
        assert len(stream_dirs(root)) >= 2

    def test_concurrent_burst_is_globally_ordered_and_gapless(self, tmp_path):
        root = _shard_root(tmp_path)
        per_writer = 200
        barrier = threading.Barrier(4)

        def burst(index: int) -> None:
            log = EventLog(root, writer=f"w{index}", shard=index)
            barrier.wait()
            for n in range(per_writer):
                log.emit("ping", n=n)

        threads = [threading.Thread(target=burst, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        records = [r for r in iter_merged_events(root) if r["event"] == "ping"]
        assert len(records) == 4 * per_writer
        keys = [(r["ts"], r["writer"], r["seq"]) for r in records]
        assert keys == sorted(keys)  # globally ordered
        for index in range(4):  # gapless per writer
            seqs = [r["seq"] for r in records if r["writer"] == f"w{index}"]
            assert seqs == list(range(per_writer))

    def test_merged_cursor_tracks_every_stream(self, tmp_path):
        root = _shard_root(tmp_path)
        logs = [EventLog(root, writer=f"w{i}", shard=i) for i in range(4)]
        cursor = MergedEventCursor(root)
        for log in logs:
            log.emit("ping")
        first = [r for r in cursor.poll() if r["event"] == "ping"]
        assert sorted(r["writer"] for r in first) == ["w0", "w1", "w2", "w3"]
        assert cursor.poll() == []  # no double delivery
        logs[2].emit("pong")
        assert [r["event"] for r in cursor.poll()] == ["pong"]

    def test_merged_cursor_picks_up_streams_born_mid_follow(self, tmp_path):
        root = tmp_path / "svc"
        EventLog(root, writer="flat").emit("ping")
        cursor = MergedEventCursor(root)
        assert len(cursor.poll()) == 1
        # A migration happens while the cursor is live: new shard streams
        # must be discovered by the next poll, not only at construction.
        ensure_layout(root, shards=2)
        EventLog(root, writer="w", shard=1).emit("pong")
        events = [r["event"] for r in cursor.poll()]
        assert "pong" in events

    def test_merged_cursor_survives_rotation_between_polls(self, tmp_path):
        root = _shard_root(tmp_path, shards=2)
        log = EventLog(root, writer="w0", shard=0, max_segment_bytes=256)
        cursor = MergedEventCursor(root)
        total = 0
        for n in range(60):
            log.emit("ping", n=n)
            if n % 20 == 19:
                total += sum(1 for r in cursor.poll() if r["event"] == "ping")
        total += sum(1 for r in cursor.poll() if r["event"] == "ping")
        assert total == 60
        assert cursor.skipped == 0

    def test_events_verb_merges_shard_streams(self, tmp_path, capsys):
        root = _shard_root(tmp_path)
        for index in range(4):
            EventLog(root, writer=f"w{index}", shard=index).emit(
                "submitted", job=f"job-{index}", shard=f"s{index:02d}"
            )
        assert main(["events", "--root", str(root), "--json"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        jobs = sorted(r["job"] for r in lines if r.get("job"))
        assert jobs == [f"job-{i}" for i in range(4)]
        # --shard narrows to one stream's records
        assert main(["events", "--root", str(root), "--shard", "s02"]) == 0
        assert "job-2" in capsys.readouterr().out


# -- follow backoff -------------------------------------------------------------------


class TestFollowBackoff:
    def test_rejects_nonpositive_poll_interval(self, tmp_path):
        with pytest.raises(ValueError):
            next(follow_events(tmp_path, poll_interval=0.0))

    def test_idle_polls_back_off_and_activity_resets(self, tmp_path, monkeypatch):
        root = tmp_path / "svc"
        log = EventLog(root, writer="w")
        delays: list = []
        monkeypatch.setattr(time, "sleep", delays.append)
        calls = {"n": 0}

        def stop() -> bool:
            calls["n"] += 1
            if calls["n"] == 4:
                log.emit("ping")  # activity lands between polls
            return calls["n"] >= 6

        records = list(follow_events(root, poll_interval=0.1, stop=stop))
        assert [r["event"] for r in records] == ["ping"]
        # Empty polls double the delay up to the 1s idle ceiling; the poll
        # that saw the ping snaps back to the configured interval.
        assert delays == [
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
            pytest.approx(1.0),
            pytest.approx(0.1),
        ]

    def test_events_parser_honours_poll_flag(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["events", "--root", str(tmp_path), "--follow", "--poll", "0.05"]
        )
        assert args.poll == pytest.approx(0.05)


# -- metrics generations --------------------------------------------------------------


class TestMetricsGenerations:
    def _metrics_record(self, writer: str, nonce: str, value: float) -> dict:
        return {
            "writer": writer,
            "nonce": nonce,
            "metrics": {"jobs.done": {"type": "counter", "value": value}},
        }

    def test_generations_of_a_reused_writer_label_sum(self, tmp_path):
        records = [
            self._metrics_record("w", "gen-a", 3.0),
            self._metrics_record("w", "gen-a", 5.0),  # later snapshot, same life
            self._metrics_record("w", "gen-b", 2.0),  # restarted under same label
        ]
        merged, writers = fleet_metrics_from_events(records)
        assert merged["jobs.done"]["value"] == 7.0  # 5 (latest of a) + 2 (b)
        assert writers == ["w"]

    def test_legacy_records_without_nonce_keep_latest(self, tmp_path):
        records = [
            {"writer": "w", "metrics": {"jobs.done": {"type": "counter", "value": 3.0}}},
            {"writer": "w", "metrics": {"jobs.done": {"type": "counter", "value": 5.0}}},
        ]
        merged, _writers = fleet_metrics_from_events(records)
        assert merged["jobs.done"]["value"] == 5.0

    def test_event_log_round_trip_sums_across_restarts(self, tmp_path):
        root = tmp_path / "svc"
        for done in (4.0, 2.0):  # two process generations, same writer label
            log = EventLog(root, writer="daemon-fixed")
            registry = MetricsRegistry()
            registry.counter("jobs.done").inc(done)
            log.emit("metrics", nonce=log.nonce, metrics=registry.snapshot())
        merged, writers = fleet_metrics_from_events(iter_events(root, event="metrics"))
        assert merged["jobs.done"]["value"] == 6.0
        assert writers == ["daemon-fixed"]


# -- health model ---------------------------------------------------------------------


class TestHealthModel:
    def _heartbeat(self, age: float, now: float, **extra: object) -> dict:
        beat = {"updated_at": now - age, "poll_interval": 0.1, "started_at": now - 60.0}
        beat.update(extra)
        return beat

    def test_worker_state_machine_boundaries(self):
        now = 1000.0
        bound = WORKER_STALE_SECONDS  # poll_interval is small; bound = 5s
        assert classify_worker(self._heartbeat(0.1, now), now)[0] == STATE_OK
        assert classify_worker(self._heartbeat(0.6 * bound, now), now)[0] == STATE_LAGGING
        assert classify_worker(self._heartbeat(2.0 * bound, now), now)[0] == STATE_STALLED
        assert classify_worker(self._heartbeat(4.0 * bound, now), now)[0] == STATE_DEAD
        assert (
            classify_worker(self._heartbeat(0.1, now, stopped=True), now)[0] == STATE_STOPPED
        )

    def test_fleet_verdict_is_worst_live_worker(self, tmp_path):
        root = tmp_path / "svc"
        workers = root / "workers"
        workers.mkdir(parents=True)
        now = time.time()
        for name, age, stopped in (("w-ok", 0.1, False), ("w-gone", 99.0, False)):
            (workers / f"{name}.json").write_text(
                json.dumps(
                    {
                        "updated_at": now - age,
                        "started_at": now - 120.0,
                        "poll_interval": 0.1,
                        "stopped": stopped,
                        "jobs_done": 3,
                    }
                )
            )
        health = collect_fleet_health(root, now=now)
        assert health.workers["w-ok"].state == STATE_OK
        assert health.workers["w-gone"].state == STATE_DEAD
        assert health.verdict == STATE_DEAD
        assert health.workers["w-ok"].throughput_jobs_per_s > 0.0

    def test_all_stopped_fleet_reports_stopped(self, tmp_path):
        root = tmp_path / "svc"
        workers = root / "workers"
        workers.mkdir(parents=True)
        (workers / "w.json").write_text(
            json.dumps({"updated_at": time.time(), "stopped": True})
        )
        assert collect_fleet_health(root).verdict == STATE_STOPPED

    def test_shard_statistics_from_merged_replay(self, tmp_path):
        root = _shard_root(tmp_path, shards=2)
        log = EventLog(root, writer="w", shard=0)
        for n in range(3):
            log.emit("submitted", job=f"j{n}", shard="s00")
        log.emit("claimed", job="j0", shard="s00")
        log.emit("released", job="j0", status="done", shard="s00", latency=0.1)
        log.emit("claimed", job="j1", shard="s00", steal=True)
        health = collect_fleet_health(root)
        shard = health.shards["s00"]
        assert shard.submitted == 3 and shard.claims == 2 and shard.steals == 1
        assert shard.queued == 1  # j2 never claimed
        assert shard.leased == 1  # j1 claimed, not yet released
        assert shard.claim_latency_p50 is not None
        assert shard.claim_latency_p50 <= shard.claim_latency_p95
        assert shard.queue_trend in ("rising", "falling", "flat")

    def test_flat_root_folds_into_pseudo_shard(self, tmp_path):
        root = tmp_path / "svc"
        log = EventLog(root, writer="w")
        log.emit("submitted", job="j")
        health = collect_fleet_health(root)
        assert set(health.shards) == {FLAT_SHARD}

    def test_empty_root_is_idle_and_renders(self, tmp_path):
        health = collect_fleet_health(tmp_path / "empty")
        assert health.verdict == "idle"
        assert "no workers" in format_health(health)

    def test_snapshot_health_is_opt_in(self, tmp_path):
        root = tmp_path / "svc"
        EventLog(root, writer="w").emit("submitted", job="j")
        plain = ServiceSnapshot.collect(root).to_dict()
        assert "health" not in plain
        with_health = ServiceSnapshot.collect(root, with_health=True).to_dict()
        assert with_health["health"]["verdict"] == "idle"

    def test_status_health_verb_prints_verdict(self, tmp_path, capsys):
        root = tmp_path / "svc"
        EventLog(root, writer="w").emit("submitted", job="j")
        assert main(["status", "--root", str(root), "--health"]) == 0
        assert "health:" in capsys.readouterr().out
        assert main(["status", "--root", str(root), "--health", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["verdict"] == "idle"


# -- snapshot/event parity on sharded roots (satellite 3) -----------------------------


class TestShardedParity:
    def test_statuses_replayed_from_merged_stream_match_spool(self, tmp_path):
        root = _shard_root(tmp_path, shards=4)
        for _n in range(4):
            submit_job(root, "smoke")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        assert worker.run(idle_exit=0.3) == 4
        from_spool = {
            record["job_id"]: record["status"]
            for record in service_status(root)["jobs"]["records"]
        }
        assert from_spool and set(from_spool.values()) == {"done"}
        assert job_statuses_from_events(root) == from_spool

    def test_parity_holds_through_stray_adoption(self, tmp_path):
        root = _shard_root(tmp_path, shards=4)
        jobs = [submit_job(root, "smoke") for _n in range(3)]
        # Simulate a submitter that raced the migration: its record sits at
        # the flat spool path, invisible to per-shard scans until adopted.
        stray = jobs[0]
        sharded_path = next(path for path in root.glob(f"jobs/s*/{stray.job_id}.json"))
        os.rename(sharded_path, root / "jobs" / f"{stray.job_id}.json")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        assert worker.run(idle_exit=0.3) == 3
        assert [r for r in iter_events(root, event="adopted")]  # adoption recorded
        from_spool = {
            record["job_id"]: record["status"]
            for record in service_status(root)["jobs"]["records"]
        }
        assert job_statuses_from_events(root) == from_spool
        assert from_spool[stray.job_id] == "done"

    def test_requeued_event_replays_to_queued(self, tmp_path):
        root = tmp_path / "svc"
        log = EventLog(root, writer="w")
        log.emit("submitted", job="j")
        log.emit("claimed", job="j")
        log.emit("released", job="j", status="failed")
        log.emit("requeued", job="j")
        assert job_statuses_from_events(root) == {"j": "queued"}
