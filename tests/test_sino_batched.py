"""Tests of the batched best-of-K annealer and its shared-memory fan-out.

Covers the four contracts the batched subsystem makes:

* the vectorised evaluator scores every move with *exactly* the delta the
  scalar ``propose()`` path computes (property test over random walks);
* ``batch_k=1`` collapses to the scalar annealer bit-for-bit;
* the registry quality gate — the batched annealer's final cost meets the
  scalar reference oracle on every panel of every registered panel
  scenario, seed for seed;
* multi-chain fan-out over a non-shared-memory backend ships panel states
  through shared memory (zero pickled matrices), with backend-independent
  results and no leaked ``/dev/shm`` segments.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import fields, replace

import numpy as np
import pytest

from repro.engine.backends import ProcessBackend, SerialBackend
from repro.obs.trace import Tracer, set_active_tracer
from repro.service.scenarios import generate_scenario, list_scenarios, scenario_kind
from repro.sino.anneal import (
    AnnealConfig,
    _chain_config,
    _run_chains,
    _sample_move,
    anneal_sino,
    anneal_sino_multichain,
    anneal_sino_reference,
    derive_chain_seed,
    solution_cost,
    solve_min_area_sino,
)
from repro.sino.greedy import greedy_sino
from repro.sino.batched import BatchedMoveEvaluator, anneal_sino_batched
from repro.sino.incremental import IncrementalPanelState
from repro.sino.panel import SinoProblem
from repro.tech.itrs import ITRS_70NM, ITRS_100NM, ITRS_130NM

from tests.conftest import make_random_sino_problem

PANEL_SCENARIOS = [name for name, _ in list_scenarios() if scenario_kind(name) == "panels"]


def _scenario_config(task) -> AnnealConfig:
    """The effective schedule of one scenario task (its seed applied)."""
    config = task.anneal or AnnealConfig()
    if config.seed != task.seed and task.seed is not None:
        config = replace(config, seed=task.seed)
    return config


class TestBatchedEvaluatorProperty:
    """Vectorised deltas equal scalar ``propose()`` deltas, exactly."""

    @pytest.mark.parametrize(
        "technology", [ITRS_100NM, ITRS_130NM, ITRS_70NM], ids=lambda t: t.name
    )
    @pytest.mark.parametrize("width", [1, 4, 16])
    def test_batched_deltas_match_scalar_proposals(self, technology, width):
        # Node-scaled bounds mirror how the scenario registry tightens Kth
        # with Vdd; each node exercises a different shield-pressure regime.
        kth = 0.9 * technology.vdd / ITRS_100NM.vdd
        problem = make_random_sino_problem(9, 0.5, kth, seed=29)
        config = AnnealConfig(seed=17)
        layout = list(greedy_sino(problem).layout)
        # Two independent states (separate evaluation memos), walked in
        # lockstep: a shared memo would let cache hits mask a scoring bug.
        scored = IncrementalPanelState(problem, list(layout), config)
        proposed = IncrementalPanelState(problem, list(layout), config)
        evaluator = BatchedMoveEvaluator(scored)
        rng = np.random.default_rng(23)
        total = 0
        while total < 500:
            moves = [_sample_move(proposed, rng) for _ in range(width)]
            batched = evaluator.score(moves)
            scalar = []
            for move in moves:
                scalar.append(proposed.propose(move))
                proposed.revert()
            assert batched == scalar  # exact float equality, not approx
            total += len(moves)
            # Commit the best candidate on both states so the walk visits
            # layouts the greedy seed never produces.
            best = min(range(len(moves)), key=batched.__getitem__)
            if batched[best] < 0.0:
                scored.propose(moves[best])
                scored.commit()
                evaluator.refresh()
                proposed.propose(moves[best])
                proposed.commit()


class TestWidthOneIdentity:
    """``batch_k=1`` is the scalar annealer, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 3, 11, 2002])
    def test_batch_k_one_matches_scalar_annealer(self, seed):
        problem = make_random_sino_problem(10, 0.5, 0.85, seed=seed)
        config = AnnealConfig(iterations=600, seed=seed)
        scalar = anneal_sino(problem, config=config)
        batched = anneal_sino_batched(problem, config=replace(config, batch_k=1))
        assert scalar.layout == batched.layout

    def test_default_width_is_documented_eight(self):
        assert AnnealConfig().batch_k == 8

    def test_batch_k_validation(self):
        with pytest.raises(ValueError):
            AnnealConfig(batch_k=0)


class TestRegistryQualityGate:
    """Batched (K = 8) meets the reference oracle on every registry panel."""

    @pytest.mark.parametrize("name", PANEL_SCENARIOS)
    def test_batched_cost_meets_reference_oracle(self, name):
        assert PANEL_SCENARIOS, "scenario registry lost its panel scenarios"
        for task in generate_scenario(name):
            config = _scenario_config(task)
            reference = solution_cost(anneal_sino_reference(task.problem, config=config), config)
            batched = solution_cost(
                anneal_sino_batched(task.problem, config=replace(config, batch_k=8)),
                config,
            )
            assert batched <= reference + 1e-9, (
                f"{name}/seed={config.seed}: batched cost {batched} worse "
                f"than the reference oracle {reference}"
            )


class TestChainSeedDerivation:
    def test_chain_zero_keeps_the_configured_seed(self):
        assert derive_chain_seed(2002, 0) == 2002
        assert derive_chain_seed(7, 0) == 7

    def test_derived_seeds_are_pinned(self):
        # Pinned values: the derivation feeds the panel cache key through
        # each chain's config, so it must never drift between releases.
        assert derive_chain_seed(2002, 1) == 3291206842
        assert derive_chain_seed(2002, 2) == 1031596892
        assert derive_chain_seed(7, 1) == 369571992

    def test_no_collisions_across_seeds_and_chains(self):
        derived = {derive_chain_seed(seed, chain) for seed in range(40) for chain in range(8)}
        assert len(derived) == 40 * 8


class TestChainConfigDerivation:
    def test_chain_config_swaps_only_the_seed(self):
        template = AnnealConfig(iterations=700, seed=5, chains=1, batch_k=4)
        derived = _chain_config(template, 999)
        assert derived.seed == 999
        for config_field in fields(AnnealConfig):
            if config_field.name == "seed":
                continue
            assert getattr(derived, config_field.name) == getattr(template, config_field.name)

    def test_chain_config_is_identity_for_the_template_seed(self):
        template = AnnealConfig(seed=5)
        assert _chain_config(template, 5) is template

    def test_fanout_validates_once_for_any_chain_count(self, monkeypatch):
        calls = []
        original = AnnealConfig.__post_init__

        def counting(self):
            calls.append(1)
            original(self)

        monkeypatch.setattr(AnnealConfig, "__post_init__", counting)
        problem = make_random_sino_problem(7, 0.5, 0.9, seed=3)
        config = AnnealConfig(iterations=120, seed=9, chains=6)
        calls.clear()
        solution = anneal_sino_multichain(problem, config=config)
        # One validation for the chains=1 template; the six per-chain
        # configs are derived by field copy, not reconstruction.
        assert sum(calls) == 1
        assert solution.num_shields >= 0


class TestCloneSharesEvalMemo:
    def test_clone_shares_the_memo_dict(self):
        problem = make_random_sino_problem(8, 0.5, 0.9, seed=13)
        state = IncrementalPanelState(problem, list(greedy_sino(problem).layout), AnnealConfig())
        clone = state.clone()
        assert clone._eval_cache is state._eval_cache

    def test_evaluations_flow_between_clones(self):
        problem = make_random_sino_problem(8, 0.5, 0.9, seed=13)
        state = IncrementalPanelState(problem, list(greedy_sino(problem).layout), AnnealConfig())
        clone = state.clone()
        rng = np.random.default_rng(0)
        move = _sample_move(state, rng)
        state.propose(move)
        state.revert()
        before = len(state._eval_cache)
        clone.propose(move)  # must hit the sibling's cached evaluation
        clone.revert()
        assert len(clone._eval_cache) == before


def _assert_no_panel_payload(value, path="task"):
    """Recursively assert a task carries no matrices and no problem object."""
    assert not isinstance(value, np.ndarray), f"{path} carries an ndarray"
    assert not isinstance(value, SinoProblem), f"{path} carries a SinoProblem"
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _assert_no_panel_payload(item, f"{path}[{index}]")
    elif isinstance(value, dict):
        for key, item in value.items():
            _assert_no_panel_payload(item, f"{path}[{key!r}]")
    elif hasattr(value, "__dataclass_fields__"):
        for name in value.__dataclass_fields__:
            _assert_no_panel_payload(getattr(value, name), f"{path}.{name}")


class _PickleScanBackend(SerialBackend):
    """Serial execution behind a process-backend facade.

    ``shares_memory=False`` routes the chain fan-out onto the shared-memory
    export path; every task is scanned for forbidden payloads and pickled
    round-trip before running, which is exactly the proof a real process
    pool needs.
    """

    name = "pickle-scan"

    def __init__(self):
        super().__init__()
        self.payload_bytes = 0
        self.tasks_scanned = 0

    @property
    def shares_memory(self) -> bool:
        return False

    def submit_batch(self, fn, chunks):
        results = []
        for chunk in chunks:
            for task in chunk:
                _assert_no_panel_payload(task)
            blob = pickle.dumps(chunk)
            self.payload_bytes += len(blob)
            self.tasks_scanned += len(chunk)
            results.append([fn(task) for task in pickle.loads(blob)])
        return results


class TestSharedMemoryFanOut:
    def _chain_problem(self):
        return make_random_sino_problem(10, 0.5, 0.8, seed=21)

    def test_non_shared_backend_pickles_no_panel_matrices(self):
        problem = self._chain_problem()
        config = AnnealConfig(iterations=300, seed=4, chains=4)
        backend = _PickleScanBackend()
        fanned = anneal_sino_multichain(
            problem, config=config, backend=backend, algorithm="batched"
        )
        serial = anneal_sino_multichain(problem, config=config, algorithm="batched")
        assert backend.tasks_scanned == 4
        # A chain task is (handle, config, algorithm): a few hundred bytes,
        # however large the panel — nothing quadratic crosses the boundary.
        assert backend.payload_bytes < 4 * 4096
        assert fanned.layout == serial.layout

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="platform has no /dev/shm")
    def test_process_backend_matches_serial_and_leaks_no_segments(self):
        problem = self._chain_problem()
        config = AnnealConfig(iterations=300, seed=4, chains=4)
        before = set(os.listdir("/dev/shm"))
        with ProcessBackend(workers=2) as backend:
            fanned = anneal_sino_multichain(
                problem, config=config, backend=backend, algorithm="batched"
            )
        serial = anneal_sino_multichain(problem, config=config, algorithm="batched")
        assert fanned.layout == serial.layout
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    def test_run_chains_matches_across_backends(self):
        problem = self._chain_problem()
        config = AnnealConfig(iterations=200, seed=11, chains=3)
        inline = _run_chains(problem, None, config, None, "batched")
        scanned = _run_chains(problem, None, config, _PickleScanBackend(), "batched")
        assert [s.layout for s in inline] == [s.layout for s in scanned]


class TestEffortDispatch:
    def test_anneal_batched_effort_runs_the_batched_annealer(self):
        problem = make_random_sino_problem(9, 0.5, 0.85, seed=6)
        config = AnnealConfig(iterations=400, seed=6)
        via_effort = solve_min_area_sino(
            problem, effort="anneal-batched", config=config
        )
        direct = anneal_sino_batched(problem, config=config)
        assert via_effort.layout == direct.layout
        assert via_effort.is_valid()


class TestChainTracing:
    def test_ambient_tracer_records_per_chain_spans_with_counters(self):
        problem = make_random_sino_problem(8, 0.5, 0.9, seed=2)
        tracer = Tracer()
        set_active_tracer(tracer)
        try:
            anneal_sino_multichain(
                problem,
                config=AnnealConfig(iterations=200, seed=2, chains=2),
                algorithm="batched",
            )
        finally:
            set_active_tracer(None)
        report = tracer.format_report()
        assert report.count("anneal.chain") == 2
        assert "evals=" in report and "batch_k=" in report
