"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.ibm import generate_circuit
from repro.gsino.config import GsinoConfig
from repro.sino.panel import SinoProblem
from repro.tech.driver import UniformInterfaceModel
from repro.tech.itrs import ITRS_100NM


@pytest.fixture(scope="session")
def interface_model():
    """The default uniform driver/receiver pair of the 0.10 um node."""
    return UniformInterfaceModel.from_technology(ITRS_100NM)


@pytest.fixture(scope="session")
def small_circuit():
    """A small synthetic ibm01 instance shared by integration tests."""
    return generate_circuit("ibm01", sensitivity_rate=0.3, scale=0.015, seed=11)


@pytest.fixture(scope="session")
def small_circuit_config(small_circuit):
    """Flow configuration matched to the small circuit's scale."""
    return GsinoConfig(length_scale=1.0 / (0.015 ** 0.5))


def make_random_sino_problem(
    num_segments: int,
    sensitivity_rate: float,
    kth: float,
    seed: int = 0,
) -> SinoProblem:
    """Helper used by several SINO tests to build random instances."""
    rng = np.random.default_rng(seed)
    segments = list(range(num_segments))
    sensitivity = {segment: set() for segment in segments}
    for i in segments:
        for j in segments:
            if j > i and rng.random() < sensitivity_rate:
                sensitivity[i].add(j)
                sensitivity[j].add(i)
    return SinoProblem.build(segments, sensitivity, default_kth=kth)


@pytest.fixture
def random_sino_problem():
    """Factory fixture for random SINO problems."""
    return make_random_sino_problem
