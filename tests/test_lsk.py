"""Tests for the LSK model: Equation 1, the lookup table, budgets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.keff import PanelOccupant
from repro.noise.lsk import (
    LskModel,
    LskTable,
    RegionContribution,
    compute_lsk,
    linear_reference_table,
)


@pytest.fixture
def simple_table():
    """A small monotone table: noise = 100 * LSK over [1e-3, 2e-3]."""
    lsk = np.linspace(1e-3, 2e-3, 11)
    noise = 100.0 * lsk
    return LskTable(lsk_values=lsk, noise_values=noise)


class TestRegionContribution:
    def test_lsk_term(self):
        contribution = RegionContribution(region_id="r0", length=2e-3, coupling=1.5)
        assert contribution.lsk_term == pytest.approx(3e-3)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            RegionContribution(region_id="r0", length=-1.0, coupling=1.0)
        with pytest.raises(ValueError):
            RegionContribution(region_id="r0", length=1.0, coupling=-1.0)

    def test_compute_lsk_is_a_sum(self):
        contributions = [
            RegionContribution(region_id=i, length=1e-3, coupling=float(i))
            for i in range(4)
        ]
        assert compute_lsk(contributions) == pytest.approx(1e-3 * (0 + 1 + 2 + 3))

    def test_compute_lsk_empty(self):
        assert compute_lsk([]) == 0.0


class TestLskTable:
    def test_interpolation_inside(self, simple_table):
        assert simple_table.noise_for(1.5e-3) == pytest.approx(0.15)

    def test_extrapolation_below_goes_through_origin(self, simple_table):
        assert simple_table.noise_for(0.5e-3) == pytest.approx(0.05)
        assert simple_table.noise_for(0.0) == pytest.approx(0.0)

    def test_extrapolation_above_uses_last_slope(self, simple_table):
        assert simple_table.noise_for(3e-3) == pytest.approx(0.3)

    def test_inverse_lookup_round_trip(self, simple_table):
        for noise in (0.05, 0.12, 0.15, 0.19, 0.25):
            lsk = simple_table.lsk_for_noise(noise)
            assert simple_table.noise_for(lsk) == pytest.approx(noise, rel=1e-6)

    def test_inverse_lookup_rejects_non_positive(self, simple_table):
        with pytest.raises(ValueError):
            simple_table.lsk_for_noise(0.0)

    def test_noise_range(self, simple_table):
        low, high = simple_table.noise_range
        assert low == pytest.approx(0.1)
        assert high == pytest.approx(0.2)

    def test_requires_monotone_noise(self):
        with pytest.raises(ValueError):
            LskTable(lsk_values=[1.0, 2.0, 3.0], noise_values=[0.2, 0.1, 0.3])

    def test_requires_strictly_increasing_lsk(self):
        with pytest.raises(ValueError):
            LskTable(lsk_values=[1.0, 1.0], noise_values=[0.1, 0.2])

    def test_requires_at_least_two_entries(self):
        with pytest.raises(ValueError):
            LskTable(lsk_values=[1.0], noise_values=[0.1])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            LskTable(lsk_values=[-1.0, 1.0], noise_values=[0.1, 0.2])

    def test_serialisation_round_trip(self, simple_table, tmp_path):
        path = tmp_path / "table.json"
        simple_table.save(path)
        loaded = LskTable.load(path)
        assert loaded.num_entries == simple_table.num_entries
        assert loaded.noise_for(1.3e-3) == pytest.approx(simple_table.noise_for(1.3e-3))

    def test_dict_round_trip(self, simple_table):
        rebuilt = LskTable.from_dict(simple_table.to_dict())
        assert np.allclose(rebuilt.lsk_values, simple_table.lsk_values)

    def test_rejects_negative_lookup(self, simple_table):
        with pytest.raises(ValueError):
            simple_table.noise_for(-1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=5e-3), st.floats(min_value=0.0, max_value=5e-3))
    def test_monotone_everywhere(self, a, b):
        lsk = np.linspace(1e-3, 2e-3, 11)
        table = LskTable(lsk_values=lsk, noise_values=100.0 * lsk)
        low, high = sorted((a, b))
        assert table.noise_for(low) <= table.noise_for(high) + 1e-12


class TestLinearReferenceTable:
    def test_paper_like_window(self):
        table = linear_reference_table(slope=100.0)
        low, high = table.noise_range
        assert low == pytest.approx(0.10)
        assert high == pytest.approx(0.20)
        assert table.num_entries == 100

    def test_slope_is_respected(self):
        table = linear_reference_table(slope=200.0)
        lsk = table.lsk_for_noise(0.15)
        assert 200.0 * lsk == pytest.approx(0.15, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_reference_table(slope=0.0)
        with pytest.raises(ValueError):
            linear_reference_table(slope=1.0, noise_floor=0.3, noise_ceiling=0.2)
        with pytest.raises(ValueError):
            linear_reference_table(slope=1.0, num_entries=1)


class TestLskModel:
    def test_noise_of_contributions(self, simple_table):
        model = LskModel(table=simple_table)
        contributions = [RegionContribution(region_id=0, length=1e-3, coupling=1.5)]
        assert model.noise_of(contributions) == pytest.approx(0.15)
        assert model.lsk_of(contributions) == pytest.approx(1.5e-3)

    def test_budgets(self, simple_table):
        model = LskModel(table=simple_table)
        budget = model.lsk_budget(0.15)
        assert budget == pytest.approx(1.5e-3)
        assert model.coupling_budget(0.15, path_length=1e-3) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            model.coupling_budget(0.15, path_length=0.0)

    def test_panel_noise_helper(self, simple_table):
        model = LskModel(table=simple_table)
        occupants = [PanelOccupant(track=0, net_id=1), PanelOccupant(track=1, net_id=2)]
        noise = model.panel_noise(occupants, {1: {2}, 2: {1}}, length=1e-3)
        # K = 1 for each net, LSK = 1e-3, noise = 0.1 V from the table.
        assert noise[1] == pytest.approx(0.1)
        assert noise[2] == pytest.approx(0.1)
