"""Tests for circuit elements, waveforms and the netlist container."""

import pytest

from repro.circuit.elements import (
    Capacitor,
    GROUND,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
    element_nodes,
)
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import PiecewiseLinear, constant, falling_ramp, ramp, step


class TestWaveforms:
    def test_constant(self):
        waveform = constant(1.5)
        assert waveform.value_at(0.0) == pytest.approx(1.5)
        assert waveform.value_at(1e9) == pytest.approx(1.5)

    def test_ramp_values(self):
        waveform = ramp(1.0, rise_time=1e-9)
        assert waveform.value_at(0.0) == pytest.approx(0.0)
        assert waveform.value_at(0.5e-9) == pytest.approx(0.5)
        assert waveform.value_at(1e-9) == pytest.approx(1.0)
        assert waveform.value_at(5e-9) == pytest.approx(1.0)
        assert waveform.final_value == pytest.approx(1.0)

    def test_ramp_with_start_offset(self):
        waveform = ramp(2.0, rise_time=2e-9, start=1e-9)
        assert waveform.value_at(0.5e-9) == pytest.approx(0.0)
        assert waveform.value_at(2e-9) == pytest.approx(1.0)

    def test_falling_ramp(self):
        waveform = falling_ramp(1.0, fall_time=1e-9)
        assert waveform.value_at(0.0) == pytest.approx(1.0)
        assert waveform.value_at(1e-9) == pytest.approx(0.0)

    def test_step_is_sharp(self):
        waveform = step(1.0, at=1e-9)
        assert waveform.value_at(0.999e-9) == pytest.approx(0.0)
        assert waveform.value_at(1.1e-9) == pytest.approx(1.0)

    def test_max_abs_value(self):
        waveform = PiecewiseLinear.from_pairs([(0.0, 0.0), (1.0, -2.0), (2.0, 1.0)])
        assert waveform.max_abs_value == pytest.approx(2.0)

    def test_rejects_non_monotone_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear.from_pairs([(1.0, 0.0), (0.5, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(points=())

    def test_rejects_bad_ramp_times(self):
        with pytest.raises(ValueError):
            ramp(1.0, rise_time=0.0)
        with pytest.raises(ValueError):
            falling_ramp(1.0, fall_time=-1.0)


class TestElements:
    def test_resistor_validation(self):
        with pytest.raises(ValueError):
            Resistor(name="r", node_pos="a", node_neg="a", resistance=10.0)
        with pytest.raises(ValueError):
            Resistor(name="r", node_pos="a", node_neg="b", resistance=0.0)

    def test_capacitor_and_inductor_validation(self):
        with pytest.raises(ValueError):
            Capacitor(name="c", node_pos="a", node_neg="b", capacitance=-1e-15)
        with pytest.raises(ValueError):
            Inductor(name="l", node_pos="a", node_neg="b", inductance=0.0)

    def test_mutual_validation(self):
        with pytest.raises(ValueError):
            MutualInductance(name="k", inductor_a="l1", inductor_b="l1", mutual=1e-9)
        with pytest.raises(ValueError):
            MutualInductance(name="k", inductor_a="l1", inductor_b="l2", mutual=-1e-9)

    def test_source_voltage_at(self):
        source = VoltageSource(name="v", node_pos="a", node_neg=GROUND, waveform=ramp(1.0, 1e-9))
        assert source.voltage_at(0.5e-9) == pytest.approx(0.5)

    def test_element_nodes(self):
        resistor = Resistor(name="r", node_pos="a", node_neg="b", resistance=1.0)
        assert element_nodes(resistor) == ("a", "b")
        mutual = MutualInductance(name="k", inductor_a="l1", inductor_b="l2", mutual=0.0)
        assert element_nodes(mutual) == ()


class TestCircuit:
    def test_incremental_construction(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("vin", "in", GROUND, dc_value=1.0)
        circuit.add_resistor("r1", "in", "out", 100.0)
        circuit.add_capacitor("c1", "out", GROUND, 1e-12)
        assert circuit.element_count() == 3
        assert set(circuit.non_ground_nodes) == {"in", "out"}
        circuit.validate()

    def test_duplicate_element_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", GROUND, 1.0)
        with pytest.raises(ValueError):
            circuit.add_resistor("r1", "b", GROUND, 2.0)

    def test_validate_requires_elements_and_ground(self):
        empty = Circuit()
        with pytest.raises(ValueError):
            empty.validate()
        floating = Circuit()
        floating.add_resistor("r1", "a", "b", 1.0)
        with pytest.raises(ValueError):
            floating.validate()

    def test_validate_mutual_references(self):
        circuit = Circuit()
        circuit.add_inductor("l1", "a", GROUND, 1e-9)
        circuit.add_mutual("k1", "l1", "l2", 0.5e-9)
        with pytest.raises(ValueError):
            circuit.validate()

    def test_validate_mutual_physical_limit(self):
        circuit = Circuit()
        circuit.add_inductor("l1", "a", GROUND, 1e-9)
        circuit.add_inductor("l2", "b", GROUND, 1e-9)
        circuit.add_mutual("k1", "l1", "l2", 2e-9)
        with pytest.raises(ValueError):
            circuit.validate()

    def test_inductor_by_name(self):
        circuit = Circuit()
        circuit.add_inductor("l1", "a", GROUND, 1e-9)
        assert circuit.inductor_by_name("l1").inductance == pytest.approx(1e-9)
        with pytest.raises(KeyError):
            circuit.inductor_by_name("l9")

    def test_repr_mentions_counts(self):
        circuit = Circuit("x")
        circuit.add_resistor("r1", "a", GROUND, 1.0)
        assert "R=1" in repr(circuit)
