"""Tests for the connection graphs, Formula 2 weights and the ID router."""

import pytest

from repro.grid.congestion import CongestionMap
from repro.grid.nets import Net, Netlist, Pin
from repro.grid.regions import RoutingGrid
from repro.router.connection_graph import ConnectionGraph, build_connection_graph
from repro.router.iterative_deletion import IterativeDeletionRouter, route_netlist
from repro.router.realize import prune_to_tree
from repro.router.weights import WeightConfig, edge_weight


@pytest.fixture
def grid():
    return RoutingGrid(
        num_cols=5,
        num_rows=5,
        chip_width=500.0,
        chip_height=500.0,
        horizontal_capacity=6,
        vertical_capacity=6,
    )


class TestConnectionGraph:
    def test_build_covers_bounding_box(self, grid):
        net = Net(net_id=0, pins=(Pin(50, 50), Pin(250, 150)))
        graph = build_connection_graph(net, grid)
        # Bounding box spans 3 columns x 2 rows of regions.
        assert graph.num_nodes == 6
        assert graph.num_edges == 7
        assert graph.is_pin_region((0, 0))
        assert graph.is_pin_region((2, 1))

    def test_margin_expands_box(self, grid):
        net = Net(net_id=0, pins=(Pin(150, 150), Pin(250, 150)))
        plain = build_connection_graph(net, grid)
        expanded = build_connection_graph(net, grid, bounding_box_margin=1)
        assert expanded.num_nodes > plain.num_nodes

    def test_deletability_and_connectivity(self, grid):
        net = Net(net_id=0, pins=(Pin(50, 50), Pin(250, 50)))
        graph = build_connection_graph(net, grid)
        assert graph.pins_connected()
        # Straight-line graph of 3 regions in a row: every edge is a bridge.
        assert not graph.is_deletable((0, 0), (1, 0))
        assert not graph.is_deletable((1, 0), (2, 0))

    def test_deletable_in_a_cycle(self, grid):
        net = Net(net_id=0, pins=(Pin(50, 50), Pin(150, 150)))
        graph = build_connection_graph(net, grid)
        # The 2x2 box is a cycle: every edge is deletable.
        for edge in graph.edges():
            assert graph.is_deletable(*edge)

    def test_remove_edge_updates_structure(self, grid):
        net = Net(net_id=0, pins=(Pin(50, 50), Pin(150, 150)))
        graph = build_connection_graph(net, grid)
        edge = next(iter(graph.edges()))
        graph.remove_edge(*edge)
        assert not graph.has_edge(*edge)
        with pytest.raises(KeyError):
            graph.remove_edge(*edge)

    def test_is_forest_detection(self):
        graph = ConnectionGraph(net_id=1, pin_regions=[(0, 0)])
        graph.add_edge((0, 0), (1, 0))
        graph.add_edge((1, 0), (1, 1))
        assert graph.is_forest()
        graph.add_edge((0, 0), (0, 1))
        graph.add_edge((0, 1), (1, 1))
        assert not graph.is_forest()

    def test_requires_pin_regions(self):
        with pytest.raises(ValueError):
            ConnectionGraph(net_id=0, pin_regions=[])

    def test_to_networkx_matches(self, grid):
        net = Net(net_id=0, pins=(Pin(50, 50), Pin(150, 150)))
        graph = build_connection_graph(net, grid)
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == graph.num_nodes
        assert exported.number_of_edges() == graph.num_edges


class TestPruneToTree:
    def test_prunes_dangling_branches(self):
        graph = ConnectionGraph(net_id=0, pin_regions=[(0, 0), (2, 0)])
        graph.add_edge((0, 0), (1, 0))
        graph.add_edge((1, 0), (2, 0))
        graph.add_edge((1, 0), (1, 1))  # dangling, no pin
        tree = prune_to_tree(graph)
        assert tree.is_tree()
        assert (1, 1) not in tree.regions()

    def test_disconnected_pins_raise(self):
        graph = ConnectionGraph(net_id=0, pin_regions=[(0, 0), (2, 0)])
        graph.add_edge((0, 0), (1, 0))
        with pytest.raises(ValueError):
            prune_to_tree(graph)

    def test_single_region_net(self):
        graph = ConnectionGraph(net_id=0, pin_regions=[(1, 1)])
        tree = prune_to_tree(graph)
        assert tree.is_tree()
        assert tree.regions() == {(1, 1)}


class TestWeights:
    def test_formula2_defaults_match_paper(self):
        config = WeightConfig()
        assert config.alpha == pytest.approx(2.0)
        assert config.beta == pytest.approx(1.0)
        assert config.gamma == pytest.approx(50.0)

    def test_edge_weight_formula(self):
        config = WeightConfig(alpha=2.0, beta=1.0, gamma=50.0)
        weight = edge_weight(config, normalized_length=0.5, density=0.8, relative_overflow=0.1)
        assert weight == pytest.approx(2.0 * 0.5 + 1.0 * 0.8 + 50.0 * 0.1)

    def test_overflow_dominates(self):
        config = WeightConfig()
        congested = edge_weight(config, 0.1, 0.9, 0.2)
        long_but_free = edge_weight(config, 1.0, 0.5, 0.0)
        assert congested > long_but_free

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            WeightConfig(bounding_box_margin=-1)
        with pytest.raises(ValueError):
            WeightConfig(weight_tolerance=-0.1)
        with pytest.raises(ValueError):
            edge_weight(WeightConfig(), -0.1, 0.0, 0.0)


def small_netlist() -> Netlist:
    nets = [
        Net(net_id=0, pins=(Pin(50, 50), Pin(350, 50))),
        Net(net_id=1, pins=(Pin(50, 150), Pin(350, 150))),
        Net(net_id=2, pins=(Pin(150, 50), Pin(150, 350))),
        Net(net_id=3, pins=(Pin(250, 50), Pin(250, 350), Pin(350, 250))),
        Net(net_id=4, pins=(Pin(60, 60), Pin(80, 70))),
    ]
    return Netlist(nets, sensitivity={0: {1, 2}, 3: {2}})


class TestIterativeDeletionRouter:
    def test_routes_every_net_as_a_tree(self, grid):
        solution, report = route_netlist(grid, small_netlist(), config=WeightConfig(reserve_shields=False))
        assert len(solution) == 5
        assert solution.all_trees_valid()
        assert report.num_nets == 5
        assert report.deleted_edges > 0

    def test_trees_span_pin_regions(self, grid):
        solution, _ = route_netlist(grid, small_netlist(), config=WeightConfig(reserve_shields=False))
        for net in small_netlist().nets():
            route = solution.route(net.net_id)
            for coord in net.pin_regions(grid):
                assert coord in route.regions()

    def test_single_region_net_has_no_edges(self, grid):
        solution, _ = route_netlist(grid, small_netlist(), config=WeightConfig(reserve_shields=False))
        assert solution.route(4).edges == frozenset()

    def test_deterministic_given_same_inputs(self, grid):
        first, _ = route_netlist(grid, small_netlist(), config=WeightConfig(reserve_shields=False))
        second, _ = route_netlist(grid, small_netlist(), config=WeightConfig(reserve_shields=False))
        for net_id in range(5):
            assert first.route(net_id).edges == second.route(net_id).edges

    def test_wirelength_close_to_steiner_estimate(self, grid):
        netlist = small_netlist()
        solution, _ = route_netlist(grid, netlist, config=WeightConfig(reserve_shields=False))
        # Each 2-pin net must be routed within ~one region span of its HPWL.
        for net in netlist.nets():
            if net.num_pins != 2:
                continue
            route_length = solution.route(net.net_id).wirelength_um(grid)
            assert route_length <= net.hpwl() + 2 * grid.region_width + 1e-6

    def test_shield_reservation_uses_estimator(self, grid):
        netlist = small_netlist()
        router = IterativeDeletionRouter(grid, netlist, config=WeightConfig(reserve_shields=True))
        assert router.estimator is not None
        solution, _ = router.route()
        assert solution.all_trees_valid()

    def test_no_reservation_has_no_estimator(self, grid):
        router = IterativeDeletionRouter(
            grid, small_netlist(), config=WeightConfig(reserve_shields=False)
        )
        assert router.estimator is None

    def test_congestion_spread_under_capacity_pressure(self):
        """With a tight capacity and gamma >> alpha, the router avoids overflow."""
        grid = RoutingGrid(
            num_cols=4,
            num_rows=4,
            chip_width=400.0,
            chip_height=400.0,
            horizontal_capacity=3,
            vertical_capacity=3,
        )
        # Four nets whose bounding boxes all span rows 1 and 2: only three
        # horizontal tracks exist per region, so the router must split them
        # across the two rows to avoid overflow.
        nets = [
            Net(net_id=i, pins=(Pin(10.0 + 3 * i, 110.0 + i), Pin(390.0 - 2 * i, 290.0 - i)))
            for i in range(4)
        ]
        netlist = Netlist(nets)
        solution, _ = route_netlist(grid, netlist, config=WeightConfig(reserve_shields=False))
        congestion = CongestionMap.from_solution(solution)
        assert congestion.max_density() <= 1.0 + 1e-9
        assert congestion.total_overflow() == pytest.approx(0.0)
