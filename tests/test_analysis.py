"""Tests for the reporting helpers and the table-reproduction drivers."""

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    render_all_tables,
    render_table1,
    render_table2,
    render_table3,
    run_circuit_comparison,
    run_table_suite,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.analysis.report import format_percentage, format_table, render_comparison


class TestReportFormatting:
    def test_format_percentage(self):
        assert format_percentage(0.146) == "14.60%"
        assert format_percentage(0.3, decimals=0) == "30%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert all(len(line) >= len("long-name") for line in lines[1:])

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_render_comparison_ends_with_newline(self):
        assert render_comparison("t", ["a"], [[1]]).endswith("\n")


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.circuits == ("ibm01", "ibm02", "ibm03", "ibm04", "ibm05", "ibm06")
        assert config.sensitivity_rates == (0.3, 0.5)

    def test_flow_config_scales_lengths(self):
        config = ExperimentConfig(scale=0.04)
        assert config.flow_config().length_scale == pytest.approx(1.0 / 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(circuits=())
        with pytest.raises(ValueError):
            ExperimentConfig(sensitivity_rates=())
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0.0)


class TestTableDrivers:
    @pytest.fixture(scope="class")
    def comparisons(self):
        config = ExperimentConfig(
            circuits=("ibm01",),
            sensitivity_rates=(0.3, 0.5),
            scale=0.015,
            seed=11,
        )
        return run_table_suite(config)

    def test_suite_covers_every_circuit_and_rate(self, comparisons):
        assert len(comparisons) == 2
        assert {c.sensitivity_rate for c in comparisons} == {0.3, 0.5}

    def test_table1_structure_and_trend(self, comparisons):
        rows = table1_rows(comparisons)
        assert len(rows) == 1
        assert len(rows[0]) == 3  # circuit + two rates
        # Violations grow with the sensitivity rate (paper's headline trend).
        low = comparisons[0] if comparisons[0].sensitivity_rate == 0.3 else comparisons[1]
        high = comparisons[1] if comparisons[1].sensitivity_rate == 0.5 else comparisons[0]
        assert (
            high.id_no.metrics.crosstalk.num_violations
            >= low.id_no.metrics.crosstalk.num_violations
        )

    def test_table2_structure(self, comparisons):
        rows = table2_rows(comparisons)
        assert len(rows) == 2
        assert all(len(row) == 4 for row in rows)

    def test_table3_structure_and_ordering(self, comparisons):
        rows = table3_rows(comparisons)
        assert len(rows) == 2
        for comparison in comparisons:
            assert comparison.isino.metrics.area.area >= comparison.id_no.metrics.area.area - 1e-6
            assert comparison.gsino.metrics.area.area <= comparison.isino.metrics.area.area + 1e-6

    def test_gsino_eliminates_violations_in_suite(self, comparisons):
        for comparison in comparisons:
            assert comparison.gsino.metrics.crosstalk.num_violations == 0

    def test_rendered_tables_mention_circuits(self, comparisons):
        text = render_all_tables(comparisons)
        assert "Table 1" in text and "Table 2" in text and "Table 3" in text
        assert "ibm01" in text
        assert render_table1(comparisons).count("\n") >= 3
        assert render_table2(comparisons)
        assert render_table3(comparisons)

    def test_run_circuit_comparison_single(self):
        config = ExperimentConfig(circuits=("ibm01",), sensitivity_rates=(0.3,), scale=0.01, seed=2)
        comparison = run_circuit_comparison("ibm01", 0.3, config)
        assert set(comparison.flows) == {"id_no", "isino", "gsino"}
        assert comparison.circuit.netlist.num_nets > 0
