"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; running them as subprocesses
(with small arguments where the script accepts them) guards against bit-rot in
the documented entry points.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    """Run one example script in a subprocess and return the completed process."""
    command = [sys.executable, str(EXAMPLES_DIR / script), *args]
    return subprocess.run(
        command,
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


class TestExamples:
    def test_examples_directory_contents(self):
        scripts = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "gsino" in result.stdout
        assert "phase III" in result.stdout

    def test_single_region_sino(self):
        result = run_example("single_region_sino.py", "8", "0.5")
        assert result.returncode == 0, result.stderr
        assert "greedy SINO" in result.stdout
        assert "anneal SINO" in result.stdout

    def test_compare_flows_ibm(self):
        result = run_example("compare_flows_ibm.py", "ibm01", "0.3", "0.01")
        assert result.returncode == 0, result.stderr
        assert "gsino" in result.stdout

    def test_crosstalk_characterization(self):
        result = run_example("crosstalk_characterization.py")
        assert result.returncode == 0, result.stderr
        assert "rank correlation" in result.stdout

    def test_reproduce_paper_tables_small(self):
        result = run_example("reproduce_paper_tables.py", "0.01", "ibm01")
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "Table 3" in result.stdout
