"""Tests for the GSINO configuration and Phase I crosstalk budgeting."""

import pytest

from repro.grid.nets import Net, Netlist, Pin
from repro.gsino.budgeting import NetBudget, bounds_for_nets, budget_for_net, compute_budgets
from repro.gsino.config import UM_TO_M, GsinoConfig, default_reference_table
from repro.noise.lsk import LskModel, linear_reference_table
from repro.tech.itrs import ITRS_100NM, ITRS_130NM


class TestGsinoConfig:
    def test_defaults_resolve_to_paper_values(self):
        config = GsinoConfig()
        assert config.resolved_bound() == pytest.approx(0.15, abs=1e-6)
        assert config.gsino_weights.reserve_shields is True
        assert config.baseline_weights.reserve_shields is False

    def test_explicit_bound_overrides_technology(self):
        config = GsinoConfig(crosstalk_bound=0.12)
        assert config.resolved_bound() == pytest.approx(0.12)

    def test_lsk_model_is_cached(self):
        config = GsinoConfig()
        assert config.lsk_model() is config.lsk_model()

    def test_explicit_table_is_used(self):
        table = linear_reference_table(slope=50.0)
        config = GsinoConfig(lsk_table=table)
        assert config.lsk_model().table is table

    def test_with_changes(self):
        config = GsinoConfig()
        changed = config.with_changes(length_scale=4.0)
        assert changed.length_scale == pytest.approx(4.0)
        assert config.length_scale == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GsinoConfig(crosstalk_bound=0.0)
        with pytest.raises(ValueError):
            GsinoConfig(length_scale=0.0)
        with pytest.raises(ValueError):
            GsinoConfig(sino_effort="exact")
        with pytest.raises(ValueError):
            GsinoConfig(refine_kth_shrink=1.5)
        with pytest.raises(ValueError):
            GsinoConfig(table_samples=1)

    def test_default_reference_table_window(self):
        table = default_reference_table(ITRS_100NM)
        low, high = table.noise_range
        assert low == pytest.approx(ITRS_100NM.crosstalk_noise_floor)
        assert high == pytest.approx(ITRS_100NM.crosstalk_noise_ceiling)

    def test_default_reference_table_scales_with_technology(self):
        table_100 = default_reference_table(ITRS_100NM)
        table_130 = default_reference_table(ITRS_130NM)
        assert table_130.noise_range[1] > table_100.noise_range[1]

    def test_resolved_estimator(self):
        config = GsinoConfig()
        assert config.resolved_estimator() is config.resolved_estimator()


class TestBudgeting:
    @pytest.fixture
    def model(self):
        # noise = 100 * LSK: a 0.15 V bound maps to an LSK budget of 1.5e-3.
        return LskModel(table=linear_reference_table(slope=100.0))

    def test_budget_for_two_pin_net(self, model):
        net = Net(net_id=0, pins=(Pin(0, 0), Pin(500.0, 250.0)))
        budget = budget_for_net(net, model, noise_bound=0.15)
        assert budget.lsk_budget == pytest.approx(1.5e-3)
        # Manhattan distance 750 um -> Kth = 1.5e-3 / 750e-6 = 2.0
        assert budget.kth == pytest.approx(2.0)
        assert budget.sink_path_lengths_m == (pytest.approx(750e-6),)

    def test_multi_sink_takes_minimum(self, model):
        net = Net(net_id=0, pins=(Pin(0, 0), Pin(100.0, 0.0), Pin(1000.0, 500.0)))
        budget = budget_for_net(net, model, noise_bound=0.15)
        # The far sink (1500 um) is the binding one.
        assert budget.kth == pytest.approx(1.5e-3 / 1500e-6)

    def test_length_scale_tightens_bounds(self, model):
        net = Net(net_id=0, pins=(Pin(0, 0), Pin(500.0, 250.0)))
        plain = budget_for_net(net, model, noise_bound=0.15, length_scale=1.0)
        scaled = budget_for_net(net, model, noise_bound=0.15, length_scale=5.0)
        assert scaled.kth == pytest.approx(plain.kth / 5.0)

    def test_zero_length_sink_uses_minimum_path(self, model):
        net = Net(net_id=0, pins=(Pin(10.0, 10.0), Pin(10.0, 10.0)))
        budget = budget_for_net(net, model, noise_bound=0.15)
        assert budget.kth > 0.0

    def test_compute_budgets_covers_all_nets(self, model):
        nets = [Net(net_id=i, pins=(Pin(0, 0), Pin(100.0 * (i + 1), 0))) for i in range(5)]
        netlist = Netlist(nets)
        config = GsinoConfig(lsk_table=linear_reference_table(slope=100.0))
        budgets = compute_budgets(netlist, config)
        assert set(budgets) == set(netlist.net_ids())
        # Longer nets receive tighter per-segment bounds.
        assert budgets[4].kth < budgets[0].kth

    def test_bounds_for_nets_filters(self, model):
        budgets = {
            0: NetBudget(net_id=0, lsk_budget=1e-3, kth=1.0, sink_path_lengths_m=(1e-3,)),
            1: NetBudget(net_id=1, lsk_budget=1e-3, kth=2.0, sink_path_lengths_m=(5e-4,)),
        }
        assert bounds_for_nets(budgets, [1, 7]) == {1: 2.0}

    def test_net_budget_validation(self):
        with pytest.raises(ValueError):
            NetBudget(net_id=0, lsk_budget=0.0, kth=1.0, sink_path_lengths_m=(1e-3,))
        with pytest.raises(ValueError):
            NetBudget(net_id=0, lsk_budget=1e-3, kth=0.0, sink_path_lengths_m=(1e-3,))

    def test_um_to_m_constant(self):
        assert UM_TO_M == pytest.approx(1e-6)
