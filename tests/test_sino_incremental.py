"""Tests for incremental delta-cost evaluation and multi-chain annealing.

The incremental state must be *exactly* the scalar oracle in disguise: the
randomized driver pushes hundreds of mixed moves through a state and checks
the maintained cost, the delta-accumulated cost and the compaction against
fresh scalar evaluations at every step, and the annealer equivalence tests
assert that the rewritten ``anneal_sino`` reproduces the historic
``anneal_sino_reference`` seed-for-seed.
"""

import numpy as np
import pytest

from repro.engine.backends import SerialBackend, ThreadBackend
from repro.engine.panels import Engine, PanelTask
from repro.engine.signature import panel_signature
from repro.sino.anneal import (
    ANNEAL_FAST_DIVISOR,
    EFFORT_LEVELS,
    AnnealConfig,
    anneal_sino,
    anneal_sino_multichain,
    anneal_sino_reference,
    derive_chain_seed,
    reduce_best_feasible,
    solution_cost,
    solve_min_area_sino,
)
from repro.sino.greedy import greedy_sino
from repro.sino.incremental import IncrementalPanelState, Move
from repro.sino.panel import SHIELD, SinoSolution

from tests.conftest import make_random_sino_problem


def _random_move(layout, rng):
    """One random structural move plus the equivalent list-level edit."""
    num_tracks = len(layout)
    shields = [index for index, entry in enumerate(layout) if entry is SHIELD]
    kind = int(rng.integers(0, 4))
    edited = list(layout)
    if kind == 0 and num_tracks >= 2:
        i, j = (int(v) for v in rng.choice(num_tracks, size=2, replace=False))
        edited[i], edited[j] = edited[j], edited[i]
        return Move.swap(i, j), edited
    if kind == 1 and shields:
        position = int(rng.choice(shields))
        gap = int(rng.integers(0, num_tracks))
        edited.pop(position)
        edited.insert(gap, SHIELD)
        return Move.relocate(position, gap), edited
    if kind == 2 and shields:
        position = int(rng.choice(shields))
        edited.pop(position)
        return Move.delete(position), edited
    gap = int(rng.integers(0, num_tracks + 1))
    edited.insert(gap, SHIELD)
    return Move.insert(gap), edited


class TestIncrementalState:
    def test_initial_cost_matches_solution_cost(self):
        problem = make_random_sino_problem(10, 0.5, 0.9, seed=3)
        config = AnnealConfig()
        solution = greedy_sino(problem)
        state = IncrementalPanelState(problem, solution.layout, config)
        assert state.cost == solution_cost(solution, config)
        assert state.num_shields == solution.num_shields
        assert state.num_tracks == solution.num_tracks
        assert state.to_layout() == solution.layout
        assert state.is_current_valid() == solution.is_valid()

    def test_randomized_moves_match_oracle_at_every_step(self):
        """500+ mixed moves: maintained and delta-accumulated costs track the oracle."""
        rng = np.random.default_rng(2024)
        for trial in range(4):
            problem = make_random_sino_problem(4 + trial * 4, 0.5, 0.9, seed=trial)
            config = AnnealConfig()
            solution = greedy_sino(problem)
            state = IncrementalPanelState(problem, solution.layout, config)
            layout = list(solution.layout)
            accumulated = state.cost
            for _step in range(150):
                move, edited = _random_move(layout, rng)
                delta = state.propose(move)
                fresh = solution_cost(
                    SinoSolution(problem=problem, layout=list(edited)), config
                )
                if rng.random() < 0.7:
                    state.commit()
                    layout = edited
                    accumulated += delta
                    # The maintained cost is the oracle's, bit for bit; the
                    # delta-accumulated running cost tracks it to 1e-9.
                    assert state.cost == fresh
                    assert accumulated == pytest.approx(fresh, abs=1e-9)
                    assert state.to_layout() == layout
                else:
                    state.revert()
                    assert state.to_layout() == layout

    def test_compacted_matches_reference_compact(self):
        rng = np.random.default_rng(77)
        problem = make_random_sino_problem(12, 0.6, 0.8, seed=9)
        config = AnnealConfig()
        solution = greedy_sino(problem)
        state = IncrementalPanelState(problem, solution.layout, config)
        layout = list(solution.layout)
        checked = 0
        for _step in range(120):
            move, edited = _random_move(layout, rng)
            state.propose(move)
            state.commit()
            layout = edited
            if _step % 10 == 0:
                reference = SinoSolution(problem=problem, layout=list(layout)).compact()
                compacted, cost, valid = state.compacted()
                assert compacted.layout == reference.layout
                assert cost == solution_cost(reference, config)
                assert valid == reference.is_valid()
                checked += 1
        assert checked >= 12

    def test_protocol_misuse_raises(self):
        problem = make_random_sino_problem(5, 0.4, 1.0, seed=1)
        state = IncrementalPanelState(problem, greedy_sino(problem).layout, AnnealConfig())
        with pytest.raises(RuntimeError):
            state.commit()
        with pytest.raises(RuntimeError):
            state.revert()
        state.propose(Move.insert(0))
        state.revert()
        with pytest.raises(RuntimeError):
            state.revert()

    def test_delete_requires_a_shield(self):
        problem = make_random_sino_problem(4, 0.0, 5.0, seed=0)
        layout = list(problem.segments)  # no shields at all
        state = IncrementalPanelState(problem, layout, AnnealConfig())
        with pytest.raises(ValueError):
            state.propose(Move.delete(0))

    def test_move_kind_validation(self):
        with pytest.raises(ValueError):
            Move(kind="teleport")


class TestAnnealEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 11])
    def test_incremental_reproduces_reference_seed_for_seed(self, seed):
        problem = make_random_sino_problem(6 + seed, 0.5, 0.9, seed=seed)
        config = AnnealConfig(iterations=500, seed=seed)
        fast = anneal_sino(problem, config=config)
        reference = anneal_sino_reference(problem, config=config)
        assert fast.layout == reference.layout

    def test_chains_one_reproduces_single_chain(self):
        problem = make_random_sino_problem(9, 0.5, 0.9, seed=4)
        config = AnnealConfig(iterations=400, seed=21, chains=1)
        single = anneal_sino(problem, config=config)
        multi = anneal_sino_multichain(problem, config=config)
        dispatched = solve_min_area_sino(problem, effort="anneal", config=config)
        assert multi.layout == single.layout
        assert dispatched.layout == single.layout

    def test_annealed_solution_is_valid_and_never_worse_than_greedy(self):
        problem = make_random_sino_problem(10, 0.5, 0.8, seed=13)
        greedy = greedy_sino(problem)
        annealed = solve_min_area_sino(
            problem, effort="anneal", config=AnnealConfig(iterations=600, seed=2)
        )
        assert annealed.is_valid()
        assert annealed.num_shields <= greedy.num_shields


class TestMultiChain:
    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = [derive_chain_seed(42, chain) for chain in range(6)]
        assert seeds[0] == 42  # chain 0 keeps the configured seed
        assert len(set(seeds)) == len(seeds)
        assert seeds == [derive_chain_seed(42, chain) for chain in range(6)]

    def test_backend_independence(self):
        problem = make_random_sino_problem(8, 0.5, 0.9, seed=6)
        config = AnnealConfig(iterations=300, seed=3, chains=3)
        serial = anneal_sino_multichain(problem, config=config, backend=SerialBackend())
        with ThreadBackend(workers=3) as backend:
            threaded = anneal_sino_multichain(problem, config=config, backend=backend)
        inline = anneal_sino_multichain(problem, config=config)
        assert serial.layout == threaded.layout == inline.layout

    def test_multichain_never_worse_than_chain_zero(self):
        problem = make_random_sino_problem(12, 0.5, 0.8, seed=8)
        single = anneal_sino(problem, config=AnnealConfig(iterations=400, seed=5))
        multi = anneal_sino_multichain(
            problem, config=AnnealConfig(iterations=400, seed=5, chains=4)
        )
        assert multi.is_valid() or not single.is_valid()
        if single.is_valid():
            assert multi.num_shields <= single.num_shields

    def test_reduce_best_feasible_prefers_valid_then_fewest_shields(self):
        problem = make_random_sino_problem(6, 0.5, 1.0, seed=2)
        config = AnnealConfig()
        valid = greedy_sino(problem)
        bare = SinoSolution(problem=problem, layout=list(problem.segments))
        if bare.is_valid():  # degenerate instance: nothing to distinguish
            pytest.skip("random instance has no violations to exercise")
        assert reduce_best_feasible([bare, valid], config) is valid
        assert reduce_best_feasible([valid, bare], config) is valid
        with pytest.raises(ValueError):
            reduce_best_feasible([], config)

    def test_chains_validation(self):
        with pytest.raises(ValueError):
            AnnealConfig(chains=0)


class TestEffortLevels:
    def test_effort_levels_constant(self):
        assert EFFORT_LEVELS == (
            "greedy",
            "anneal",
            "anneal-fast",
            "anneal-batched",
            "portfolio",
        )

    def test_anneal_fast_runs_quarter_schedule_and_stays_valid(self):
        problem = make_random_sino_problem(8, 0.5, 0.9, seed=10)
        config = AnnealConfig(iterations=400, seed=1)
        fast = solve_min_area_sino(problem, effort="anneal-fast", config=config)
        quarter = anneal_sino(
            problem,
            config=AnnealConfig(iterations=400 // ANNEAL_FAST_DIVISOR, seed=1),
        )
        assert fast.layout == quarter.layout
        assert fast.is_valid()

    def test_portfolio_never_worse_than_greedy(self):
        problem = make_random_sino_problem(10, 0.5, 0.8, seed=14)
        greedy = greedy_sino(problem)
        portfolio = solve_min_area_sino(
            problem,
            effort="portfolio",
            config=AnnealConfig(iterations=300, seed=4, chains=2),
        )
        assert portfolio.is_valid() or not greedy.is_valid()
        assert portfolio.num_shields <= greedy.num_shields

    def test_unknown_effort_rejected(self):
        problem = make_random_sino_problem(4, 0.3, 1.0, seed=0)
        with pytest.raises(ValueError):
            solve_min_area_sino(problem, effort="exhaustive")


class TestCacheKeys:
    def test_chains_enter_the_panel_signature(self):
        problem = make_random_sino_problem(6, 0.4, 1.0, seed=5)
        one = panel_signature(problem, "sino", "anneal", anneal=AnnealConfig(chains=1))
        four = panel_signature(problem, "sino", "anneal", anneal=AnnealConfig(chains=4))
        assert one != four

    def test_effort_levels_enter_the_panel_signature(self):
        problem = make_random_sino_problem(6, 0.4, 1.0, seed=5)
        signatures = {
            panel_signature(problem, "sino", effort) for effort in EFFORT_LEVELS
        }
        assert len(signatures) == len(EFFORT_LEVELS)

    def test_panel_task_validates_effort(self):
        problem = make_random_sino_problem(4, 0.3, 1.0, seed=1)
        with pytest.raises(ValueError):
            PanelTask(key=((0, 0), "h"), problem=problem, effort="thorough")

    def test_engine_caches_distinct_chain_counts_separately(self):
        from repro.engine.cache import SolutionCache

        problem = make_random_sino_problem(7, 0.5, 0.9, seed=7)
        engine = Engine(cache=SolutionCache())
        one = engine.solve_panel(
            problem, effort="anneal", anneal=AnnealConfig(iterations=200, chains=1)
        )
        four = engine.solve_panel(
            problem, effort="anneal", anneal=AnnealConfig(iterations=200, chains=4)
        )
        stats = engine.cache_stats()
        assert stats.misses == 2  # no stale hit between chain counts
        again = engine.solve_panel(
            problem, effort="anneal", anneal=AnnealConfig(iterations=200, chains=4)
        )
        assert engine.cache_stats().hits == 1
        assert again.layout == four.layout
        assert one.is_valid() and four.is_valid()
