"""Tests for the repro.service layer (store, queue, scheduler, daemon, cluster).

The warm-start tests enforce the subsystem's headline guarantee: a second
run over the same workload with the persistent store enabled performs
*zero* redundant panel solves — in-process with a fresh cache, across
daemon restarts, and across real CLI processes.  The cluster tests at the
bottom enforce the multi-worker guarantees: exactly-one claim winner under
contention, lease-expiry reclaim from dead workers only, and supervisor
restart of crashed fleet members.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import CacheStats, Engine, SolutionCache
from repro.engine.signature import SIGNATURE_VERSION
from repro.gsino.config import GsinoConfig
from repro.gsino.pipeline import compare_flows
from repro.service import (
    SCENARIO_NAMES,
    Job,
    JobQueue,
    ResultStore,
    Scheduler,
    ServiceConfig,
    ServiceDaemon,
    batch_compatible,
    gc_service,
    generate_scenario,
    request_cancel,
    scenario_spec,
    service_status,
    submit_job,
    wait_for_job,
)
from repro.service import (
    ClusterConfig,
    ClusterSupervisor,
    ClusterWorker,
    LeaseManager,
    WorkerConfig,
    WorkerIdentity,
    run_loadgen,
)
from repro.service.cluster import (
    active_leases,
    read_worker_heartbeats,
    worker_is_alive,
)
from repro.service.store import FORMAT_VERSION, evict_scanned_blobs, scan_blobs


def _smoke_tasks():
    return generate_scenario("smoke")


# -- ResultStore ---------------------------------------------------------------------


class TestResultStore:
    def test_round_trip_and_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        layout = (0, None, 1, None, 2)
        assert store.get_layout("ab" + "0" * 62) is None
        store.put_layout("ab" + "0" * 62, layout)
        assert store.get_layout("ab" + "0" * 62) == layout
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert len(store) == 1
        assert store.total_bytes() > 0

    def test_reopen_preserves_blobs(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).put_layout("cd" + "1" * 62, (3, None, 4))
        reopened = ResultStore(root)
        assert reopened.get_layout("cd" + "1" * 62) == (3, None, 4)

    def test_double_write_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_layout("ee" + "2" * 62, (1, 2))
        store.put_layout("ee" + "2" * 62, (1, 2))
        assert len(store) == 1

    @pytest.mark.parametrize(
        "payload",
        [
            "{not json",
            json.dumps(
                {"signature": "wrong", "signature_version": SIGNATURE_VERSION, "layout": [1]}
            ),
            json.dumps({"signature_version": SIGNATURE_VERSION, "layout": [1]}),
            json.dumps({"signature": None, "layout": "nope"}),
            json.dumps([1, 2, 3]),
        ],
    )
    def test_corrupted_blob_is_dropped_not_served(self, tmp_path, payload):
        store = ResultStore(tmp_path / "store")
        signature = "ff" + "3" * 62
        store.put_layout(signature, (5, None))
        store._blob_path(signature).write_text(payload)
        assert store.get_layout(signature) is None
        assert store.stats().corrupt_dropped == 1
        assert signature not in store  # the bad blob is gone from disk

    def test_bad_layout_entries_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signature = "aa" + "4" * 62
        path = store._blob_path(signature)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "signature": signature,
                    "signature_version": SIGNATURE_VERSION,
                    "layout": [1, "shield", 2],
                }
            )
        )
        assert store.get_layout(signature) is None
        assert store.stats().corrupt_dropped == 1

    def test_signature_version_mismatch_clears_store(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        store.put_layout("bb" + "5" * 62, (7,))
        meta = json.loads((root / "store.json").read_text())
        assert meta == {
            "format_version": FORMAT_VERSION,
            "signature_version": SIGNATURE_VERSION,
        }
        meta["signature_version"] = SIGNATURE_VERSION - 1
        (root / "store.json").write_text(json.dumps(meta))
        reopened = ResultStore(root)
        assert len(reopened) == 0
        assert reopened.stats().evictions == 1
        # The metadata was rewritten to the current versions.
        assert json.loads((root / "store.json").read_text())["signature_version"] == (
            SIGNATURE_VERSION
        )

    def test_lru_eviction_by_size(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signatures = [f"{i:02d}" + "6" * 62 for i in range(4)]
        for index, signature in enumerate(signatures):
            store.put_layout(signature, tuple(range(8)))
            os.utime(store._blob_path(signature), (1000 + index, 1000 + index))
        blob_size = store.total_bytes() // 4
        evicted = store.gc(max_bytes=2 * blob_size)
        assert evicted == 2
        assert store.signatures() == sorted(signatures[2:])  # the two oldest went

    def test_hit_refreshes_lru_clock(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signatures = [f"{i:02d}" + "7" * 62 for i in range(3)]
        for index, signature in enumerate(signatures):
            store.put_layout(signature, (index,))
            os.utime(store._blob_path(signature), (2000 + index, 2000 + index))
        assert store.get_layout(signatures[0]) is not None  # oldest becomes newest
        blob_size = store.total_bytes() // 3
        store.gc(max_bytes=2 * blob_size)
        assert signatures[0] in store
        assert signatures[1] not in store

    def test_write_cap_triggers_eviction(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=1)
        store.put_layout("cc" + "8" * 62, (1, 2, 3))
        store.put_layout("dd" + "8" * 62, (4, 5, 6))
        assert len(store) <= 1
        assert store.stats().evictions >= 1


# -- two-tier SolutionCache ----------------------------------------------------------


class TestTieredCache:
    def test_store_hit_promotes_and_counts(self, tmp_path, random_sino_problem):
        problem = random_sino_problem(5, 0.4, 2.0, seed=3)
        store = ResultStore(tmp_path / "store")
        first = SolutionCache(store=store)
        engine = Engine(cache=first)
        solution = engine.solve_panel(problem)
        assert first.stats() == CacheStats(misses=1)

        second = SolutionCache(store=store)  # fresh process, same store
        warm = Engine(cache=second)
        served = warm.solve_panel(problem)
        assert served.layout == solution.layout
        assert second.stats() == CacheStats(store_hits=1)
        # Promoted into memory: the next lookup never touches the disk.
        warm.solve_panel(problem)
        assert second.stats() == CacheStats(hits=1, store_hits=1)

    def test_poisoned_blob_becomes_a_miss_and_is_dropped(
        self, tmp_path, random_sino_problem
    ):
        """A blob valid in shape but wrong in content must never crash a hit."""
        problem = random_sino_problem(5, 0.4, 2.0, seed=3)
        store = ResultStore(tmp_path / "store")
        engine = Engine(cache=SolutionCache(store=store))
        engine.solve_panel(problem)
        signature = store.signatures()[0]
        blob_path = store._blob_path(signature)
        payload = json.loads(blob_path.read_text())
        payload["layout"] = [97, 98, 99]  # valid ints, wrong segments
        blob_path.write_text(json.dumps(payload))

        warm = Engine(cache=SolutionCache(store=store))
        solution = warm.solve_panel(problem)  # re-solves instead of crashing
        assert sorted(s for s in solution.layout if s is not None) == sorted(
            problem.segments
        )
        stats = warm.cache.stats()
        assert stats.misses == 1 and stats.store_hits == 0
        assert store.stats().corrupt_dropped == 1
        # The solve's write-through replaced the poisoned blob with a good one.
        fresh = SolutionCache(store=store)
        assert Engine(cache=fresh).solve_panel(problem).layout == solution.layout
        assert fresh.stats().store_hits == 1

    def test_cache_stats_tiers(self):
        stats = CacheStats(hits=2, misses=1, store_hits=3)
        assert stats.lookups == 6
        assert stats.hit_rate == pytest.approx(5 / 6)
        delta = stats - CacheStats(hits=1, store_hits=1)
        assert delta == CacheStats(hits=1, misses=1, store_hits=2)
        assert "from disk" in str(stats)
        assert "from disk" not in str(CacheStats(hits=2, misses=1))


# -- queue ---------------------------------------------------------------------------


class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue()
        for job_id, priority in (("a", 0), ("b", 5), ("c", 5), ("d", 1)):
            queue.submit(Job(job_id=job_id, scenario="smoke", priority=priority))
        assert [queue.pop().job_id for _ in range(4)] == ["b", "c", "d", "a"]
        assert queue.pop() is None

    def test_cancel_queued_job_never_runs(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke"))
        queue.submit(Job(job_id="y", scenario="smoke"))
        assert queue.cancel("x") is True
        assert queue.get("x").status == "cancelled"
        assert queue.pop().job_id == "y"
        assert queue.pop() is None

    def test_cancel_running_job_sets_flag(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke"))
        job = queue.pop()
        assert queue.cancel("x") is True
        assert job.status == "running" and job.cancel_requested
        queue.finish(job)
        assert job.status == "cancelled"
        assert queue.cancel("x") is False  # terminal

    def test_retry_until_attempts_exhausted(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke", max_attempts=2))
        job = queue.pop()
        queue.fail(job, "boom 1")
        assert job.status == "queued" and job.attempts == 1
        job = queue.pop()
        assert job.attempts == 2
        queue.fail(job, "boom 2")
        assert job.status == "failed"
        assert job.error == "boom 2"
        assert queue.pop() is None

    def test_duplicate_active_id_rejected(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke"))
        with pytest.raises(ValueError, match="already active"):
            queue.submit(Job(job_id="x", scenario="smoke"))

    def test_job_record_round_trip(self):
        job = Job(job_id="j", scenario="smoke", params={"seed": 4}, priority=3)
        assert Job.from_dict(job.to_dict()) == job
        job.cancel_requested = True  # mid-run cancels survive the spool
        assert Job.from_dict(job.to_dict()).cancel_requested is True

    def test_prune_terminal_forgets_finished_jobs(self):
        queue = JobQueue()
        queue.submit(Job(job_id="a", scenario="smoke"))
        queue.submit(Job(job_id="b", scenario="smoke"))
        job = queue.pop()
        queue.finish(job)
        assert queue.prune_terminal() == 1
        assert queue.get("a") is None
        assert queue.get("b") is not None  # still queued
        assert queue.pop().job_id == "b"  # stale heap entries are harmless


# -- scenarios -----------------------------------------------------------------------


class TestScenarios:
    def test_registry_lists_builtins(self):
        assert "smoke" in SCENARIO_NAMES and "dense-bus" in SCENARIO_NAMES

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_scenario_generates_deterministically(self, name):
        from repro.service.scenarios import scenario_kind

        if scenario_kind(name) == "flow":
            # Flow scenarios run through the stage-graph runner, never the
            # panel-task generator (covered in tests/test_flow.py).
            with pytest.raises(ValueError, match="flow scenario"):
                generate_scenario(name)
            return
        first = generate_scenario(name)
        second = generate_scenario(name)
        assert [task.signature() for task in first] == [task.signature() for task in second]
        assert len(first) == scenario_spec(name).panels
        assert len({task.key for task in first}) == len(first)

    def test_param_overrides_change_signatures(self):
        base = generate_scenario("smoke")
        reseeded = generate_scenario("smoke", {"seed": 99})
        assert {t.signature() for t in base}.isdisjoint(t.signature() for t in reseeded)
        assert len(generate_scenario("smoke", {"panels": 5})) == 5

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario parameter"):
            generate_scenario("smoke", {"frobnicate": 1})
        with pytest.raises(KeyError, match="unknown scenario"):
            generate_scenario("no-such-scenario")

    def test_mistyped_parameter_values_rejected(self):
        """Bad values must fail at submit validation, not inside the daemon."""
        with pytest.raises(ValueError, match="must be an integer"):
            scenario_spec("smoke").with_params({"seed": "abc"})
        with pytest.raises(ValueError, match="must be an integer"):
            scenario_spec("smoke").with_params({"panels": 2.5})
        with pytest.raises(ValueError, match="must be a number"):
            scenario_spec("smoke").with_params({"sensitivity_rate": "high"})
        with pytest.raises(ValueError, match="must be a string"):
            scenario_spec("smoke").with_params({"effort": 3})
        with pytest.raises(ValueError, match="does not accept"):
            scenario_spec("smoke").with_params({"panels": True})
        # Well-typed overrides still work, ints upgrading float fields.
        assert scenario_spec("smoke").with_params({"sensitivity_rate": 1}).sensitivity_rate == 1.0

    def test_technology_scales_bounds(self):
        tight = generate_scenario("node-70nm")[0].problem
        loose = generate_scenario("node-130nm", {"seed": scenario_spec("node-70nm").seed})[0]
        # Same seed, same structure; only the Vdd-proportional bound scale differs.
        ratio = loose.problem.default_kth / tight.default_kth
        assert ratio == pytest.approx(1.2 / 0.9)


# -- scheduler -----------------------------------------------------------------------


class TestScheduler:
    def test_executes_job_and_records_outcome(self):
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke"))
        scheduler = Scheduler(queue, Engine(cache=SolutionCache()))
        job = scheduler.run_once()
        assert job.status == "done"
        assert job.result["panels"] == len(_smoke_tasks())
        assert job.result["valid_panels"] == job.result["panels"]
        assert job.result["cache"]["misses"] == job.result["panels"]
        assert scheduler.run_once() is None

    def test_batches_group_by_solver_and_effort(self):
        tasks = generate_scenario("smoke") + generate_scenario(
            "ordering-baseline", {"panels": 2}
        )
        batches = batch_compatible(tasks)
        assert [len(batch) for batch in batches] == [3, 2]
        assert {(t.solver, t.effort) for t in batches[0]} == {("sino", "greedy")}
        assert {(t.solver, t.effort) for t in batches[1]} == {("ordering", "greedy")}

    def test_batch_size_bounds_homogeneous_jobs(self):
        """A one-effort job must still get multiple batch boundaries."""
        tasks = generate_scenario("mixed-width")  # 10 panels, one (solver, effort)
        batches = batch_compatible(tasks, max_size=4)
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert [task for batch in batches for task in batch] == tasks
        with pytest.raises(ValueError, match="max_size"):
            batch_compatible(tasks, max_size=0)

    def test_long_job_heartbeats_between_batches(self, tmp_path):
        """_on_batch fires once per sub-batch, not once per job."""
        root = tmp_path / "svc"
        submit_job(root, "mixed-width")  # 10 homogeneous panels
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.scheduler.batch_size = 4
        pulses = []
        daemon.scheduler.on_batch = lambda job: pulses.append(job.job_id)
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert len(pulses) == 3

    def test_failure_retries_then_succeeds(self, monkeypatch):
        import repro.service.scheduler as scheduler_module

        calls = {"count": 0}
        real = scheduler_module.generate_scenario

        def flaky(name, params=None):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient failure")
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", flaky)
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke", max_attempts=2))
        scheduler = Scheduler(queue)
        first = scheduler.run_once()
        assert first.status == "queued" and "transient failure" in first.error
        second = scheduler.run_once()
        assert second.status == "done" and second.attempts == 2

    def test_failure_exhausts_attempts(self, monkeypatch):
        import repro.service.scheduler as scheduler_module

        def always_broken(name, params=None):
            raise RuntimeError("permanently broken")

        monkeypatch.setattr(scheduler_module, "generate_scenario", always_broken)
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke", max_attempts=2))
        finished = Scheduler(queue).drain()
        assert len(finished) == 2  # both attempts were claimed and ran
        assert queue.get("j").status == "failed"
        assert queue.get("j").attempts == 2
        assert "permanently broken" in queue.get("j").error

    def test_cancellation_between_batches(self):
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke"))
        scheduler = Scheduler(queue)
        job = queue.get("j")
        job.cancel_requested = True
        scheduler.run_once()
        assert job.status == "cancelled"
        assert job.result["batches"] == 0  # no batch was dispatched


# -- daemon + spool ------------------------------------------------------------------


class TestDaemon:
    def test_submit_run_status_roundtrip(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", priority=1)
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.run(max_jobs=1, idle_exit=0.05) == 1
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "done"
        report = service_status(root)
        assert report["jobs"]["counts"] == {"done": 1}
        assert report["store"]["entries"] == len(_smoke_tasks())
        assert report["cache_totals"]["misses"] == len(_smoke_tasks())
        heartbeat = report["daemon"]["heartbeat"]
        assert heartbeat["jobs_done"] == 1 and heartbeat["pid"] == os.getpid()
        # A cleanly exited daemon must not read as alive, however fresh the
        # final heartbeat is.
        assert report["daemon"]["alive"] is False

    def test_submit_validates_scenario_before_writing(self, tmp_path):
        root = tmp_path / "svc"
        with pytest.raises(KeyError):
            submit_job(root, "no-such-scenario")
        with pytest.raises(ValueError):
            submit_job(root, "smoke", params={"bogus": 1})
        assert not (root / "jobs").exists() or not list((root / "jobs").glob("*.json"))

    def test_cancel_of_finished_job_is_refused(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "done"
        assert request_cancel(root, job.job_id) is False
        assert not (root / "jobs" / f"{job.job_id}.cancel").exists()

    def test_cancel_marker_cancels_queued_job(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        assert request_cancel(root, job.job_id) is True
        assert request_cancel(root, "missing-job") is False
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        # The cancel-before-claim job counts toward --max-jobs: a daemon
        # bounded to one job must exit immediately; hitting the idle-exit
        # backstop instead (returning 0) is the regression this guards.
        assert daemon.run(max_jobs=1, idle_exit=5.0) == 1
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "cancelled"
        assert daemon.jobs_cancelled == 1
        assert daemon.queue.jobs() == []  # pruned despite never being claimed

    def test_running_record_persisted_before_execution(self, tmp_path, monkeypatch):
        """max_attempts must bind across crashes: the claim is durable."""
        import repro.service.scheduler as scheduler_module

        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        observed = {}
        real = scheduler_module.generate_scenario

        def probing(name, params=None):
            observed.update(
                json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
            )
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", probing)
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        # While the job executed, its spool record already said so.
        assert observed["status"] == "running"
        assert observed["attempts"] == 1

    def test_cancel_marker_honoured_mid_job(self, tmp_path, monkeypatch):
        """A cancel arriving while the job runs lands at the next batch."""
        import repro.service.scheduler as scheduler_module

        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        real = scheduler_module.generate_scenario

        def cancelling(name, params=None):
            request_cancel(root, job.job_id)  # arrives mid-execution
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", cancelling)
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "cancelled"
        assert finished.result["batches"] == 0

    def test_status_is_a_pure_read(self, tmp_path):
        """`repro status` must never rewrite or clear a live store."""
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        store_meta = root / "store" / "store.json"
        # Simulate a store written by a *newer* signature scheme.
        meta = json.loads(store_meta.read_text())
        meta["signature_version"] = SIGNATURE_VERSION + 1
        store_meta.write_text(json.dumps(meta))
        before = sorted((root / "store" / "blobs").glob("*/*.json"))
        report = service_status(root)
        assert report["store"]["entries"] == len(before) > 0
        assert sorted((root / "store" / "blobs").glob("*/*.json")) == before
        assert json.loads(store_meta.read_text())["signature_version"] == (
            SIGNATURE_VERSION + 1
        )  # metadata untouched

    def test_crashed_running_job_is_requeued(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        record["status"] = "running"  # a previous daemon died mid-execution
        record["attempts"] = 1
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(record))
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "done"
        assert finished.attempts == 2

    def test_mid_run_cancel_survives_daemon_crash(self, tmp_path):
        """A cancel consumed right before a crash still kills the retry."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = root / "jobs" / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        # The crashed daemon had claimed the job and persisted the cancel.
        record.update(status="running", attempts=1, cancel_requested=True)
        path.write_text(json.dumps(record))
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "cancelled"
        assert finished.result["batches"] == 0

    def test_terminal_jobs_are_pruned_from_memory(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "done"
        # The spool record is the history; the daemon itself forgets the job.
        assert daemon.queue.get(job.job_id) is None
        assert daemon.queue.jobs() == []

    def test_poison_job_fails_after_attempts_exhausted(self, tmp_path):
        """A job that crashes the daemon cannot crash-loop forever."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", max_attempts=2)
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        record["status"] = "running"
        record["attempts"] = 2  # every allowed attempt already died
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(record))
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        # Nothing runs, but the failed-by-recovery job still counts as
        # finished work (a --max-jobs daemon must not spin on it).
        assert daemon.run(max_jobs=1, idle_exit=5.0) == 1
        failed = wait_for_job(root, job.job_id, timeout=5.0)
        assert failed.status == "failed"
        assert "daemon died" in failed.error
        assert daemon.jobs_failed == 1

    def test_cancel_marker_survives_submit_race(self, tmp_path):
        """A marker seen before its job record is loaded must not be lost."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        assert request_cancel(root, job.job_id) is True
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        marker = root / "jobs" / f"{job.job_id}.cancel"
        # Marker processed while the queue has never seen the job (the
        # submit/cancel race): it must be left in place, not swallowed.
        daemon._consume_cancel_marker(marker)
        assert marker.exists()
        daemon.poll_spool()  # record loads first, then the marker lands
        assert not marker.exists()
        assert daemon.queue.get(job.job_id).status == "cancelled"

    def test_running_job_of_live_sibling_daemon_is_not_stolen(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = root / "jobs" / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        record.update(status="running", attempts=1)
        path.write_text(json.dumps(record))
        # A *fresh* heartbeat from another pid: that daemon owns the job.
        (root / "service.json").write_text(
            json.dumps(
                {"pid": os.getpid() + 1, "updated_at": time.time(), "stopped": False}
            )
        )
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.poll_spool() == 0
        assert daemon.queue.get(job.job_id) is None  # left alone
        assert json.loads(path.read_text())["status"] == "running"

    def test_stale_sibling_heartbeat_allows_recovery(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = root / "jobs" / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        record.update(status="running", attempts=1)
        path.write_text(json.dumps(record))
        (root / "service.json").write_text(
            json.dumps(
                {"pid": os.getpid() + 1, "updated_at": time.time() - 3600, "stopped": False}
            )
        )
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "done"

    def test_job_id_reuse_after_purge_is_executed(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke", job_id="nightly")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert wait_for_job(root, "nightly", timeout=5.0).status == "done"
        gc_service(root, purge_jobs=True)
        # Same id, fresh record: the (still-running) daemon must notice the
        # rewritten file rather than skipping the id from memory forever.
        submit_job(root, "smoke", job_id="nightly", params={"seed": 9})
        assert daemon.poll_spool() == 1
        assert daemon.queue.get("nightly").status == "queued"

    def test_priority_orders_execution(self, tmp_path):
        root = tmp_path / "svc"
        low = submit_job(root, "smoke", priority=0)
        high = submit_job(root, "smoke", priority=9)
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.poll_spool()
        assert daemon.queue.pop().job_id == high.job_id
        assert daemon.queue.pop().job_id == low.job_id

    def test_gc_purges_jobs_and_evicts_store(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        report = gc_service(root, max_bytes=1, purge_jobs=True)
        assert report["purged_jobs"] == 1
        assert report["evicted_blobs"] == len(_smoke_tasks())
        assert service_status(root)["jobs"]["counts"] == {}

    def test_gc_never_opens_the_store(self, tmp_path):
        """`repro gc` from a foreign checkout must not version-clear blobs."""
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        meta_path = root / "store" / "store.json"
        meta = json.loads(meta_path.read_text())
        meta["signature_version"] = SIGNATURE_VERSION + 1  # a newer daemon's store
        meta_path.write_text(json.dumps(meta))
        before = sorted((root / "store" / "blobs").glob("*/*.json"))
        report = gc_service(root, purge_jobs=True)  # no size cap: no eviction
        assert report["evicted_blobs"] == 0
        assert sorted((root / "store" / "blobs").glob("*/*.json")) == before
        assert json.loads(meta_path.read_text()) == meta  # metadata untouched


# -- warm start across processes (the acceptance criterion) --------------------------


class TestWarmStart:
    def test_daemon_restart_serves_from_store(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        job = submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        cache = finished.result["cache"]
        assert cache["misses"] == 0
        assert cache["store_hits"] == len(_smoke_tasks())

    def test_compare_flows_second_run_solves_nothing(self, tmp_path, small_circuit):
        """A repeated comparison with the store performs zero redundant solves."""
        config = GsinoConfig(length_scale=1.0 / (0.015**0.5))
        store_root = tmp_path / "store"

        cold_engine = Engine(cache=SolutionCache(store=ResultStore(store_root)))
        cold = compare_flows(
            small_circuit.grid, small_circuit.netlist, config, engine=cold_engine
        )
        cold_stats = cold_engine.cache_stats()
        assert cold_stats.misses > 0 and cold_stats.store_hits == 0

        # Fresh engine + fresh memory cache on the same store = a new process.
        warm_engine = Engine(cache=SolutionCache(store=ResultStore(store_root)))
        warm = compare_flows(
            small_circuit.grid, small_circuit.netlist, config, engine=warm_engine
        )
        warm_stats = warm_engine.cache_stats()
        assert warm_stats.misses == 0, "second run must not solve any panel"
        assert warm_stats.store_hits > 0
        for flow in ("id_no", "isino", "gsino"):
            assert warm[flow].metrics.crosstalk.num_violations == (
                cold[flow].metrics.crosstalk.num_violations
            )
            assert warm[flow].panels.keys() == cold[flow].panels.keys()
            for key in warm[flow].panels:
                assert warm[flow].panels[key].layout == cold[flow].panels[key].layout

    def test_cli_cross_process_warm_start(self, tmp_path):
        """Two real `repro compare --store` processes: the second is all disk hits."""
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "compare",
            "--circuit",
            "ibm01",
            "--rate",
            "0.3",
            "--scale",
            "0.01",
            "--seed",
            "3",
            "--store",
            str(tmp_path / "store"),
        ]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        first = subprocess.run(command, capture_output=True, text=True, env=env, check=True)
        assert "cold solves" in first.stdout
        second = subprocess.run(command, capture_output=True, text=True, env=env, check=True)
        assert "zero redundant solves" in second.stdout
        assert "0 misses" in second.stdout

    def test_sweep_runner_targets_service_store(self, tmp_path):
        """run_table_suite warm-starts across processes via store_path."""
        from repro.analysis.experiments import ExperimentConfig, run_table_suite

        config = ExperimentConfig(
            circuits=("ibm01",),
            sensitivity_rates=(0.3,),
            scale=0.01,
            seed=3,
            store_path=tmp_path / "store",
        )
        run_table_suite(config)
        warm = run_table_suite(config)  # fresh engines per instance, same store
        for comparison in warm:
            for flow in comparison.flows.values():
                assert flow.cache_stats is not None
                assert flow.cache_stats.misses == 0

    def test_store_path_requires_cache(self, tmp_path):
        from repro.analysis.experiments import ExperimentConfig

        with pytest.raises(ValueError, match="store_path requires use_cache"):
            ExperimentConfig(use_cache=False, store_path=tmp_path / "store")


# -- cluster: leases, heartbeats, reclaim --------------------------------------------


def _worker_heartbeat_path(root: Path, worker_id: str) -> Path:
    return root / "workers" / f"{worker_id}.json"


def _write_stale_heartbeat(root: Path, worker_id: str, age: float = 3600.0) -> None:
    (root / "workers").mkdir(parents=True, exist_ok=True)
    _worker_heartbeat_path(root, worker_id).write_text(
        json.dumps(
            {
                "worker_id": worker_id,
                "pid": 999999,
                "updated_at": time.time() - age,
                "poll_interval": 0.1,
                "stopped": False,
            }
        )
    )


def _manager(root: Path, label: str, ttl: float = 5.0) -> LeaseManager:
    return LeaseManager(root, WorkerIdentity.create(label), lease_ttl=ttl)


class TestLeaseManager:
    def test_two_threads_claim_exactly_one_wins(self, tmp_path):
        """The rename is the tie-break: of N racing claimers, one wins."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        managers = [_manager(root, f"t{i}") for i in range(4)]
        barrier = threading.Barrier(len(managers))
        wins: list = []

        def racer(manager):
            barrier.wait()
            claimed = manager.claim(job.job_id)
            if claimed is not None:
                wins.append((manager.identity.worker_id, claimed))

        threads = [threading.Thread(target=racer, args=(m,)) for m in managers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        winner_id, claimed = wins[0]
        assert claimed.status == "running" and claimed.attempts == 1
        assert claimed.executions[0]["worker"] == winner_id
        # The record moved: gone from the spool, present as the winner's lease.
        assert not (root / "jobs" / f"{job.job_id}.json").exists()
        lease = json.loads(
            (root / "leases" / winner_id / f"{job.job_id}.json").read_text()
        )
        assert lease["worker_id"] == winner_id
        assert lease["job"]["status"] == "running"

    def test_release_writes_terminal_record_and_drops_lease(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        manager = _manager(root, "a")
        claimed = manager.claim(job.job_id)
        claimed.status = "done"
        manager.release(claimed)
        assert not manager.lease_path(job.job_id).exists()
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "done" and record["attempts"] == 1

    def test_lease_expiry_reclaim_requeues_with_attempts_preserved(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        dead = _manager(root, "dead", ttl=1.0)
        claimed = dead.claim(job.job_id)
        assert claimed is not None
        # The owner died: its heartbeat goes stale, its lease mtime ages out.
        _write_stale_heartbeat(root, dead.identity.worker_id)
        old = time.time() - 60
        os.utime(dead.lease_path(job.job_id), (old, old))
        peer = _manager(root, "peer")
        assert peer.reclaim_expired() == 1
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "queued"
        assert record["attempts"] == 1  # the lost attempt still counts
        assert len(record["executions"]) == 1  # the lost claim stays on the audit trail
        assert "finished_at" not in record["executions"][0]
        assert not dead.lease_path(job.job_id).exists()

    def test_fresh_heartbeat_blocks_reclaim(self, tmp_path):
        """A slow worker with a live heartbeat keeps its lease, however old."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        slow = _manager(root, "slow", ttl=1.0)
        slow.claim(job.job_id)
        old = time.time() - 60
        os.utime(slow.lease_path(job.job_id), (old, old))
        (root / "workers").mkdir(exist_ok=True)
        _worker_heartbeat_path(root, slow.identity.worker_id).write_text(
            json.dumps(
                {
                    "worker_id": slow.identity.worker_id,
                    "updated_at": time.time(),
                    "poll_interval": 0.1,
                    "stopped": False,
                }
            )
        )
        peer = _manager(root, "peer")
        assert peer.reclaim_expired() == 0
        assert slow.lease_path(job.job_id).exists()

    def test_unexpired_lease_is_not_reclaimed(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        owner = _manager(root, "owner", ttl=3600.0)
        owner.claim(job.job_id)
        _write_stale_heartbeat(root, owner.identity.worker_id)  # dead, but TTL holds
        peer = _manager(root, "peer")
        assert peer.reclaim_expired() == 0

    def test_reclaim_fails_job_when_attempts_exhausted(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", max_attempts=1)
        dead = _manager(root, "dead", ttl=1.0)
        dead.claim(job.job_id)
        _write_stale_heartbeat(root, dead.identity.worker_id)
        old = time.time() - 60
        os.utime(dead.lease_path(job.job_id), (old, old))
        peer = _manager(root, "peer")
        assert peer.reclaim_expired() == 1
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "failed"
        assert "died during attempt 1/1" in record["error"]

    def test_reclaim_drops_lease_when_spool_record_exists(self, tmp_path):
        """A release that crashed between its two steps must not duplicate."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        dead = _manager(root, "dead", ttl=1.0)
        claimed = dead.claim(job.job_id)
        # Simulate the crash window: terminal record written, lease not yet
        # removed, owner gone.
        claimed.status = "done"
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(claimed.to_dict()))
        _write_stale_heartbeat(root, dead.identity.worker_id)
        old = time.time() - 60
        os.utime(dead.lease_path(job.job_id), (old, old))
        peer = _manager(root, "peer")
        assert peer.reclaim_expired() == 0  # nothing requeued...
        assert not dead.lease_path(job.job_id).exists()  # ...stale lease dropped
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "done"  # the spool stayed authoritative

    def test_cancelled_lease_reclaims_to_cancelled(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        dead = _manager(root, "dead", ttl=1.0)
        claimed = dead.claim(job.job_id)
        claimed.cancel_requested = True
        dead.write_lease(claimed)
        _write_stale_heartbeat(root, dead.identity.worker_id)
        old = time.time() - 60
        os.utime(dead.lease_path(job.job_id), (old, old))
        assert _manager(root, "peer").reclaim_expired() == 1
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "cancelled"

    def test_heartbeat_staleness_detection(self):
        now = time.time()
        assert worker_is_alive({"updated_at": now, "poll_interval": 0.1, "stopped": False})
        assert not worker_is_alive({"updated_at": now, "stopped": True})
        assert not worker_is_alive({"updated_at": now - 3600, "stopped": False})
        # The threshold scales with the poll interval of a slow worker.
        assert worker_is_alive({"updated_at": now - 20, "poll_interval": 10.0})
        assert not worker_is_alive({"updated_at": now - 40, "poll_interval": 10.0})


# -- cluster: worker loop -------------------------------------------------------------


class TestClusterWorker:
    def _worker(self, root, **overrides) -> ClusterWorker:
        config = dict(root=root, poll_interval=0.02, lease_ttl=5.0)
        config.update(overrides)
        return ClusterWorker(WorkerConfig(**config))

    def test_worker_serves_jobs_exactly_once(self, tmp_path):
        root = tmp_path / "svc"
        for index in range(2):
            submit_job(root, "smoke", params={"seed": 50 + index})
        worker = self._worker(root)
        assert worker.run(max_jobs=2, idle_exit=0.1) == 2
        records = [json.loads(p.read_text()) for p in sorted((root / "jobs").glob("*.json"))]
        assert [r["status"] for r in records] == ["done", "done"]
        assert all(len(r["executions"]) == 1 for r in records)
        assert all(
            r["executions"][0]["worker"] == worker.identity.worker_id for r in records
        )
        heartbeat = read_worker_heartbeats(root)[worker.identity.worker_id]
        assert heartbeat["jobs_done"] == 2 and heartbeat["stopped"] is True
        assert not worker_is_alive(heartbeat)  # clean exit is never "alive"

    def test_two_inprocess_workers_share_one_spool(self, tmp_path):
        """Two concurrent workers drain one burst with zero double-claims."""
        root = tmp_path / "svc"
        for index in range(6):
            submit_job(root, "smoke", params={"seed": 70 + index})
        workers = [self._worker(root, label=f"w{i}") for i in range(2)]
        threads = [
            threading.Thread(target=worker.run, kwargs={"idle_exit": 0.3})
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = [json.loads(p.read_text()) for p in sorted((root / "jobs").glob("*.json"))]
        assert len(records) == 6
        assert all(r["status"] == "done" for r in records)
        assert all(len(r["executions"]) == 1 for r in records), "a job was double-claimed"
        assert sum(worker.jobs_done for worker in workers) == 6

    def test_worker_respects_priority_order(self, tmp_path):
        root = tmp_path / "svc"
        low = submit_job(root, "smoke", priority=0)
        high = submit_job(root, "smoke", priority=9, params={"seed": 3})
        worker = self._worker(root)
        first = worker.step()
        assert first.job_id == high.job_id
        assert worker.step().job_id == low.job_id

    def test_worker_cancels_marked_queued_job_without_executing(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        assert request_cancel(root, job.job_id) is True
        worker = self._worker(root)
        finished = worker.step()
        assert finished.status == "cancelled"
        assert finished.result is None  # nothing was dispatched
        assert worker.jobs_cancelled == 1
        assert not (root / "jobs" / f"{job.job_id}.cancel").exists()

    def test_cancel_reaches_leased_job(self, tmp_path):
        """request_cancel finds a job whose record lives under a lease."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        manager = _manager(root, "holder")
        claimed = manager.claim(job.job_id)
        assert claimed is not None
        assert request_cancel(root, job.job_id) is True
        assert (root / "jobs" / f"{job.job_id}.cancel").exists()
        assert request_cancel(root, "never-existed") is False

    def test_worker_retries_failed_execution_via_spool(self, tmp_path, monkeypatch):
        import repro.service.scheduler as scheduler_module

        calls = {"count": 0}
        real = scheduler_module.generate_scenario

        def flaky(name, params=None):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient cluster failure")
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", flaky)
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", max_attempts=2)
        worker = self._worker(root)
        first = worker.step()  # fails, released back to the spool as queued
        assert first.status == "queued" and "transient" in first.error
        second = worker.step()  # any worker may pick the retry up
        assert second.status == "done" and second.attempts == 2
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert len(record["executions"]) == 2

    def test_worker_idle_exit_rechecks_spool(self, tmp_path, monkeypatch):
        """A submission landing during the final sleep is served, not lost."""
        root = tmp_path / "svc"
        worker = self._worker(root)
        real_claim = worker._claim_next
        raced = {"submitted": False}

        def claim_with_late_submission():
            job = real_claim()
            if job is None and not raced["submitted"]:
                # The cycle's spool scan found nothing; the submission lands
                # now — after the scan, before the idle-deadline check.
                raced["submitted"] = True
                submit_job(root, "smoke")
            return job

        monkeypatch.setattr(worker, "_claim_next", claim_with_late_submission)
        # idle_exit=0: the deadline fires on the very first idle cycle, so
        # only the final spool re-check can see the racing submission.
        assert worker.run(max_jobs=1, idle_exit=0.0) == 1

    def test_status_reports_leased_job_as_running(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        _manager(root, "holder").claim(job.job_id)
        report = service_status(root)
        assert report["jobs"]["counts"] == {"running": 1}
        assert report["cluster"] is not None
        leases = report["cluster"]["leases"]
        assert len(leases) == 1 and leases[0]["job_id"] == job.job_id
        assert active_leases(root)[0]["attempts"] == 1


# -- cluster: supervisor --------------------------------------------------------------


class TestClusterSupervisor:
    def _config(self, root, **overrides) -> ClusterConfig:
        config = dict(root=root, workers=1, poll_interval=0.05, lease_ttl=5.0)
        config.update(overrides)
        return ClusterConfig(**config)

    def test_supervisor_restarts_dead_worker(self, tmp_path):
        supervisor = ClusterSupervisor(self._config(tmp_path / "svc"))
        supervisor.start()
        try:
            assert supervisor.wait_alive(timeout=60.0)
            first_pid = supervisor.worker_pids()[0]
            os.kill(first_pid, 9)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                alive = supervisor.poll()
                pids = supervisor.worker_pids()
                if alive == 1 and pids and pids[0] != first_pid:
                    break
                time.sleep(0.05)
            assert supervisor.restarts == 1
            assert supervisor.worker_pids()[0] != first_pid
        finally:
            supervisor.stop()

    def test_supervised_fleet_serves_a_burst(self, tmp_path):
        root = tmp_path / "svc"
        supervisor = ClusterSupervisor(self._config(root, workers=2))
        supervisor.start()
        try:
            assert supervisor.wait_alive(timeout=60.0)
            report = run_loadgen(root, "smoke", jobs=4, timeout=60.0, poll=0.05)
        finally:
            supervisor.stop()
        assert report.done == 4 and report.timed_out == 0
        assert report.throughput > 0
        assert report.latency_percentile(0.5) is not None
        records = [json.loads(p.read_text()) for p in sorted((root / "jobs").glob("*.json"))]
        assert all(len(r["executions"]) == 1 for r in records)


# -- store: concurrent gc vs writers --------------------------------------------------


class TestConcurrentStoreGc:
    def test_eviction_skips_blob_touched_after_scan(self, tmp_path):
        """The multi-writer guard: a blob refreshed since the scan survives."""
        store = ResultStore(tmp_path / "store")
        signatures = [f"{i:02d}" + "9" * 62 for i in range(3)]
        for index, signature in enumerate(signatures):
            store.put_layout(signature, tuple(range(8)))
            os.utime(store._blob_path(signature), (3000 + index, 3000 + index))
        blobs_dir = tmp_path / "store" / "blobs"
        entries, total = scan_blobs(blobs_dir)
        # Between the scan and the eviction, a concurrent process serves a
        # hit from the oldest blob (refreshing its LRU clock).
        os.utime(store._blob_path(signatures[0]))
        evicted, _remaining = evict_scanned_blobs(entries, total, max_bytes=total // 3)
        assert signatures[0] in store  # freshly touched: spared
        assert signatures[1] not in store  # next-oldest went instead
        assert evicted == 2

    def test_eviction_discounts_blob_removed_by_concurrent_gc(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signatures = [f"{i:02d}" + "a" * 62 for i in range(3)]
        for index, signature in enumerate(signatures):
            store.put_layout(signature, tuple(range(8)))
            os.utime(store._blob_path(signature), (4000 + index, 4000 + index))
        blobs_dir = tmp_path / "store" / "blobs"
        entries, total = scan_blobs(blobs_dir)
        store._blob_path(signatures[0]).unlink()  # a concurrent gc got there first
        blob_size = total // 3
        evicted, remaining = evict_scanned_blobs(entries, total, max_bytes=blob_size)
        # The vanished blob is discounted, one more eviction reaches the cap.
        assert evicted == 1
        assert remaining <= blob_size

    def test_gc_races_concurrent_writer_without_losing_writes(self, tmp_path):
        """A gc storm under a live writer never corrupts or crashes the store."""
        store = ResultStore(tmp_path / "store")
        stop = threading.Event()
        errors: list = []

        def writer():
            index = 0
            try:
                while not stop.is_set():
                    signature = f"{index % 97:02x}" + "b" * 62
                    store.put_layout(signature, (index,))
                    index += 1
            except Exception as error:  # pragma: no cover — the assertion target
                errors.append(error)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(25):
                store.gc(max_bytes=256)
        finally:
            stop.set()
            thread.join()
        assert errors == []
        final = "00" + "c" * 62
        store.put_layout(final, (1, 2, 3))
        assert store.get_layout(final) == (1, 2, 3)  # the store still works


# -- daemon: idle-exit race -----------------------------------------------------------


class TestDaemonIdleExitRace:
    def test_idle_exit_rechecks_spool_before_exit(self, tmp_path, monkeypatch):
        """A submission landing after the idle scan must still be served."""
        root = tmp_path / "svc"
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        real_run_once = daemon.scheduler.run_once
        raced = {"submitted": False}

        def run_once_with_late_submission():
            job = real_run_once()
            if job is None and not raced["submitted"]:
                # The spool scan of this cycle found nothing; the submission
                # lands now — after the scan, before the idle-deadline check.
                raced["submitted"] = True
                submit_job(root, "smoke")
            return job

        monkeypatch.setattr(daemon.scheduler, "run_once", run_once_with_late_submission)
        # idle_exit=0: the deadline fires on the very first idle cycle, so
        # only the final re-check can see the racing submission.
        assert daemon.run(max_jobs=1, idle_exit=0.0) == 1
        jobs = [json.loads(p.read_text()) for p in (root / "jobs").glob("*.json")]
        assert [job["status"] for job in jobs] == ["done"]


# -- job record: execution audit trail ------------------------------------------------


class TestExecutionAuditTrail:
    def test_daemon_records_exactly_one_execution(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert len(finished.executions) == 1
        entry = finished.executions[0]
        assert entry["worker"] == "local" and entry["attempt"] == 1
        assert entry["finished_at"] >= entry["claimed_at"]
        assert finished.latency_seconds() is not None
        assert finished.latency_seconds() >= 0.0

    def test_latency_none_until_terminal(self):
        job = Job(job_id="x", scenario="smoke")
        assert job.latency_seconds() is None
        job.attempts = 1
        job.record_claim("w")
        job.status = "done"
        assert job.latency_seconds() is None  # claim never stamped finished
        job.finish_execution()
        assert job.latency_seconds() >= 0.0

    def test_record_round_trips_executions(self):
        job = Job(job_id="x", scenario="smoke")
        job.attempts = 1
        job.record_claim("w0")
        job.finish_execution()
        assert Job.from_dict(job.to_dict()) == job


# -- loadgen --------------------------------------------------------------------------


class TestLoadgen:
    def test_loadgen_strides_seeds_for_a_cold_burst(self, tmp_path):
        root = tmp_path / "svc"
        report = run_loadgen(root, "smoke", jobs=3, wait=False)
        assert report.submitted == 3
        records = [json.loads(p.read_text()) for p in sorted((root / "jobs").glob("*.json"))]
        seeds = sorted(r["params"]["seed"] for r in records)
        assert seeds == [seeds[0], seeds[0] + 1, seeds[0] + 2]

    def test_loadgen_waits_out_a_worker(self, tmp_path):
        root = tmp_path / "svc"
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        thread = threading.Thread(target=worker.run, kwargs={"idle_exit": 0.5})
        thread.start()
        try:
            report = run_loadgen(root, "smoke", jobs=3, timeout=30.0, poll=0.05)
        finally:
            thread.join()
        assert report.done == 3 and report.timed_out == 0
        assert len(report.latencies) == 3
        payload = report.to_dict()
        assert payload["throughput_jobs_per_s"] > 0
        assert payload["latency_p50"] <= payload["latency_max"]

    def test_loadgen_times_out_without_workers(self, tmp_path):
        report = run_loadgen(tmp_path / "svc", "smoke", jobs=2, timeout=0.2, poll=0.05)
        assert report.timed_out == 2 and report.done == 0

    def test_loadgen_rejects_bad_scenario_before_submitting(self, tmp_path):
        with pytest.raises(KeyError):
            run_loadgen(tmp_path / "svc", "no-such-scenario", jobs=1, wait=False)
        with pytest.raises(ValueError):
            run_loadgen(tmp_path / "svc", "smoke", jobs=0)


# -- cluster: liveness under long batches, ownership, history ------------------------


class TestClusterRobustness:
    def test_pulse_keeps_lease_fresh_during_long_batch(self, tmp_path, monkeypatch):
        """A single batch longer than the lease TTL must not get reclaimed."""
        import repro.service.scheduler as scheduler_module

        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.05, lease_ttl=0.4))
        real = scheduler_module.generate_scenario

        def slow(name, params=None):
            time.sleep(1.0)  # one batch, far longer than the 0.4 s TTL
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", slow)
        thread = threading.Thread(target=worker.run, kwargs={"max_jobs": 1, "idle_exit": 0.2})
        thread.start()
        peer = _manager(root, "peer", ttl=0.4)
        reclaimed = 0
        try:
            while thread.is_alive():
                reclaimed += peer.reclaim_expired()
                time.sleep(0.05)
        finally:
            thread.join()
        assert reclaimed == 0, "a live worker's lease was stolen mid-batch"
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "done"
        assert len(record["executions"]) == 1

    def test_release_refuses_to_clobber_after_reclaim(self, tmp_path):
        """A stalled worker whose lease was reclaimed must not overwrite the spool."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        stalled = _manager(root, "stalled", ttl=1.0)
        claimed = stalled.claim(job.job_id)
        # The worker stalls; a peer reclaims (stale heartbeat + expired TTL).
        _write_stale_heartbeat(root, stalled.identity.worker_id)
        old = time.time() - 60
        os.utime(stalled.lease_path(job.job_id), (old, old))
        assert _manager(root, "peer").reclaim_expired() == 1
        # The stalled worker wakes up and tries to finish "its" job.
        claimed.status = "done"
        assert stalled.release(claimed) is False
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "queued"  # the reclaim's requeue survived

    def test_candidate_scan_skips_terminal_but_sees_id_reuse(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke", job_id="nightly")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        assert worker.step().status == "done"
        # The terminal record is remembered by mtime: later scans skip it...
        assert worker._queued_candidates() == []
        assert any("nightly" in memo for memo in worker._known_terminal.values())
        gc_service(root, purge_jobs=True)
        # ...but a purged-and-reused id is a brand-new submission.
        submit_job(root, "smoke", job_id="nightly", params={"seed": 9})
        assert worker._queued_candidates() == ["nightly"]
        assert worker.step().status == "done"

    def test_status_does_not_double_count_release_crash_window(self, tmp_path):
        """Terminal spool record + lingering lease = one job, not two."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        manager = _manager(root, "crashed")
        claimed = manager.claim(job.job_id)
        claimed.status = "done"
        # release() crashed between its two steps: record written, lease kept.
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(claimed.to_dict()))
        assert manager.lease_path(job.job_id).exists()
        report = service_status(root)
        assert report["jobs"]["counts"] == {"done": 1}
        assert len(report["jobs"]["records"]) == 1

    def test_supervisor_max_jobs_ignores_prior_terminal_records(self, tmp_path):
        """A reused root's history must not satisfy this run's --max-jobs."""
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0)).run(
            max_jobs=1, idle_exit=0.1
        )
        fresh = submit_job(root, "smoke", params={"seed": 9})
        supervisor = ClusterSupervisor(
            ClusterConfig(root=root, workers=1, poll_interval=0.05, lease_ttl=5.0)
        )
        assert supervisor.run(max_jobs=1, idle_exit=60.0) == 1
        record = json.loads((root / "jobs" / f"{fresh.job_id}.json").read_text())
        assert record["status"] == "done"

    def test_reclaim_restores_terminal_record_unchanged(self, tmp_path):
        """A done record stranded in a dead worker's lease dir is restored,
        never re-queued — terminal is terminal."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        dead = _manager(root, "dead", ttl=1.0)
        claimed = dead.claim(job.job_id)
        claimed.status = "done"
        claimed.finish_execution()
        # The worker died right after finishing, before writing the spool
        # record: the terminal record sits only in its lease directory.
        dead.write_lease(claimed)
        (root / "jobs" / f"{job.job_id}.json").unlink(missing_ok=True)
        _write_stale_heartbeat(root, dead.identity.worker_id)
        old = time.time() - 60
        os.utime(dead.lease_path(job.job_id), (old, old))
        assert _manager(root, "peer").reclaim_expired() == 1
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "done"  # restored, not re-queued
        assert record["attempts"] == 1

    def test_late_cancel_marker_is_swept_after_terminal(self, tmp_path):
        """A cancel landing during the final batch must not ambush id reuse."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", job_id="nightly")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        claimed = worker.lease.claim(job.job_id)
        # The cancel arrives after the last batch boundary has passed.
        (root / "jobs" / "nightly.cancel").write_text("")
        finished = worker._run_claimed(claimed)
        # Too late to cancel mid-claim is fine either way; the marker must
        # be gone once the job is terminal.
        assert finished.is_terminal
        assert not (root / "jobs" / "nightly.cancel").exists()

    def test_gc_sweeps_orphaned_cancel_markers(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        # Marker written against the finished job (the daemon never saw it).
        (root / "jobs" / f"{job.job_id}.cancel").write_text("")
        (root / "jobs" / "ghost.cancel").write_text("")  # job never existed
        report = gc_service(root, purge_jobs=True)
        assert report["purged_jobs"] == 1
        assert list((root / "jobs").glob("*.cancel")) == []

    def test_supervisor_spool_counts_cache_tracks_history(self, tmp_path):
        root = tmp_path / "svc"
        for index in range(3):
            submit_job(root, "smoke", params={"seed": index})
        ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0)).run(
            max_jobs=3, idle_exit=0.1
        )
        supervisor = ClusterSupervisor(
            ClusterConfig(root=root, workers=1, poll_interval=0.05, lease_ttl=5.0)
        )
        def memo_size():
            return sum(len(memo) for memo in supervisor._terminal_seen.values())

        assert supervisor._spool_counts() == (3, 0)
        assert memo_size() == 3  # parsed once...
        assert supervisor._spool_counts() == (3, 0)  # ...then served from mtime cache
        fresh = submit_job(root, "smoke", params={"seed": 99})
        assert supervisor._spool_counts() == (3, 1)
        gc_service(root, purge_jobs=True)
        assert supervisor._spool_counts() == (0, 1)
        assert memo_size() == 0
        assert all(fresh.job_id not in memo for memo in supervisor._terminal_seen.values())

    def test_refresh_never_resurrects_a_reclaimed_lease(self, tmp_path):
        """A disowned job's pulse/batch refresh must not recreate the lease."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        stalled = _manager(root, "stalled", ttl=1.0)
        claimed = stalled.claim(job.job_id)
        # A reclaimer renamed the lease away while the worker was frozen.
        _write_stale_heartbeat(root, stalled.identity.worker_id)
        old = time.time() - 60
        os.utime(stalled.lease_path(job.job_id), (old, old))
        assert _manager(root, "peer").reclaim_expired() == 1
        # The frozen worker wakes into a refresh: it must learn it lost.
        assert stalled.refresh_lease(claimed) is False
        assert not stalled.lease_path(job.job_id).exists()  # not resurrected
        assert stalled.release(claimed) is False  # and release stays refused

    def test_on_batch_disowns_job_when_lease_was_reclaimed(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        claimed = worker.lease.claim(job.job_id)
        worker.lease.lease_path(job.job_id).unlink()  # a reclaim stole it
        worker._on_batch(claimed)
        assert claimed.cancel_requested  # stop working a job a peer now owns
        assert not worker.lease.lease_path(job.job_id).exists()

    def test_disowned_job_does_not_consume_max_jobs(self, tmp_path, monkeypatch):
        """An outcome discarded by a reclaim must not count as finished work."""
        import repro.service.scheduler as scheduler_module

        root = tmp_path / "svc"
        submit_job(root, "smoke", job_id="stolen")
        submit_job(root, "smoke", job_id="kept", params={"seed": 9})
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        real = scheduler_module.generate_scenario

        def stealing(name, params=None):
            # Mid-execution of "stolen", a reclaimer takes the lease away.
            stolen_lease = worker.lease.lease_path("stolen")
            if stolen_lease.exists():
                stolen_lease.unlink()
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", stealing)
        # max_jobs=1 must be satisfied by the *owned* outcome ("kept"), not
        # by the discarded "stolen" one.
        assert worker.run(max_jobs=1, idle_exit=0.5) == 1
        assert worker.jobs_done == 1
        kept = json.loads((root / "jobs" / "kept.json").read_text())
        assert kept["status"] == "done"

    def test_gc_keeps_cancel_marker_of_leased_job(self, tmp_path):
        """A pending cancel for a claimed job must survive the marker sweep."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        _manager(root, "holder").claim(job.job_id)
        assert request_cancel(root, job.job_id) is True
        gc_service(root, purge_jobs=True)
        assert (root / "jobs" / f"{job.job_id}.cancel").exists()

    def test_supervisor_gives_up_when_workers_crash_loop(self, tmp_path, monkeypatch):
        """All workers dead + restart budget spent must exit, not hang."""
        root = tmp_path / "svc"
        submit_job(root, "smoke")  # pending work keeps the spool active
        supervisor = ClusterSupervisor(
            ClusterConfig(root=root, workers=1, poll_interval=0.05, max_restarts=2)
        )
        monkeypatch.setattr(
            supervisor,
            "worker_command",
            lambda slot: [sys.executable, "-c", "raise SystemExit(3)"],
        )
        start = time.monotonic()
        # Without the give-up, the queued job keeps `active` nonzero and
        # this would sleep forever despite zero live workers.
        assert supervisor.run(idle_exit=60.0) == 0
        assert time.monotonic() - start < 30.0
        assert supervisor.restarts == 2

    def test_disowned_worker_leaves_requeued_jobs_cancel_marker(self, tmp_path):
        """A marker written against the requeued job is not ours to consume."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        claimed = worker.lease.claim(job.job_id)
        # A reclaim takes the lease and requeues the job...
        worker.lease.lease_path(job.job_id).unlink()
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(job.to_dict()))
        # ...and the operator cancels the *requeued* job.
        assert request_cancel(root, job.job_id) is True
        marker = root / "jobs" / f"{job.job_id}.cancel"
        marker_seen = marker.exists()
        finished = worker._run_claimed(claimed)
        assert marker_seen and marker.exists()  # pending for the next claimer
        assert finished.is_terminal  # the disowned outcome itself was dropped
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        assert record["status"] == "queued"  # requeued record untouched

    def test_gc_sweeps_dead_worker_heartbeats_and_empty_lease_dirs(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        worker = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        worker.run(max_jobs=1, idle_exit=0.1)  # exits with a stopped heartbeat
        worker_id = worker.identity.worker_id
        assert (root / "workers" / f"{worker_id}.json").exists()
        assert (root / "leases" / worker_id).exists()
        report = gc_service(root)
        assert report["purged_workers"] == 1
        assert not (root / "workers" / f"{worker_id}.json").exists()
        assert not (root / "leases" / worker_id).exists()

    def test_gc_keeps_live_workers_and_pending_leases(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        # A dead worker still holding a lease: both remnants must survive
        # (reclaim needs the stale heartbeat to judge the owner).
        dead = _manager(root, "dead", ttl=3600.0)
        dead.claim(job.job_id)
        _write_stale_heartbeat(root, dead.identity.worker_id)
        # A live worker with an empty lease dir must survive untouched.
        live = ClusterWorker(WorkerConfig(root=root, poll_interval=0.02, lease_ttl=5.0))
        live._heartbeat(force=True)
        assert gc_service(root)["purged_workers"] == 0
        assert (root / "workers" / f"{dead.identity.worker_id}.json").exists()
        assert dead.lease_path(job.job_id).exists()
        assert (root / "leases" / live.identity.worker_id).exists()

    def test_supervisor_stop_request_ends_serve_forever(self, tmp_path):
        """The SIGTERM path: request_stop unwinds run() and reaps the fleet."""
        supervisor = ClusterSupervisor(
            ClusterConfig(root=tmp_path / "svc", workers=1, poll_interval=0.05, lease_ttl=5.0)
        )
        threading.Timer(0.5, supervisor.request_stop).start()
        # No max_jobs, no idle_exit: without the stop request this loops forever.
        assert supervisor.run() == 0
        assert supervisor.worker_pids() == []  # fleet reaped by stop()

    def test_reclaim_fast_path_never_parses_fresh_leases(self, tmp_path, monkeypatch):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        _manager(root, "owner", ttl=5.0).claim(job.job_id)  # freshly refreshed
        peer = _manager(root, "peer", ttl=5.0)

        def boom(path):
            raise AssertionError("fresh lease was parsed")

        monkeypatch.setattr(peer, "_lease_ttl_of", boom)
        assert peer.reclaim_expired() == 0  # one stat, no read
