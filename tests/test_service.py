"""Tests for the repro.service layer (store, queue, scheduler, daemon).

The warm-start tests at the bottom enforce the subsystem's headline
guarantee: a second run over the same workload with the persistent store
enabled performs *zero* redundant panel solves — in-process with a fresh
cache, across daemon restarts, and across real CLI processes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import CacheStats, Engine, SolutionCache
from repro.engine.signature import SIGNATURE_VERSION
from repro.gsino.config import GsinoConfig
from repro.gsino.pipeline import compare_flows
from repro.service import (
    SCENARIO_NAMES,
    Job,
    JobQueue,
    ResultStore,
    Scheduler,
    ServiceConfig,
    ServiceDaemon,
    batch_compatible,
    gc_service,
    generate_scenario,
    request_cancel,
    scenario_spec,
    service_status,
    submit_job,
    wait_for_job,
)
from repro.service.store import FORMAT_VERSION


def _smoke_tasks():
    return generate_scenario("smoke")


# -- ResultStore ---------------------------------------------------------------------


class TestResultStore:
    def test_round_trip_and_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        layout = (0, None, 1, None, 2)
        assert store.get_layout("ab" + "0" * 62) is None
        store.put_layout("ab" + "0" * 62, layout)
        assert store.get_layout("ab" + "0" * 62) == layout
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert len(store) == 1
        assert store.total_bytes() > 0

    def test_reopen_preserves_blobs(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).put_layout("cd" + "1" * 62, (3, None, 4))
        reopened = ResultStore(root)
        assert reopened.get_layout("cd" + "1" * 62) == (3, None, 4)

    def test_double_write_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_layout("ee" + "2" * 62, (1, 2))
        store.put_layout("ee" + "2" * 62, (1, 2))
        assert len(store) == 1

    @pytest.mark.parametrize(
        "payload",
        [
            "{not json",
            json.dumps(
                {"signature": "wrong", "signature_version": SIGNATURE_VERSION, "layout": [1]}
            ),
            json.dumps({"signature_version": SIGNATURE_VERSION, "layout": [1]}),
            json.dumps({"signature": None, "layout": "nope"}),
            json.dumps([1, 2, 3]),
        ],
    )
    def test_corrupted_blob_is_dropped_not_served(self, tmp_path, payload):
        store = ResultStore(tmp_path / "store")
        signature = "ff" + "3" * 62
        store.put_layout(signature, (5, None))
        store._blob_path(signature).write_text(payload)
        assert store.get_layout(signature) is None
        assert store.stats().corrupt_dropped == 1
        assert signature not in store  # the bad blob is gone from disk

    def test_bad_layout_entries_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signature = "aa" + "4" * 62
        path = store._blob_path(signature)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "signature": signature,
                    "signature_version": SIGNATURE_VERSION,
                    "layout": [1, "shield", 2],
                }
            )
        )
        assert store.get_layout(signature) is None
        assert store.stats().corrupt_dropped == 1

    def test_signature_version_mismatch_clears_store(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        store.put_layout("bb" + "5" * 62, (7,))
        meta = json.loads((root / "store.json").read_text())
        assert meta == {
            "format_version": FORMAT_VERSION,
            "signature_version": SIGNATURE_VERSION,
        }
        meta["signature_version"] = SIGNATURE_VERSION - 1
        (root / "store.json").write_text(json.dumps(meta))
        reopened = ResultStore(root)
        assert len(reopened) == 0
        assert reopened.stats().evictions == 1
        # The metadata was rewritten to the current versions.
        assert json.loads((root / "store.json").read_text())["signature_version"] == (
            SIGNATURE_VERSION
        )

    def test_lru_eviction_by_size(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signatures = [f"{i:02d}" + "6" * 62 for i in range(4)]
        for index, signature in enumerate(signatures):
            store.put_layout(signature, tuple(range(8)))
            os.utime(store._blob_path(signature), (1000 + index, 1000 + index))
        blob_size = store.total_bytes() // 4
        evicted = store.gc(max_bytes=2 * blob_size)
        assert evicted == 2
        assert store.signatures() == sorted(signatures[2:])  # the two oldest went

    def test_hit_refreshes_lru_clock(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signatures = [f"{i:02d}" + "7" * 62 for i in range(3)]
        for index, signature in enumerate(signatures):
            store.put_layout(signature, (index,))
            os.utime(store._blob_path(signature), (2000 + index, 2000 + index))
        assert store.get_layout(signatures[0]) is not None  # oldest becomes newest
        blob_size = store.total_bytes() // 3
        store.gc(max_bytes=2 * blob_size)
        assert signatures[0] in store
        assert signatures[1] not in store

    def test_write_cap_triggers_eviction(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=1)
        store.put_layout("cc" + "8" * 62, (1, 2, 3))
        store.put_layout("dd" + "8" * 62, (4, 5, 6))
        assert len(store) <= 1
        assert store.stats().evictions >= 1


# -- two-tier SolutionCache ----------------------------------------------------------


class TestTieredCache:
    def test_store_hit_promotes_and_counts(self, tmp_path, random_sino_problem):
        problem = random_sino_problem(5, 0.4, 2.0, seed=3)
        store = ResultStore(tmp_path / "store")
        first = SolutionCache(store=store)
        engine = Engine(cache=first)
        solution = engine.solve_panel(problem)
        assert first.stats() == CacheStats(misses=1)

        second = SolutionCache(store=store)  # fresh process, same store
        warm = Engine(cache=second)
        served = warm.solve_panel(problem)
        assert served.layout == solution.layout
        assert second.stats() == CacheStats(store_hits=1)
        # Promoted into memory: the next lookup never touches the disk.
        warm.solve_panel(problem)
        assert second.stats() == CacheStats(hits=1, store_hits=1)

    def test_poisoned_blob_becomes_a_miss_and_is_dropped(
        self, tmp_path, random_sino_problem
    ):
        """A blob valid in shape but wrong in content must never crash a hit."""
        problem = random_sino_problem(5, 0.4, 2.0, seed=3)
        store = ResultStore(tmp_path / "store")
        engine = Engine(cache=SolutionCache(store=store))
        engine.solve_panel(problem)
        signature = store.signatures()[0]
        blob_path = store._blob_path(signature)
        payload = json.loads(blob_path.read_text())
        payload["layout"] = [97, 98, 99]  # valid ints, wrong segments
        blob_path.write_text(json.dumps(payload))

        warm = Engine(cache=SolutionCache(store=store))
        solution = warm.solve_panel(problem)  # re-solves instead of crashing
        assert sorted(s for s in solution.layout if s is not None) == sorted(
            problem.segments
        )
        stats = warm.cache.stats()
        assert stats.misses == 1 and stats.store_hits == 0
        assert store.stats().corrupt_dropped == 1
        # The solve's write-through replaced the poisoned blob with a good one.
        fresh = SolutionCache(store=store)
        assert Engine(cache=fresh).solve_panel(problem).layout == solution.layout
        assert fresh.stats().store_hits == 1

    def test_cache_stats_tiers(self):
        stats = CacheStats(hits=2, misses=1, store_hits=3)
        assert stats.lookups == 6
        assert stats.hit_rate == pytest.approx(5 / 6)
        delta = stats - CacheStats(hits=1, store_hits=1)
        assert delta == CacheStats(hits=1, misses=1, store_hits=2)
        assert "from disk" in str(stats)
        assert "from disk" not in str(CacheStats(hits=2, misses=1))


# -- queue ---------------------------------------------------------------------------


class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue()
        for job_id, priority in (("a", 0), ("b", 5), ("c", 5), ("d", 1)):
            queue.submit(Job(job_id=job_id, scenario="smoke", priority=priority))
        assert [queue.pop().job_id for _ in range(4)] == ["b", "c", "d", "a"]
        assert queue.pop() is None

    def test_cancel_queued_job_never_runs(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke"))
        queue.submit(Job(job_id="y", scenario="smoke"))
        assert queue.cancel("x") is True
        assert queue.get("x").status == "cancelled"
        assert queue.pop().job_id == "y"
        assert queue.pop() is None

    def test_cancel_running_job_sets_flag(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke"))
        job = queue.pop()
        assert queue.cancel("x") is True
        assert job.status == "running" and job.cancel_requested
        queue.finish(job)
        assert job.status == "cancelled"
        assert queue.cancel("x") is False  # terminal

    def test_retry_until_attempts_exhausted(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke", max_attempts=2))
        job = queue.pop()
        queue.fail(job, "boom 1")
        assert job.status == "queued" and job.attempts == 1
        job = queue.pop()
        assert job.attempts == 2
        queue.fail(job, "boom 2")
        assert job.status == "failed"
        assert job.error == "boom 2"
        assert queue.pop() is None

    def test_duplicate_active_id_rejected(self):
        queue = JobQueue()
        queue.submit(Job(job_id="x", scenario="smoke"))
        with pytest.raises(ValueError, match="already active"):
            queue.submit(Job(job_id="x", scenario="smoke"))

    def test_job_record_round_trip(self):
        job = Job(job_id="j", scenario="smoke", params={"seed": 4}, priority=3)
        assert Job.from_dict(job.to_dict()) == job
        job.cancel_requested = True  # mid-run cancels survive the spool
        assert Job.from_dict(job.to_dict()).cancel_requested is True

    def test_prune_terminal_forgets_finished_jobs(self):
        queue = JobQueue()
        queue.submit(Job(job_id="a", scenario="smoke"))
        queue.submit(Job(job_id="b", scenario="smoke"))
        job = queue.pop()
        queue.finish(job)
        assert queue.prune_terminal() == 1
        assert queue.get("a") is None
        assert queue.get("b") is not None  # still queued
        assert queue.pop().job_id == "b"  # stale heap entries are harmless


# -- scenarios -----------------------------------------------------------------------


class TestScenarios:
    def test_registry_lists_builtins(self):
        assert "smoke" in SCENARIO_NAMES and "dense-bus" in SCENARIO_NAMES

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_scenario_generates_deterministically(self, name):
        from repro.service.scenarios import scenario_kind

        if scenario_kind(name) == "flow":
            # Flow scenarios run through the stage-graph runner, never the
            # panel-task generator (covered in tests/test_flow.py).
            with pytest.raises(ValueError, match="flow scenario"):
                generate_scenario(name)
            return
        first = generate_scenario(name)
        second = generate_scenario(name)
        assert [task.signature() for task in first] == [task.signature() for task in second]
        assert len(first) == scenario_spec(name).panels
        assert len({task.key for task in first}) == len(first)

    def test_param_overrides_change_signatures(self):
        base = generate_scenario("smoke")
        reseeded = generate_scenario("smoke", {"seed": 99})
        assert {t.signature() for t in base}.isdisjoint(t.signature() for t in reseeded)
        assert len(generate_scenario("smoke", {"panels": 5})) == 5

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario parameter"):
            generate_scenario("smoke", {"frobnicate": 1})
        with pytest.raises(KeyError, match="unknown scenario"):
            generate_scenario("no-such-scenario")

    def test_mistyped_parameter_values_rejected(self):
        """Bad values must fail at submit validation, not inside the daemon."""
        with pytest.raises(ValueError, match="must be an integer"):
            scenario_spec("smoke").with_params({"seed": "abc"})
        with pytest.raises(ValueError, match="must be an integer"):
            scenario_spec("smoke").with_params({"panels": 2.5})
        with pytest.raises(ValueError, match="must be a number"):
            scenario_spec("smoke").with_params({"sensitivity_rate": "high"})
        with pytest.raises(ValueError, match="must be a string"):
            scenario_spec("smoke").with_params({"effort": 3})
        with pytest.raises(ValueError, match="does not accept"):
            scenario_spec("smoke").with_params({"panels": True})
        # Well-typed overrides still work, ints upgrading float fields.
        assert scenario_spec("smoke").with_params({"sensitivity_rate": 1}).sensitivity_rate == 1.0

    def test_technology_scales_bounds(self):
        tight = generate_scenario("node-70nm")[0].problem
        loose = generate_scenario("node-130nm", {"seed": scenario_spec("node-70nm").seed})[0]
        # Same seed, same structure; only the Vdd-proportional bound scale differs.
        ratio = loose.problem.default_kth / tight.default_kth
        assert ratio == pytest.approx(1.2 / 0.9)


# -- scheduler -----------------------------------------------------------------------


class TestScheduler:
    def test_executes_job_and_records_outcome(self):
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke"))
        scheduler = Scheduler(queue, Engine(cache=SolutionCache()))
        job = scheduler.run_once()
        assert job.status == "done"
        assert job.result["panels"] == len(_smoke_tasks())
        assert job.result["valid_panels"] == job.result["panels"]
        assert job.result["cache"]["misses"] == job.result["panels"]
        assert scheduler.run_once() is None

    def test_batches_group_by_solver_and_effort(self):
        tasks = generate_scenario("smoke") + generate_scenario(
            "ordering-baseline", {"panels": 2}
        )
        batches = batch_compatible(tasks)
        assert [len(batch) for batch in batches] == [3, 2]
        assert {(t.solver, t.effort) for t in batches[0]} == {("sino", "greedy")}
        assert {(t.solver, t.effort) for t in batches[1]} == {("ordering", "greedy")}

    def test_batch_size_bounds_homogeneous_jobs(self):
        """A one-effort job must still get multiple batch boundaries."""
        tasks = generate_scenario("mixed-width")  # 10 panels, one (solver, effort)
        batches = batch_compatible(tasks, max_size=4)
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert [task for batch in batches for task in batch] == tasks
        with pytest.raises(ValueError, match="max_size"):
            batch_compatible(tasks, max_size=0)

    def test_long_job_heartbeats_between_batches(self, tmp_path):
        """_on_batch fires once per sub-batch, not once per job."""
        root = tmp_path / "svc"
        submit_job(root, "mixed-width")  # 10 homogeneous panels
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.scheduler.batch_size = 4
        pulses = []
        daemon.scheduler.on_batch = lambda job: pulses.append(job.job_id)
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert len(pulses) == 3

    def test_failure_retries_then_succeeds(self, monkeypatch):
        import repro.service.scheduler as scheduler_module

        calls = {"count": 0}
        real = scheduler_module.generate_scenario

        def flaky(name, params=None):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient failure")
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", flaky)
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke", max_attempts=2))
        scheduler = Scheduler(queue)
        first = scheduler.run_once()
        assert first.status == "queued" and "transient failure" in first.error
        second = scheduler.run_once()
        assert second.status == "done" and second.attempts == 2

    def test_failure_exhausts_attempts(self, monkeypatch):
        import repro.service.scheduler as scheduler_module

        def always_broken(name, params=None):
            raise RuntimeError("permanently broken")

        monkeypatch.setattr(scheduler_module, "generate_scenario", always_broken)
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke", max_attempts=2))
        finished = Scheduler(queue).drain()
        assert len(finished) == 2  # both attempts were claimed and ran
        assert queue.get("j").status == "failed"
        assert queue.get("j").attempts == 2
        assert "permanently broken" in queue.get("j").error

    def test_cancellation_between_batches(self):
        queue = JobQueue()
        queue.submit(Job(job_id="j", scenario="smoke"))
        scheduler = Scheduler(queue)
        job = queue.get("j")
        job.cancel_requested = True
        scheduler.run_once()
        assert job.status == "cancelled"
        assert job.result["batches"] == 0  # no batch was dispatched


# -- daemon + spool ------------------------------------------------------------------


class TestDaemon:
    def test_submit_run_status_roundtrip(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", priority=1)
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.run(max_jobs=1, idle_exit=0.05) == 1
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "done"
        report = service_status(root)
        assert report["jobs"]["counts"] == {"done": 1}
        assert report["store"]["entries"] == len(_smoke_tasks())
        assert report["cache_totals"]["misses"] == len(_smoke_tasks())
        heartbeat = report["daemon"]["heartbeat"]
        assert heartbeat["jobs_done"] == 1 and heartbeat["pid"] == os.getpid()
        # A cleanly exited daemon must not read as alive, however fresh the
        # final heartbeat is.
        assert report["daemon"]["alive"] is False

    def test_submit_validates_scenario_before_writing(self, tmp_path):
        root = tmp_path / "svc"
        with pytest.raises(KeyError):
            submit_job(root, "no-such-scenario")
        with pytest.raises(ValueError):
            submit_job(root, "smoke", params={"bogus": 1})
        assert not (root / "jobs").exists() or not list((root / "jobs").glob("*.json"))

    def test_cancel_of_finished_job_is_refused(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "done"
        assert request_cancel(root, job.job_id) is False
        assert not (root / "jobs" / f"{job.job_id}.cancel").exists()

    def test_cancel_marker_cancels_queued_job(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        assert request_cancel(root, job.job_id) is True
        assert request_cancel(root, "missing-job") is False
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        # The cancel-before-claim job counts toward --max-jobs: a daemon
        # bounded to one job must exit immediately; hitting the idle-exit
        # backstop instead (returning 0) is the regression this guards.
        assert daemon.run(max_jobs=1, idle_exit=5.0) == 1
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "cancelled"
        assert daemon.jobs_cancelled == 1
        assert daemon.queue.jobs() == []  # pruned despite never being claimed

    def test_running_record_persisted_before_execution(self, tmp_path, monkeypatch):
        """max_attempts must bind across crashes: the claim is durable."""
        import repro.service.scheduler as scheduler_module

        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        observed = {}
        real = scheduler_module.generate_scenario

        def probing(name, params=None):
            observed.update(
                json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
            )
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", probing)
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        # While the job executed, its spool record already said so.
        assert observed["status"] == "running"
        assert observed["attempts"] == 1

    def test_cancel_marker_honoured_mid_job(self, tmp_path, monkeypatch):
        """A cancel arriving while the job runs lands at the next batch."""
        import repro.service.scheduler as scheduler_module

        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        real = scheduler_module.generate_scenario

        def cancelling(name, params=None):
            request_cancel(root, job.job_id)  # arrives mid-execution
            return real(name, params)

        monkeypatch.setattr(scheduler_module, "generate_scenario", cancelling)
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "cancelled"
        assert finished.result["batches"] == 0

    def test_status_is_a_pure_read(self, tmp_path):
        """`repro status` must never rewrite or clear a live store."""
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        store_meta = root / "store" / "store.json"
        # Simulate a store written by a *newer* signature scheme.
        meta = json.loads(store_meta.read_text())
        meta["signature_version"] = SIGNATURE_VERSION + 1
        store_meta.write_text(json.dumps(meta))
        before = sorted((root / "store" / "blobs").glob("*/*.json"))
        report = service_status(root)
        assert report["store"]["entries"] == len(before) > 0
        assert sorted((root / "store" / "blobs").glob("*/*.json")) == before
        assert json.loads(store_meta.read_text())["signature_version"] == (
            SIGNATURE_VERSION + 1
        )  # metadata untouched

    def test_crashed_running_job_is_requeued(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        record["status"] = "running"  # a previous daemon died mid-execution
        record["attempts"] = 1
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(record))
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "done"
        assert finished.attempts == 2

    def test_mid_run_cancel_survives_daemon_crash(self, tmp_path):
        """A cancel consumed right before a crash still kills the retry."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = root / "jobs" / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        # The crashed daemon had claimed the job and persisted the cancel.
        record.update(status="running", attempts=1, cancel_requested=True)
        path.write_text(json.dumps(record))
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        assert finished.status == "cancelled"
        assert finished.result["batches"] == 0

    def test_terminal_jobs_are_pruned_from_memory(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "done"
        # The spool record is the history; the daemon itself forgets the job.
        assert daemon.queue.get(job.job_id) is None
        assert daemon.queue.jobs() == []

    def test_poison_job_fails_after_attempts_exhausted(self, tmp_path):
        """A job that crashes the daemon cannot crash-loop forever."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke", max_attempts=2)
        record = json.loads((root / "jobs" / f"{job.job_id}.json").read_text())
        record["status"] = "running"
        record["attempts"] = 2  # every allowed attempt already died
        (root / "jobs" / f"{job.job_id}.json").write_text(json.dumps(record))
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        # Nothing runs, but the failed-by-recovery job still counts as
        # finished work (a --max-jobs daemon must not spin on it).
        assert daemon.run(max_jobs=1, idle_exit=5.0) == 1
        failed = wait_for_job(root, job.job_id, timeout=5.0)
        assert failed.status == "failed"
        assert "daemon died" in failed.error
        assert daemon.jobs_failed == 1

    def test_cancel_marker_survives_submit_race(self, tmp_path):
        """A marker seen before its job record is loaded must not be lost."""
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        assert request_cancel(root, job.job_id) is True
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        marker = root / "jobs" / f"{job.job_id}.cancel"
        # Marker processed while the queue has never seen the job (the
        # submit/cancel race): it must be left in place, not swallowed.
        daemon._consume_cancel_marker(marker)
        assert marker.exists()
        daemon.poll_spool()  # record loads first, then the marker lands
        assert not marker.exists()
        assert daemon.queue.get(job.job_id).status == "cancelled"

    def test_running_job_of_live_sibling_daemon_is_not_stolen(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = root / "jobs" / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        record.update(status="running", attempts=1)
        path.write_text(json.dumps(record))
        # A *fresh* heartbeat from another pid: that daemon owns the job.
        (root / "service.json").write_text(
            json.dumps(
                {"pid": os.getpid() + 1, "updated_at": time.time(), "stopped": False}
            )
        )
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        assert daemon.poll_spool() == 0
        assert daemon.queue.get(job.job_id) is None  # left alone
        assert json.loads(path.read_text())["status"] == "running"

    def test_stale_sibling_heartbeat_allows_recovery(self, tmp_path):
        root = tmp_path / "svc"
        job = submit_job(root, "smoke")
        path = root / "jobs" / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        record.update(status="running", attempts=1)
        path.write_text(json.dumps(record))
        (root / "service.json").write_text(
            json.dumps(
                {"pid": os.getpid() + 1, "updated_at": time.time() - 3600, "stopped": False}
            )
        )
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert wait_for_job(root, job.job_id, timeout=5.0).status == "done"

    def test_job_id_reuse_after_purge_is_executed(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke", job_id="nightly")
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.run(max_jobs=1, idle_exit=0.05)
        assert wait_for_job(root, "nightly", timeout=5.0).status == "done"
        gc_service(root, purge_jobs=True)
        # Same id, fresh record: the (still-running) daemon must notice the
        # rewritten file rather than skipping the id from memory forever.
        submit_job(root, "smoke", job_id="nightly", params={"seed": 9})
        assert daemon.poll_spool() == 1
        assert daemon.queue.get("nightly").status == "queued"

    def test_priority_orders_execution(self, tmp_path):
        root = tmp_path / "svc"
        low = submit_job(root, "smoke", priority=0)
        high = submit_job(root, "smoke", priority=9)
        daemon = ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01))
        daemon.poll_spool()
        assert daemon.queue.pop().job_id == high.job_id
        assert daemon.queue.pop().job_id == low.job_id

    def test_gc_purges_jobs_and_evicts_store(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        report = gc_service(root, max_bytes=1, purge_jobs=True)
        assert report["purged_jobs"] == 1
        assert report["evicted_blobs"] == len(_smoke_tasks())
        assert service_status(root)["jobs"]["counts"] == {}

    def test_gc_never_opens_the_store(self, tmp_path):
        """`repro gc` from a foreign checkout must not version-clear blobs."""
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        meta_path = root / "store" / "store.json"
        meta = json.loads(meta_path.read_text())
        meta["signature_version"] = SIGNATURE_VERSION + 1  # a newer daemon's store
        meta_path.write_text(json.dumps(meta))
        before = sorted((root / "store" / "blobs").glob("*/*.json"))
        report = gc_service(root, purge_jobs=True)  # no size cap: no eviction
        assert report["evicted_blobs"] == 0
        assert sorted((root / "store" / "blobs").glob("*/*.json")) == before
        assert json.loads(meta_path.read_text()) == meta  # metadata untouched


# -- warm start across processes (the acceptance criterion) --------------------------


class TestWarmStart:
    def test_daemon_restart_serves_from_store(self, tmp_path):
        root = tmp_path / "svc"
        submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        job = submit_job(root, "smoke")
        ServiceDaemon(ServiceConfig(root=root, poll_interval=0.01)).run(
            max_jobs=1, idle_exit=0.05
        )
        finished = wait_for_job(root, job.job_id, timeout=5.0)
        cache = finished.result["cache"]
        assert cache["misses"] == 0
        assert cache["store_hits"] == len(_smoke_tasks())

    def test_compare_flows_second_run_solves_nothing(self, tmp_path, small_circuit):
        """A repeated comparison with the store performs zero redundant solves."""
        config = GsinoConfig(length_scale=1.0 / (0.015**0.5))
        store_root = tmp_path / "store"

        cold_engine = Engine(cache=SolutionCache(store=ResultStore(store_root)))
        cold = compare_flows(
            small_circuit.grid, small_circuit.netlist, config, engine=cold_engine
        )
        cold_stats = cold_engine.cache_stats()
        assert cold_stats.misses > 0 and cold_stats.store_hits == 0

        # Fresh engine + fresh memory cache on the same store = a new process.
        warm_engine = Engine(cache=SolutionCache(store=ResultStore(store_root)))
        warm = compare_flows(
            small_circuit.grid, small_circuit.netlist, config, engine=warm_engine
        )
        warm_stats = warm_engine.cache_stats()
        assert warm_stats.misses == 0, "second run must not solve any panel"
        assert warm_stats.store_hits > 0
        for flow in ("id_no", "isino", "gsino"):
            assert warm[flow].metrics.crosstalk.num_violations == (
                cold[flow].metrics.crosstalk.num_violations
            )
            assert warm[flow].panels.keys() == cold[flow].panels.keys()
            for key in warm[flow].panels:
                assert warm[flow].panels[key].layout == cold[flow].panels[key].layout

    def test_cli_cross_process_warm_start(self, tmp_path):
        """Two real `repro compare --store` processes: the second is all disk hits."""
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "compare",
            "--circuit",
            "ibm01",
            "--rate",
            "0.3",
            "--scale",
            "0.01",
            "--seed",
            "3",
            "--store",
            str(tmp_path / "store"),
        ]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        first = subprocess.run(command, capture_output=True, text=True, env=env, check=True)
        assert "cold solves" in first.stdout
        second = subprocess.run(command, capture_output=True, text=True, env=env, check=True)
        assert "zero redundant solves" in second.stdout
        assert "0 misses" in second.stdout

    def test_sweep_runner_targets_service_store(self, tmp_path):
        """run_table_suite warm-starts across processes via store_path."""
        from repro.analysis.experiments import ExperimentConfig, run_table_suite

        config = ExperimentConfig(
            circuits=("ibm01",),
            sensitivity_rates=(0.3,),
            scale=0.01,
            seed=3,
            store_path=tmp_path / "store",
        )
        run_table_suite(config)
        warm = run_table_suite(config)  # fresh engines per instance, same store
        for comparison in warm:
            for flow in comparison.flows.values():
                assert flow.cache_stats is not None
                assert flow.cache_stats.misses == 0

    def test_store_path_requires_cache(self, tmp_path):
        from repro.analysis.experiments import ExperimentConfig

        with pytest.raises(ValueError, match="store_path requires use_cache"):
            ExperimentConfig(use_cache=False, store_path=tmp_path / "store")
