"""Tests for the synthetic benchmark generator."""

import numpy as np
import pytest

from repro.bench.ibm import GeneratedCircuit, generate_circuit
from repro.bench.placement import (
    DEFAULT_PIN_DISTRIBUTION,
    PlacementConfig,
    average_hpwl,
    generate_nets,
)
from repro.bench.profiles import CircuitProfile, get_profile, list_profiles


class TestProfiles:
    def test_all_six_circuits_present(self):
        assert list_profiles() == ["ibm01", "ibm02", "ibm03", "ibm04", "ibm05", "ibm06"]

    def test_published_statistics(self):
        ibm01 = get_profile("ibm01")
        assert ibm01.num_nets == 13062
        assert ibm01.chip_width == pytest.approx(1533.0)
        assert ibm01.chip_height == pytest.approx(1824.0)
        assert ibm01.average_net_length == pytest.approx(639.0)

    def test_net_counts_match_table1_percentages(self):
        # Table 1: ibm01 reports 1907 violations at 14.60 %.
        assert get_profile("ibm01").num_nets == pytest.approx(1907 / 0.146, rel=0.01)
        # ibm05: 7135 violations at 24.07 %.
        assert get_profile("ibm05").num_nets == pytest.approx(7135 / 0.2407, rel=0.01)

    def test_lookup_is_case_insensitive_and_validates(self):
        assert get_profile("IBM03").name == "ibm03"
        with pytest.raises(KeyError):
            get_profile("ibm99")

    def test_scaling_preserves_density(self):
        profile = get_profile("ibm02")
        scaled = profile.scaled(0.25)
        assert scaled.num_nets == pytest.approx(profile.num_nets * 0.25, rel=0.01)
        assert scaled.chip_width == pytest.approx(profile.chip_width * 0.5, rel=0.01)
        # Nets per region stays roughly constant.
        full_density = profile.num_nets / (profile.grid_cols * profile.grid_rows)
        scaled_density = scaled.num_nets / (scaled.grid_cols * scaled.grid_rows)
        assert scaled_density == pytest.approx(full_density, rel=0.2)

    def test_scale_one_returns_same_profile(self):
        profile = get_profile("ibm04")
        assert profile.scaled(1.0) is profile

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            get_profile("ibm01").scaled(0.0)
        with pytest.raises(ValueError):
            get_profile("ibm01").scaled(1.5)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CircuitProfile("bad", 0, 100.0, 100.0, 50.0)
        with pytest.raises(ValueError):
            CircuitProfile("bad", 10, -1.0, 100.0, 50.0)
        with pytest.raises(ValueError):
            CircuitProfile("bad", 10, 100.0, 100.0, 50.0, grid_cols=1)


class TestPlacement:
    def test_pin_distribution_sums_to_one(self):
        assert sum(p for _, p in DEFAULT_PIN_DISTRIBUTION) == pytest.approx(1.0)

    def test_generated_nets_match_profile_count(self):
        profile = get_profile("ibm01").scaled(0.02)
        nets = generate_nets(profile, np.random.default_rng(0))
        assert len(nets) == profile.num_nets
        assert all(net.num_pins >= 2 for net in nets)

    def test_pins_stay_on_chip(self):
        profile = get_profile("ibm05").scaled(0.02)
        nets = generate_nets(profile, np.random.default_rng(1))
        for net in nets:
            for pin in net.pins:
                assert 0.0 <= pin.x <= profile.chip_width + 1e-6
                assert 0.0 <= pin.y <= profile.chip_height + 1e-6

    def test_average_hpwl_close_to_target(self):
        profile = get_profile("ibm01").scaled(0.1)
        nets = generate_nets(profile, np.random.default_rng(2))
        target = profile.average_net_length / PlacementConfig().hpwl_to_route_ratio
        assert average_hpwl(nets) == pytest.approx(target, rel=0.15)

    def test_average_hpwl_empty(self):
        assert average_hpwl([]) == 0.0

    def test_placement_config_validation(self):
        with pytest.raises(ValueError):
            PlacementConfig(pin_distribution=((2, 0.5), (3, 0.4)))
        with pytest.raises(ValueError):
            PlacementConfig(pin_distribution=((1, 1.0),))
        with pytest.raises(ValueError):
            PlacementConfig(hpwl_to_route_ratio=0.0)
        with pytest.raises(ValueError):
            PlacementConfig(minimum_span=0.0)

    def test_determinism_per_seed(self):
        profile = get_profile("ibm01").scaled(0.02)
        first = generate_nets(profile, np.random.default_rng(7))
        second = generate_nets(profile, np.random.default_rng(7))
        assert all(a.pins == b.pins for a, b in zip(first, second))


class TestGenerateCircuit:
    @pytest.fixture(scope="class")
    def circuit(self):
        return generate_circuit("ibm01", sensitivity_rate=0.3, scale=0.02, seed=5)

    def test_instance_structure(self, circuit):
        assert isinstance(circuit, GeneratedCircuit)
        assert circuit.netlist.num_nets == circuit.profile.num_nets
        assert circuit.grid.num_cols == circuit.profile.grid_cols
        assert "ibm01" in circuit.name

    def test_sensitivity_rate_is_nominal(self, circuit):
        assert circuit.netlist.sensitivity_rate(0) == pytest.approx(0.3)

    def test_capacities_are_positive(self, circuit):
        assert circuit.grid.horizontal_capacity >= 4
        assert circuit.grid.vertical_capacity >= 4

    def test_determinism(self):
        first = generate_circuit("ibm02", sensitivity_rate=0.5, scale=0.01, seed=9)
        second = generate_circuit("ibm02", sensitivity_rate=0.5, scale=0.01, seed=9)
        assert first.grid.horizontal_capacity == second.grid.horizontal_capacity
        assert first.netlist.net(0).pins == second.netlist.net(0).pins

    def test_different_seeds_differ(self):
        first = generate_circuit("ibm02", sensitivity_rate=0.5, scale=0.01, seed=1)
        second = generate_circuit("ibm02", sensitivity_rate=0.5, scale=0.01, seed=2)
        assert first.netlist.net(0).pins != second.netlist.net(0).pins

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_circuit("ibm01", sensitivity_rate=1.5, scale=0.01)
        with pytest.raises(ValueError):
            generate_circuit("ibm01", sensitivity_rate=0.3, scale=0.01, capacity_headroom=0.0)
        with pytest.raises(KeyError):
            generate_circuit("ibm42", sensitivity_rate=0.3, scale=0.01)

    def test_explicit_profile_override(self):
        profile = CircuitProfile("custom", 50, 400.0, 400.0, 120.0, grid_cols=4, grid_rows=4)
        circuit = generate_circuit("ignored", profile=profile, sensitivity_rate=0.3, seed=3)
        assert circuit.profile.name == "custom"
        assert circuit.netlist.num_nets == 50

    def test_higher_headroom_gives_more_capacity(self):
        tight = generate_circuit("ibm01", scale=0.02, seed=5, capacity_headroom=0.8)
        loose = generate_circuit("ibm01", scale=0.02, seed=5, capacity_headroom=1.6)
        assert loose.grid.horizontal_capacity > tight.grid.horizontal_capacity
