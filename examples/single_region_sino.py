"""Single-region SINO study: net ordering vs greedy SINO vs annealed SINO.

Builds one routing panel with a configurable number of net segments and
sensitivity rate, then shows how the three per-region strategies trade
shields against crosstalk: plain net ordering (no shields, the ID+NO
baseline), the greedy SINO constructor, and the simulated-annealing
min-area search.  Run with::

    python examples/single_region_sino.py [num_segments] [sensitivity_rate]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.sino import (
    AnnealConfig,
    SinoProblem,
    anneal_sino,
    check_solution,
    greedy_sino,
    net_ordering_only,
)


def build_problem(num_segments: int, sensitivity_rate: float, kth: float, seed: int = 1) -> SinoProblem:
    """A random single-panel SINO instance."""
    rng = np.random.default_rng(seed)
    segments = list(range(num_segments))
    sensitivity = {segment: set() for segment in segments}
    for i in segments:
        for j in segments:
            if j > i and rng.random() < sensitivity_rate:
                sensitivity[i].add(j)
                sensitivity[j].add(i)
    return SinoProblem.build(segments, sensitivity, default_kth=kth)


def describe(name: str, solution) -> None:
    result = check_solution(solution)
    couplings = solution.couplings()
    worst = max(couplings.values()) if couplings else 0.0
    layout = ",".join("S" if entry is None else str(entry) for entry in solution.layout)
    print(f"{name:12s} tracks={result.num_tracks:3d} shields={result.num_shields:3d} "
          f"cap.viol={len(result.capacitive_pairs):2d} ind.viol={len(result.inductive_excess):2d} "
          f"worst K={worst:5.2f}")
    print(f"{'':12s} layout: [{layout}]")


def main() -> None:
    num_segments = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    sensitivity_rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    kth = 1.0

    problem = build_problem(num_segments, sensitivity_rate, kth)
    print(f"Panel with {num_segments} segments, sensitivity rate {sensitivity_rate:.0%}, "
          f"Kth = {kth} for every segment")
    print()

    describe("ordering", net_ordering_only(problem))
    describe("greedy SINO", greedy_sino(problem))
    describe(
        "anneal SINO",
        anneal_sino(problem, config=AnnealConfig(iterations=3000, seed=7)),
    )


if __name__ == "__main__":
    main()
