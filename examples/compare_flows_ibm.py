"""Compare ID+NO, iSINO and GSINO on one synthetic IBM-style circuit.

Generates a scaled-down instance of a chosen benchmark, runs the three flows
of the paper's experiments on it, and prints the quantities behind Tables
1-3 for that single circuit.  Run with::

    python examples/compare_flows_ibm.py [circuit] [sensitivity_rate] [scale]

e.g. ``python examples/compare_flows_ibm.py ibm03 0.5 0.03``.
"""

from __future__ import annotations

import sys
import time

from repro.analysis import format_percentage
from repro.bench import generate_circuit
from repro.gsino import GsinoConfig, compare_flows


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "ibm01"
    sensitivity_rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.03

    circuit = generate_circuit(circuit_name, sensitivity_rate=sensitivity_rate, scale=scale, seed=7)
    config = GsinoConfig(length_scale=1.0 / (scale ** 0.5))

    print(f"{circuit.profile.name}: {circuit.netlist.num_nets} nets, "
          f"{circuit.grid.num_cols}x{circuit.grid.num_rows} regions, "
          f"HC={circuit.grid.horizontal_capacity}, VC={circuit.grid.vertical_capacity}, "
          f"sensitivity rate {format_percentage(sensitivity_rate, 0)}")

    start = time.perf_counter()
    results = compare_flows(circuit.grid, circuit.netlist, config)
    elapsed = time.perf_counter() - start

    id_no = results["id_no"]
    print()
    print(f"{'flow':8s} {'violating nets':>15s} {'avg WL (um)':>12s} {'WL overhead':>12s} "
          f"{'area':>14s} {'area overhead':>14s} {'shields':>8s}")
    for name in ("id_no", "isino", "gsino"):
        result = results[name]
        metrics = result.metrics
        wl_overhead = metrics.average_wirelength_um / id_no.metrics.average_wirelength_um - 1.0
        area_overhead = metrics.area.overhead_vs(id_no.metrics.area)
        violations = f"{metrics.crosstalk.num_violations} ({format_percentage(metrics.crosstalk.violation_fraction)})"
        print(f"{name:8s} {violations:>15s} {metrics.average_wirelength_um:>12.1f} "
              f"{format_percentage(wl_overhead):>12s} {metrics.area.dimensions_label():>14s} "
              f"{format_percentage(area_overhead):>14s} {metrics.total_shields:>8d}")

    print()
    print(f"All three flows finished in {elapsed:.1f} s "
          f"(GSINO phase III: {results['gsino'].phase3_report.pass1_sino_reruns} SINO re-runs)")


if __name__ == "__main__":
    main()
