"""Characterise the LSK lookup table with the coupled-RLC circuit simulator.

Reproduces the Section 2.2 procedure of the paper: sweep random single-region
panel configurations (tracks, shields, sensitivities, wire lengths) through
the transient simulator, build the monotone LSK -> noise-voltage table, and
check the two fidelity claims (rank correlation, linearity in length).
Run with::

    python examples/crosstalk_characterization.py
"""

from __future__ import annotations

from repro.noise import LskTableBuilder, TableBuildConfig, lsk_fidelity_report
from repro.tech import ITRS_100NM


def main() -> None:
    config = TableBuildConfig(
        technology=ITRS_100NM,
        num_samples=80,
        num_entries=100,
        seed=2002,
    )
    print(f"Characterising the LSK table for {ITRS_100NM.name} "
          f"({config.num_samples} simulated panels) ...")
    builder = LskTableBuilder(config)
    table = builder.build()

    print()
    print(f"Built {table!r}")
    print(f"LSK budget for the paper's 0.15 V bound: {table.lsk_for_noise(0.15):.3e} m*K")
    print()
    print("Sample table entries (LSK -> noise voltage):")
    lsk_values = table.lsk_values
    noise_values = table.noise_values
    for index in range(0, table.num_entries, 20):
        print(f"  {lsk_values[index]:.3e}  ->  {noise_values[index]:.3f} V")
    print(f"  {lsk_values[-1]:.3e}  ->  {noise_values[-1]:.3f} V")

    print()
    print("Fidelity study (Section 2.2 claims):")
    report = lsk_fidelity_report(num_samples=30, seed=7)
    print(f"  rank correlation (LSK vs simulated noise): {report.rank_correlation:.2f}")
    print(f"  linearity of noise in wire length:         {report.length_linearity:.2f}")
    print(f"  supports the paper's fidelity claims:      {report.passes()}")


if __name__ == "__main__":
    main()
