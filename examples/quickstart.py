"""Quickstart: route a tiny hand-made design with GSINO.

Builds a 4x4 routing grid with a dozen nets, marks some of them as mutually
sensitive, and runs the full three-phase GSINO flow next to the conventional
ID+NO baseline.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.grid.nets import Net, Netlist, Pin
from repro.grid.regions import RoutingGrid
from repro.gsino import GsinoConfig, compare_flows


def build_design() -> tuple:
    """A 5x3 grid (2000 x 600 um) with a 12-bit bus crossing the chip.

    The twelve nets run the full chip width inside a two-row band and are all
    mutually sensitive (a classic wide parallel bus) — exactly the situation
    where a conventional router produces RLC crosstalk violations and GSINO
    has to insert shields.
    """
    grid = RoutingGrid(
        num_cols=5,
        num_rows=3,
        chip_width=2000.0,
        chip_height=600.0,
        horizontal_capacity=8,
        vertical_capacity=8,
        track_pitch_um=1.0,
    )
    nets = []
    for index in range(12):
        y_source = 180.0 + index * 20.0
        y_sink = 420.0 - index * 20.0
        nets.append(
            Net(
                net_id=index,
                pins=(Pin(40.0, y_source), Pin(1960.0, y_sink)),
                name=f"bus{index}",
            )
        )
    # Every bus bit is sensitive to every other bit.
    sensitivity = {i: {j for j in range(12) if j != i} for i in range(12)}
    netlist = Netlist(nets, sensitivity=sensitivity, name="quickstart")
    return grid, netlist


def main() -> None:
    grid, netlist = build_design()
    config = GsinoConfig()  # paper defaults: 0.15 V bound, 0.10 um node

    print(f"Routing {netlist.num_nets} nets on a {grid.num_cols}x{grid.num_rows} grid ...")
    results = compare_flows(grid, netlist, config)

    print()
    print(f"{'flow':8s} {'violations':>11s} {'avg WL (um)':>12s} {'shields':>8s} {'area (um^2)':>14s}")
    for name in ("id_no", "isino", "gsino"):
        metrics = results[name].metrics
        print(
            f"{name:8s} {metrics.crosstalk.num_violations:>11d} "
            f"{metrics.average_wirelength_um:>12.1f} {metrics.total_shields:>8d} "
            f"{metrics.area.area:>14.0f}"
        )

    gsino = results["gsino"]
    print()
    print("GSINO phase III report:", gsino.phase3_report)
    print("Worst remaining noise:", f"{gsino.metrics.crosstalk.worst_noise():.3f} V",
          "(bound", f"{config.resolved_bound():.2f} V)")


if __name__ == "__main__":
    main()
