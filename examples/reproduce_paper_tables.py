"""Regenerate Tables 1-3 of the paper on the full synthetic benchmark suite.

Runs ID+NO, iSINO and GSINO on every circuit (ibm01-ibm06) at both
sensitivity rates (30 % and 50 %) and prints the three tables in the paper's
format.  The default scale keeps the sweep at a few minutes of CPU; pass a
larger scale for bigger (slower, more faithful) instances.  Run with::

    python examples/reproduce_paper_tables.py [scale] [circuit ...]

e.g. ``python examples/reproduce_paper_tables.py 0.03 ibm01 ibm02``.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.experiments import (
    DEFAULT_CIRCUITS,
    ExperimentConfig,
    render_all_tables,
    run_table_suite,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    circuits = tuple(sys.argv[2:]) if len(sys.argv) > 2 else DEFAULT_CIRCUITS

    config = ExperimentConfig(circuits=circuits, scale=scale, seed=7)
    print(f"Running the table suite on {len(circuits)} circuit(s) at scale {scale} "
          f"(electrical length scale {config.flow_config().length_scale:.1f}x) ...")

    start = time.perf_counter()
    comparisons = run_table_suite(config)
    elapsed = time.perf_counter() - start

    print()
    print(render_all_tables(comparisons))
    print(f"Suite completed in {elapsed:.1f} s "
          f"({len(comparisons)} circuit/rate instances, 3 flows each).")


if __name__ == "__main__":
    main()
