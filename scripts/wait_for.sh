#!/usr/bin/env bash
# wait_for.sh — bounded retry loop for CI smoke jobs.
#
# Usage:
#   scripts/wait_for.sh [--root DIR] [--timeout SECONDS] [--interval SECONDS] \
#       [--label TEXT] -- CMD [ARGS...]
#
# Re-runs CMD until it exits 0, sleeping --interval seconds between
# attempts, for at most --timeout seconds.  On success it prints the
# attempt count and exits 0.  On timeout it prints a diagnosis and — when
# --root was given — dumps the tail of that service root's event log via
# `repro events --tail`; when REPRO_GATEWAY_URL is set it also probes the
# gateway's /healthz so gateway-smoke failures are diagnosable from the
# log artifact alone.  Then exits 1.  This replaces unbounded
# `wait $PID` / ad-hoc `sleep` polling in the smoke jobs: a wedged fleet
# now fails the job in minutes with the event log attached instead of
# hanging until the runner is reaped.
set -euo pipefail

root=""
timeout=120
interval=1
label=""

usage() {
    sed -n '2,16p' "$0" >&2
    exit 2
}

while [ $# -gt 0 ]; do
    case "$1" in
        --root)
            root="${2:?--root needs a directory}"
            shift 2
            ;;
        --timeout)
            timeout="${2:?--timeout needs seconds}"
            shift 2
            ;;
        --interval)
            interval="${2:?--interval needs seconds}"
            shift 2
            ;;
        --label)
            label="${2:?--label needs text}"
            shift 2
            ;;
        --)
            shift
            break
            ;;
        *)
            echo "wait_for.sh: unknown option: $1" >&2
            usage
            ;;
    esac
done

if [ $# -eq 0 ]; then
    echo "wait_for.sh: no command given after --" >&2
    usage
fi

desc="${label:-$*}"
deadline=$((SECONDS + timeout))
attempts=0

while :; do
    attempts=$((attempts + 1))
    if "$@"; then
        echo "wait_for.sh: ok after ${attempts} attempt(s): ${desc}"
        exit 0
    fi
    if [ "$SECONDS" -ge "$deadline" ]; then
        break
    fi
    sleep "$interval"
done

echo "wait_for.sh: TIMEOUT after ${timeout}s (${attempts} attempts): ${desc}" >&2
if [ -n "$root" ]; then
    echo "wait_for.sh: last events under ${root}:" >&2
    repro events --root "$root" --tail 50 >&2 || true
    # Raw per-stream tails as well: the merged CLI view can itself be the
    # broken thing, and on sharded roots the failure is often visible only
    # in one shard's stream.
    for log in "$root"/events/log.jsonl "$root"/events/s*/log.jsonl; do
        if [ -f "$log" ]; then
            echo "wait_for.sh: == ${log} ==" >&2
            tail -n 20 "$log" >&2 || true
        fi
    done
fi
if [ -n "${REPRO_GATEWAY_URL:-}" ]; then
    echo "wait_for.sh: gateway health at ${REPRO_GATEWAY_URL}/healthz:" >&2
    curl -fsS --max-time 5 "${REPRO_GATEWAY_URL}/healthz" >&2 \
        || echo "wait_for.sh: gateway health probe failed (gateway down or unreachable)" >&2
fi
exit 1
