"""Setuptools entry point.

``pip install -e .`` works in any normal environment.  In fully offline
environments that lack the ``wheel`` package (so PEP 517 editable installs
cannot build), ``python setup.py develop`` performs an equivalent editable
install using only setuptools.
"""

from setuptools import setup

setup()
