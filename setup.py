"""Setuptools entry point.

``pip install -e .`` works in any normal environment.  In fully offline
environments that lack the ``wheel`` package (so PEP 517 editable installs
cannot build), ``python setup.py develop`` performs an equivalent editable
install using only setuptools.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Single-source the version from ``repro/__init__.py``."""
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-gsino",
    version=read_version(),
    description=(
        "Reproduction of Ma & He (DAC 2002), 'Towards Global Routing With "
        "RLC Crosstalk Constraints': the three-phase GSINO flow, its "
        "baselines, and a pluggable parallel execution engine"
    ),
    long_description=Path(__file__).parent.joinpath("DESIGN.md").read_text(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: the distribution ships inline types (the repro.flow package
    # is fully annotated; the rest is typed opportunistically).
    package_data={"repro": ["py.typed"]},
    install_requires=[
        "numpy",
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
        ],
        "dev": [
            "ruff",
        ],
        # The `repro watch` dashboard only; the core package stays
        # dependency-light and never imports textual at module scope.
        "tui": [
            "textual",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
