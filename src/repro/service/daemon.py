"""The long-running service process and its file-based job spool.

One directory is the whole service state, so ``repro submit`` / ``status`` /
``gc`` work from any process with no network stack::

    <root>/
        service.json          # daemon heartbeat (pid, counters, cache stats)
        store/                # ResultStore (persistent solution tier)
        jobs/<job_id>.json    # one Job record each (atomic writes)
        jobs/<job_id>.cancel  # cancellation marker dropped by `repro cancel`

On a sharded root (``repro serve --shards N``, see
:mod:`repro.service.sharding`) the spool splits into hash-assigned shard
directories — ``jobs/s00/<job_id>.json`` etc., recorded by a
``shards.json`` marker — and all spool paths below go through the root's
:class:`~repro.service.sharding.SpoolLayout`.  A flat root is simply the
1-shard layout.

Submitters drop ``queued`` job records into ``jobs/``; the daemon polls the
spool, feeds new records into its in-memory :class:`JobQueue`, lets the
:class:`Scheduler` execute them through an engine whose cache is backed by
the store, and writes every status transition back to the job file.  A
daemon that crashed mid-job leaves the record in ``running``; the next
daemon re-queues it (attempt count preserved), so at-least-once execution
holds across restarts — and is harmless, because results are
content-addressed and idempotent.

``repro serve`` supports bounded runs (``--max-jobs``, ``--idle-exit``) so
CI can smoke the full submit → poll → done loop without a supervisor.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.engine.backends import create_backend
from repro.engine.cache import SolutionCache
from repro.engine.panels import Engine
from repro.obs.events import EventLog, event_log_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import ServiceSnapshot
from repro.service.queue import Job, JobQueue
from repro.service.scenarios import scenario_spec
from repro.service.scheduler import Scheduler
from repro.service.sharding import (
    MAX_SHARDS,
    SpoolLayout,
    adopt_stray_records,
    ensure_layout,
    read_layout,
)
from repro.service.store import ResultStore, atomic_write_text, evict_lru_blobs

#: Heartbeats older than this are reported as a dead/stale daemon.
STALE_HEARTBEAT_SECONDS = 10.0


def heartbeat_is_fresh(heartbeat: Dict[str, object]) -> bool:
    """Whether a heartbeat indicates a live daemon.

    The single definition of liveness — used both by ``repro status`` and by
    a starting daemon deciding whether ``running`` spool records belong to a
    live sibling; the two must never disagree.  A slow-polling daemon
    heartbeats rarely, so the threshold scales with its poll interval.
    """
    if heartbeat.get("stopped"):
        return False
    age = time.time() - float(heartbeat.get("updated_at", 0.0))
    return age < max(STALE_HEARTBEAT_SECONDS, 3.0 * float(heartbeat.get("poll_interval", 0.0)))


def _jobs_dir(root: Path) -> Path:
    """Base spool directory (shard subdirectories live under it when sharded)."""
    return root / "jobs"


def _round_latency(latency: Optional[float]) -> Optional[float]:
    """Round a submit-to-finish latency for event emission (``None`` passes)."""
    return None if latency is None else round(latency, 6)


def _write_job(layout: SpoolLayout, job: Job) -> None:
    atomic_write_text(layout.job_path(job.job_id), json.dumps(job.to_dict(), indent=2) + "\n")


def _spool_record_paths(layout: SpoolLayout, pattern: str = "*.json") -> List[Path]:
    """Matching spool files across every shard, sorted by file name."""
    paths: List[Path] = []
    for directory in layout.jobs_dirs():
        if directory.exists():
            paths.extend(directory.glob(pattern))
    return sorted(paths, key=lambda path: path.name)


def _load_jobs(root: Path) -> List[Job]:
    jobs = []
    for path in _spool_record_paths(read_layout(root)):
        try:
            jobs.append(Job.from_dict(json.loads(path.read_text(encoding="utf-8"))))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            continue  # half-written or foreign file; the owner will rewrite it
    return jobs


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to run a daemon.

    Attributes
    ----------
    root:
        Service state directory (created on first use).
    backend / workers:
        Execution backend the scheduler dispatches panel batches over.
    poll_interval:
        Seconds between spool scans while idle.
    store_max_bytes:
        LRU size cap of the persistent result store (``None`` = uncapped).
    shards:
        Spool shard count to (migrate to and) serve; ``None`` keeps the
        root's recorded layout (flat when no marker exists).
    """

    root: Union[str, Path]
    backend: str = "serial"
    workers: Optional[int] = None
    poll_interval: float = 0.5
    store_max_bytes: Optional[int] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.shards is not None and not 1 <= self.shards <= MAX_SHARDS:
            raise ValueError(f"shards must be in 1..{MAX_SHARDS}, got {self.shards}")
        self.root = Path(self.root)


class ServiceDaemon:
    """Single-process service: spool in, engine-dispatched solves out."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        root = Path(config.root)
        self.layout = ensure_layout(root, config.shards)
        self.events = EventLog(root, writer=f"daemon-{os.getpid()}-{uuid.uuid4().hex[:6]}")
        self.metrics = MetricsRegistry()
        self.store = ResultStore(root / "store", max_bytes=config.store_max_bytes)
        self.engine = Engine(
            backend=create_backend(config.backend, config.workers),
            cache=SolutionCache(store=self.store),
        )
        self.queue = JobQueue()
        self.scheduler = Scheduler(
            self.queue,
            self.engine,
            on_claim=self._on_claim,
            on_batch=self._on_batch,
            metrics=self.metrics,
            events=self.events,
        )
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self._started_at = time.time()
        self._last_heartbeat = 0.0
        # Jobs that reached a terminal status outside the scheduler (cancel
        # before claim, crash recovery out of attempts); drained by run() so
        # they count toward --max-jobs like any other finished job.
        self._finished_outside = 0
        # Terminal spool records already accounted for, keyed by record
        # mtime: a record rewritten later (id reused after a purge) no
        # longer matches and is re-read instead of skipped forever.
        self._spool_done: Dict[str, int] = {}
        # Crash recovery of 'running' records runs once, at startup, before
        # this daemon's own heartbeat exists; see poll_spool.
        self._recover_running = not self._other_daemon_alive()

    def _other_daemon_alive(self) -> bool:
        """Best-effort check for a live sibling daemon on this root."""
        try:
            heartbeat = json.loads(
                (Path(self.config.root) / "service.json").read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return False
        if heartbeat.get("pid") == os.getpid():
            return False
        return heartbeat_is_fresh(heartbeat)

    def _mark_spool_done(self, job_id: str) -> None:
        """Remember a terminal record by id + current mtime."""
        try:
            self._spool_done[job_id] = self.layout.job_path(job_id).stat().st_mtime_ns
        except OSError:
            self._spool_done.pop(job_id, None)

    # -- spool synchronisation ----------------------------------------------------

    def poll_spool(self) -> int:
        """Pick up new job records and cancellation markers; returns new jobs.

        Record filenames are the job ids, so files whose job the daemon
        already tracks — and terminal records remembered from earlier scans
        (validated by mtime, so a purged-and-resubmitted id is noticed) —
        are skipped without being re-read; an idle daemon's poll cost stays
        proportional to *new* work, not spool history.

        ``running`` records are recovered (re-queued, or failed when out of
        attempts) only during the startup scan, and only when no sibling
        daemon's heartbeat is fresh: a steady-state daemon treats foreign
        running records as owned elsewhere rather than stealing them.
        """
        picked_up = 0
        adopt_stray_records(self.layout)
        records = _spool_record_paths(self.layout)
        # Forget remembered records whose file was purged, both to bound the
        # dict in a serve-forever daemon and so a later reuse of the job id
        # is treated as the brand-new submission it is.
        stems = {path.stem for path in records}
        self._spool_done = {
            job_id: mtime for job_id, mtime in self._spool_done.items() if job_id in stems
        }
        for path in records:
            job_id = path.stem
            if self.queue.get(job_id) is not None:
                continue
            done_mtime = self._spool_done.get(job_id)
            if done_mtime is not None:
                try:
                    if path.stat().st_mtime_ns == done_mtime:
                        continue
                except OSError:
                    continue  # record vanished (purged); forget it below
            try:
                job = Job.from_dict(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue  # half-written or foreign file; retried next poll
            if job.job_id != job_id:
                continue  # foreign record; never treat it as this spool entry
            if job.is_terminal:
                self._mark_spool_done(job_id)  # finished before we ever ran it
                continue
            self._spool_done.pop(job_id, None)  # active again (id reuse)
            if job.status == "running":
                if not self._recover_running:
                    continue  # another daemon may own it; never steal mid-run
                # A previous daemon died mid-job.  The claim was persisted
                # (attempts included), so the retry budget binds across
                # crashes: out of attempts means failed, not an endless
                # crash loop.
                if job.attempts >= job.max_attempts:
                    job.status = "failed"
                    job.error = job.error or (
                        f"daemon died during attempt {job.attempts}/{job.max_attempts}"
                    )
                    _write_job(self.layout, job)
                    self._mark_spool_done(job_id)
                    self.jobs_failed += 1
                    self._finished_outside += 1
                    self.events.emit("reclaimed", job=job_id, status="failed")
                    continue
                job.status = "queued"
            self.queue.submit(job)
            _write_job(self.layout, job)
            picked_up += 1
        self._recover_running = False  # startup scan is over
        for marker in _spool_record_paths(self.layout, "*.cancel"):
            self._consume_cancel_marker(marker)
        return picked_up

    def _consume_cancel_marker(self, marker: Path) -> None:
        """Apply one ``.cancel`` marker; remove it once it can have no effect.

        A marker for a still-active job is consumed after raising the cancel
        flag (queued jobs flip to ``cancelled`` immediately, running jobs at
        the next batch boundary).  A marker whose job record exists but is
        not loaded yet (submit + cancel racing one poll) is *left in place*
        for the next poll; only markers for finished or purged jobs are
        removed as no-ops.
        """
        job_id = marker.stem
        job = self.queue.get(job_id)
        if job is None:
            if job_id not in self._spool_done and self.layout.job_path(job_id).exists():
                return  # record lands in the queue next poll; keep the marker
        elif self.queue.cancel(job_id):
            job = self.queue.get(job_id)
            if job is not None:
                # Persist immediately — terminal status for queued jobs, the
                # raised cancel_requested flag for running ones — so the
                # cancel survives a daemon crash before the job finishes.
                _write_job(self.layout, job)
                if job.is_terminal:  # cancelled before it was ever claimed
                    self._mark_spool_done(job_id)
                    self.jobs_cancelled += 1
                    self._finished_outside += 1
                    self.events.emit("released", job=job_id, status="cancelled")
        try:
            marker.unlink()
        except OSError:
            pass

    # -- scheduler hooks ----------------------------------------------------------

    def _on_claim(self, job: Job) -> None:
        """Persist the running record (attempts included) before execution.

        This is what makes ``max_attempts`` bind across daemon crashes: a
        poison job that kills the process leaves a ``running`` record with
        its incremented attempt count, which the next daemon re-queues —
        and eventually fails — instead of restarting from zero forever.
        """
        _write_job(self.layout, job)
        self.events.emit(
            "claimed",
            job=job.job_id,
            worker=self.scheduler.worker_id,
            attempt=job.attempts,
            shard=self.layout.shard_tag(job.job_id),
        )

    def _on_batch(self, job: Job) -> None:
        """Between-batch pulse: honour fresh cancel markers, stay alive.

        Without this, a single long job would make the daemon deaf to
        ``repro cancel`` and let its heartbeat go stale mid-execution.
        """
        marker = self.layout.cancel_path(job.job_id)
        if marker.exists():
            self._consume_cancel_marker(marker)
        self._heartbeat()

    def _heartbeat(self, stopped: bool = False, force: bool = False) -> None:
        """Write the liveness file; throttled, since it scans the store.

        Computing the store section walks the blob directory, so idle polls
        and per-batch pulses reuse the last heartbeat until at least one
        poll interval has passed; job completions and shutdown force a
        fresh one.
        """
        now = time.time()
        if not force and now - self._last_heartbeat < max(1.0, self.config.poll_interval):
            return
        self._last_heartbeat = now
        stats = self.engine.cache_stats()
        entries, total_bytes = self.store.disk_usage()
        payload = {
            "pid": os.getpid(),
            "started_at": self._started_at,
            "updated_at": now,
            "poll_interval": self.config.poll_interval,
            "stopped": stopped,
            "backend": self.engine.backend.name,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "store_hits": stats.store_hits,
                "hit_rate": round(stats.hit_rate, 4),
            },
            "store": {
                "entries": entries,
                "bytes": total_bytes,
                "stats": str(self.store.stats()),
            },
        }
        atomic_write_text(
            Path(self.config.root) / "service.json", json.dumps(payload, indent=2) + "\n"
        )
        if force:
            # Metrics snapshots ride the *forced* heartbeats only (job
            # completions, shutdown), so an idle daemon appends nothing.
            self.metrics.gauge("cache.hits").set(stats.hits)
            self.metrics.gauge("cache.misses").set(stats.misses)
            self.metrics.gauge("cache.store_hits").set(stats.store_hits)
            self.metrics.gauge("spool.queued").set(len(self.queue))
            self.store.persist_stats()
            self.events.emit("metrics", nonce=self.events.nonce, metrics=self.metrics.snapshot())

    # -- main loop ----------------------------------------------------------------

    def step(self) -> Optional[Job]:
        """One poll-and-execute cycle; returns the job run, if any."""
        self.poll_spool()
        job = self.scheduler.run_once()
        if job is not None:
            if job.status == "done":
                self.jobs_done += 1
            elif job.status == "failed":
                self.jobs_failed += 1
            elif job.status == "cancelled":
                self.jobs_cancelled += 1
            _write_job(self.layout, job)
            if job.is_terminal:
                self._mark_spool_done(job.job_id)
            self.events.emit(
                "released",
                job=job.job_id,
                worker=self.scheduler.worker_id,
                status=job.status,
                latency=_round_latency(job.latency_seconds()),
            )
        if job is not None or self._finished_outside:
            # Spool records are now the source of truth for finished jobs;
            # keeping the objects would grow a serve-forever daemon without
            # bound.
            self.queue.prune_terminal()
        self._heartbeat(force=job is not None)
        return job

    def run(
        self,
        max_jobs: Optional[int] = None,
        idle_exit: Optional[float] = None,
    ) -> int:
        """Serve until ``max_jobs`` executions finished or idle too long.

        ``idle_exit`` is the number of seconds without runnable work after
        which the daemon exits (``None`` serves forever).  Returns the
        number of job executions that reached a terminal status.
        """
        finished = 0
        idle_since: Optional[float] = None
        while True:
            job = self.step()
            # Jobs terminalized outside the scheduler (cancelled while
            # queued, failed by crash recovery) count as finished work too —
            # otherwise a --max-jobs daemon whose only jobs were cancelled
            # would spin forever.
            outside = self._finished_outside
            self._finished_outside = 0
            finished += outside
            if job is not None and job.is_terminal:
                finished += 1
            if max_jobs is not None and finished >= max_jobs:
                break
            if job is not None or outside:
                idle_since = None
                continue
            now = time.time()
            if idle_since is None:
                idle_since = now
            if idle_exit is not None and now - idle_since >= idle_exit:
                # A submission can land between step()'s spool scan and this
                # deadline check (classically: during the final poll sleep).
                # One last scan closes the race — if anything new arrived,
                # the daemon serves it instead of exiting under it.
                if self.poll_spool() or self._finished_outside:
                    idle_since = None
                    continue
                break
            time.sleep(self.config.poll_interval)
        self.engine.shutdown()
        # A fresh-but-final heartbeat is not liveness; mark it stopped.
        self._heartbeat(stopped=True, force=True)
        return finished


# -- client-side helpers (used by the CLI verbs) ---------------------------------------


@dataclass
class SubmitRequest:
    """One validated-on-submit job submission (the unit `submit_jobs` batches)."""

    scenario: str
    params: Optional[Dict[str, object]] = None
    priority: int = 0
    max_attempts: int = 2
    job_id: Optional[str] = None


def submit_jobs(
    root: Union[str, Path],
    requests: List[SubmitRequest],
    events: Optional[EventLog] = None,
) -> List[Job]:
    """Validate and drop a batch of job records into the spool.

    The batched entry point behind both ``submit_job`` and the gateway's
    micro-batcher: the spool layout is read once, shard directories are
    created once each, and one event-log handle emits every ``submitted``
    event — so a burst of N submissions does not pay N times the
    per-submission setup cost on the atomic-rename hot path.

    The whole batch is validated (scenario, params, duplicate job ids —
    against the spool *and* within the batch) before any record is
    written; a bad request therefore rejects the batch with nothing
    half-submitted.  Pass ``events`` to attribute the ``submitted``
    events to a specific writer (the gateway does); the default is this
    process's shared client log.
    """
    root = Path(root)
    layout = read_layout(root)
    jobs: List[Job] = []
    seen_ids: set = set()
    for request in requests:
        params = dict(request.params or {})
        scenario_spec(request.scenario).with_params(params)  # fail fast, before any write
        job = Job(
            job_id=request.job_id or f"{request.scenario}-{uuid.uuid4().hex[:8]}",
            scenario=request.scenario,
            params=params,
            priority=request.priority,
            max_attempts=request.max_attempts,
        )
        if job.job_id in seen_ids or layout.job_path(job.job_id).exists():
            raise ValueError(f"job id {job.job_id!r} already exists in {root}")
        seen_ids.add(job.job_id)
        jobs.append(job)
    log = events if events is not None else event_log_for(root)
    made_dirs: set = set()
    for job in jobs:
        record = layout.job_path(job.job_id)
        if record.parent not in made_dirs:
            record.parent.mkdir(parents=True, exist_ok=True)
            made_dirs.add(record.parent)
        _write_job(layout, job)
        log.emit(
            "submitted",
            job=job.job_id,
            scenario=job.scenario,
            priority=job.priority,
            shard=layout.shard_tag(job.job_id),
        )
    return jobs


def submit_job(
    root: Union[str, Path],
    scenario: str,
    params: Optional[Dict[str, object]] = None,
    priority: int = 0,
    max_attempts: int = 2,
    job_id: Optional[str] = None,
) -> Job:
    """Validate and drop one job record into the spool; returns the job."""
    request = SubmitRequest(
        scenario=scenario,
        params=params,
        priority=priority,
        max_attempts=max_attempts,
        job_id=job_id,
    )
    return submit_jobs(root, [request])[0]


def request_cancel(root: Union[str, Path], job_id: str) -> bool:
    """Drop a cancellation marker; True when the job can still be cancelled.

    Missing and already-finished jobs return False without writing a marker
    — reporting success for a job nothing can cancel would mislead the
    operator and leave a stray marker in the spool.  A record that cannot
    be parsed (caught mid-rewrite) is assumed active.  A job absent from
    ``jobs/`` but held under a cluster worker's lease is running — the
    marker is written and the leaseholder honours it at its next batch
    boundary.
    """
    root = Path(root)
    layout = read_layout(root)
    path = layout.job_path(job_id)
    try:
        job = Job.from_dict(json.loads(path.read_text(encoding="utf-8")))
    except FileNotFoundError:
        # Claimed by a cluster worker?  The record then lives in a lease.
        if not layout.lease_files(job_id):
            return False
        job = None
    except (OSError, json.JSONDecodeError, KeyError, ValueError):
        job = None
    if job is not None and job.is_terminal:
        return False
    marker = layout.cancel_path(job_id)
    marker.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(marker, "")
    event_log_for(root).emit("cancel-requested", job=job_id, shard=layout.shard_tag(job_id))
    return True


def wait_for_job(
    root: Union[str, Path], job_id: str, timeout: float = 60.0, interval: float = 0.2
) -> Job:
    """Poll the spool until the job reaches a terminal status.

    Raises ``TimeoutError`` when the deadline passes first (the job record's
    last observed state is attached to the message).
    """
    root = Path(root)
    deadline = time.monotonic() + timeout
    job: Optional[Job] = None
    while True:
        # Re-resolve the layout each poll: a `serve --shards N` migration
        # may legitimately move the record mid-wait.
        path = read_layout(root).job_path(job_id)
        try:
            job = Job.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            job = None  # missing or mid-rewrite; retry
        if job is not None and job.is_terminal:
            return job
        remaining = deadline - time.monotonic()
        # The read comes first and the loop exits *after* a final read, so a
        # job finishing during the last sleep is still reported as finished.
        if remaining <= 0:
            break
        time.sleep(min(interval, remaining))
    state = "missing" if job is None else job.status
    raise TimeoutError(f"job {job_id!r} still {state} after {timeout:.1f}s")


def _load_leased_jobs(root: Path) -> List[Job]:
    """Jobs currently held under cluster worker leases (all ``running``)."""
    jobs: List[Job] = []
    for path, _worker_id, _shard in read_layout(root).iter_lease_files():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            record = payload.get("job", payload) if isinstance(payload, dict) else None
            jobs.append(Job.from_dict(record))
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            continue  # mid-claim or mid-rewrite; the next status call sees it
    return jobs


def service_status(root: Union[str, Path], with_health: bool = False) -> Dict[str, object]:
    """Snapshot of the whole service directory (daemon, jobs, store, cache).

    Pure reads — safe to call while a daemon is serving, and meaningful when
    none is (``daemon.alive`` is False and job records speak for
    themselves).  On a cluster root, jobs claimed under leases are reported
    as ``running`` and a ``cluster`` section carries per-worker liveness,
    throughput and the active leases.

    Thin wrapper over :class:`repro.obs.snapshot.ServiceSnapshot` — the one
    typed structure behind ``status``, ``status --cluster`` and ``status
    --json``; the returned dict shape is the snapshot's ``to_dict`` and is
    unchanged from the pre-snapshot service layer.  ``with_health=True``
    additionally folds the fleet health model in (a ``health`` key appears
    in the returned dict only when requested).
    """
    return ServiceSnapshot.collect(root, with_health=with_health).to_dict()


def _sweep_dead_workers(root: Path) -> int:
    """Remove heartbeats + empty lease dirs of workers that are gone.

    Every worker process leaves a uuid-suffixed heartbeat and lease
    directory behind; on a long-lived root these grow with restart churn,
    and the reclaim scan and ``status --cluster`` pay for all of them
    forever.  Only workers that are *not* alive are swept, and only once
    their lease directory is empty — pending leases keep both so reclaim
    still sees the owner's staleness.  Returns heartbeats removed.
    """
    # Imported lazily: the cluster module builds on this one.
    from repro.service.cluster import worker_is_alive

    removed = 0
    layout = read_layout(root)
    workers_dir = root / "workers"
    for heartbeat_path in sorted(workers_dir.glob("*.json")) if workers_dir.exists() else []:
        try:
            heartbeat = json.loads(heartbeat_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(heartbeat, dict) or worker_is_alive(heartbeat):
            continue
        # A worker holds one lease directory per shard; the heartbeat may
        # only go once every one of them is empty (or already gone) — a
        # pending lease in *any* shard still needs the owner's staleness.
        blocked = False
        for lease_dir in layout.worker_lease_dirs(heartbeat_path.stem):
            if not lease_dir.exists():
                continue
            try:
                lease_dir.rmdir()  # only ever removes an *empty* directory
            except OSError:
                blocked = True
                break  # stale leases pending reclaim; keep the heartbeat
        if blocked:
            continue
        try:
            heartbeat_path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def gc_service(
    root: Union[str, Path],
    max_bytes: Optional[int] = None,
    purge_jobs: bool = False,
) -> Dict[str, int]:
    """Evict the store down to ``max_bytes`` and optionally purge old jobs.

    ``purge_jobs`` removes the records of terminal jobs (their results are
    gone from ``repro status`` afterwards — the solved layouts themselves
    stay in the store).  Dead cluster workers' heartbeats and empty lease
    directories are always swept (live workers and pending leases are
    untouchable).  Returns ``{"evicted_blobs", "purged_jobs",
    "purged_workers"}``.

    Eviction works on the blob files directly (:func:`evict_lru_blobs`)
    rather than opening a :class:`ResultStore` — opening rewrites metadata
    and clears the blobs wholesale on a version mismatch, which a
    maintenance command run from a different checkout must never do to a
    live daemon's cache.
    """
    root = Path(root)
    layout = read_layout(root)
    evicted = 0
    if max_bytes is not None and (root / "store").exists():
        evicted, _total = evict_lru_blobs(root / "store" / "blobs", max_bytes)
    purged = 0
    if purge_jobs and _jobs_dir(root).exists():
        for job in _load_jobs(root):
            if job.is_terminal:
                try:
                    layout.job_path(job.job_id).unlink()
                    purged += 1
                except OSError:
                    pass
        # Orphaned cancel markers (their job finished before the cancel was
        # seen, or was purged above) would instantly cancel a future
        # resubmission reusing the id; sweep them with the records — across
        # *every* shard, since a marker lives beside its job's record.  A
        # marker whose job is claimed under a cluster lease is *pending*,
        # not orphaned — the leaseholder honours it at its next batch
        # boundary, so it must survive the sweep.
        for marker in _spool_record_paths(layout, "*.cancel"):
            if layout.job_path(marker.stem).exists():
                continue
            if layout.lease_files(marker.stem):
                continue
            try:
                marker.unlink()
            except OSError:
                pass
    purged_workers = _sweep_dead_workers(root)
    result = {"evicted_blobs": evicted, "purged_jobs": purged, "purged_workers": purged_workers}
    event_log_for(root).emit("gc", **result)
    return result
