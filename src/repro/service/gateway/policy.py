"""Backpressure policy for the gateway tier: plain, socket-free classes.

The HTTP server in :mod:`repro.service.gateway.server` is a thin shell
around three decisions, each made by a class in this module so tier-1
tests can cover the policy math without opening a socket:

* :class:`TokenBucket` / :class:`TokenBucketTable` — *may this client
  submit right now?*  Classic token bucket: ``rate`` tokens/second refill
  up to a ``burst`` cap; an empty bucket answers with the exact number of
  seconds until the next token, which the server surfaces as
  ``Retry-After``.
* :class:`AdmissionQueue` — *is there room to hold the submission until
  the batcher drains it?*  A bounded FIFO; ``offer`` never blocks, it
  just says no when full (the server turns that into a 429).
* :class:`MicroBatcher` — *when do queued submissions hit the spool?*
  Accumulates admitted items and releases them as one batch either when
  ``max_batch`` is reached (flush-on-size) or when the oldest item has
  waited ``max_delay`` seconds (flush-on-deadline), so a burst of N
  submissions costs one spool-layout read and one executor hop instead
  of N.

All classes take explicit ``now`` timestamps instead of reading the
clock, which makes refill/deadline math deterministic under test.  None
of them lock: the gateway drives them from a single asyncio event loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional


class TokenBucket:
    """Token bucket with ``rate`` tokens/second refill and a ``burst`` cap.

    ``acquire`` returns ``0.0`` when a token was taken, else the number of
    seconds until enough tokens will have accrued (and takes nothing).
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"token bucket rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"token bucket burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at: Optional[float] = None

    def acquire(self, now: float, cost: float = 1.0) -> float:
        """Try to take ``cost`` tokens at monotonic time ``now``.

        Returns 0.0 on success, otherwise the seconds until the bucket
        will hold ``cost`` tokens (a ``Retry-After`` hint); the caller's
        budget is untouched on rejection.
        """
        if self.updated_at is not None:
            elapsed = max(0.0, now - self.updated_at)
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


class TokenBucketTable:
    """Per-client token buckets, bounded by LRU eviction.

    Clients are keyed by whatever string the server chooses (the
    ``X-Repro-Client`` header, falling back to peer IP).  At most
    ``max_clients`` buckets are kept; the least-recently-seen client is
    evicted first, which resets its budget — acceptable, because an
    evicted client is by definition one that has not submitted recently.
    """

    def __init__(self, rate: float, burst: float, max_clients: int = 1024) -> None:
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def acquire(self, client: str, now: float, cost: float = 1.0) -> float:
        """Token-bucket ``acquire`` against ``client``'s bucket (created on first use)."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.acquire(now, cost)

    def __len__(self) -> int:
        return len(self._buckets)


class AdmissionQueue:
    """Bounded FIFO between the HTTP handlers and the batcher.

    ``offer`` is non-blocking: it returns False when the queue is at
    capacity, and the server answers 429 (queue full).  ``take`` pops in
    arrival order, so admitted submissions reach the spool in the order
    their clients were told "accepted".
    """

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError(f"admission queue depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.accepted = 0
        self.rejected = 0
        self._items: List[Any] = []

    @property
    def capacity(self) -> int:
        return self.max_depth

    def offer(self, item: Any) -> bool:
        """Append ``item`` if there is room; False (and nothing queued) otherwise."""
        if len(self._items) >= self.max_depth:
            self.rejected += 1
            return False
        self._items.append(item)
        self.accepted += 1
        return True

    def take(self, limit: Optional[int] = None) -> List[Any]:
        """Pop up to ``limit`` items (all, when None) in FIFO order."""
        if limit is None or limit >= len(self._items):
            items, self._items = self._items, []
            return items
        items = self._items[:limit]
        del self._items[:limit]
        return items

    def __len__(self) -> int:
        return len(self._items)


class MicroBatcher:
    """Accumulate admitted submissions into spool-write batches.

    ``add`` returns a full batch the moment ``max_batch`` items have
    accumulated; otherwise items wait until ``poll`` sees the oldest one
    exceed ``max_delay`` seconds.  ``next_deadline`` tells the event loop
    how long it may sleep before a deadline flush is due.
    """

    def __init__(self, max_batch: int, max_delay: float) -> None:
        if max_batch < 1:
            raise ValueError(f"batch size must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"batch delay must be >= 0, got {max_delay}")
        self.max_batch = max_batch
        self.max_delay = float(max_delay)
        self.batches = 0
        self._items: List[Any] = []
        self._oldest: Optional[float] = None

    def add(self, item: Any, now: float) -> Optional[List[Any]]:
        """Buffer ``item``; returns the batch when it reaches ``max_batch``."""
        if not self._items:
            self._oldest = now
        self._items.append(item)
        if len(self._items) >= self.max_batch:
            return self.flush()
        return None

    def poll(self, now: float) -> Optional[List[Any]]:
        """Returns the pending batch if the oldest item is past ``max_delay``."""
        if self._items and self._oldest is not None and now - self._oldest >= self.max_delay:
            return self.flush()
        return None

    def next_deadline(self) -> Optional[float]:
        """Monotonic time of the pending deadline flush, or None when empty."""
        if not self._items or self._oldest is None:
            return None
        return self._oldest + self.max_delay

    def flush(self) -> List[Any]:
        """Release whatever is buffered (possibly empty) as one batch."""
        items, self._items = self._items, []
        self._oldest = None
        if items:
            self.batches += 1
        return items

    def __len__(self) -> int:
        return len(self._items)

    def to_dict(self) -> Dict[str, int]:
        return {"pending": len(self._items), "max_batch": self.max_batch, "batches": self.batches}
