"""HTTP load generator: N concurrent stdlib clients against a live gateway.

``repro loadgen --http URL`` drives the gateway the way remote users
will — concurrent keep-alive connections, distinct ``X-Repro-Client``
identities, polite 429 handling (sleep for ``Retry-After``, retry) — and
reports what the spool-level loadgen reports for local bursts: submit
latency percentiles, admission counts, and observed rejections.  The
same entry point backs ``benchmarks/bench_gateway.py``, so the CI
regression gate and the smoke job measure identical client behaviour.

Stdlib-only by design (``http.client`` + threads): the load generator
must run anywhere the gateway does, including the CI runner that just
pip-installed nothing but the package itself.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.service.scenarios import scenario_spec

#: Job statuses that end a wait-for-completion poll.
TERMINAL_STATUSES = frozenset({"done", "failed", "cancelled"})


def _nearest_rank(values: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile (same convention as the spool loadgen)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, min(len(ordered), round(fraction * len(ordered) + 0.5)))
    return ordered[rank - 1]


@dataclass
class HttpLoadgenReport:
    """What a ``loadgen --http`` burst saw, from the clients' side of the wire."""

    url: str
    scenario: str
    clients: int
    attempted: int = 0
    admitted: int = 0
    rejected_429: int = 0
    errors: int = 0
    retry_after_max: float = 0.0
    wall_seconds: float = 0.0
    waited: bool = False
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    timed_out: int = 0
    job_ids: List[str] = field(default_factory=list)
    submit_latencies: List[float] = field(default_factory=list)

    def submit_percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile of per-request submit latency (seconds)."""
        return _nearest_rank(self.submit_latencies, fraction)

    @property
    def submit_rate(self) -> float:
        """Admitted submissions per wall-clock second."""
        return self.admitted / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "url": self.url,
            "scenario": self.scenario,
            "clients": self.clients,
            "attempted": self.attempted,
            "admitted": self.admitted,
            "rejected_429": self.rejected_429,
            "errors": self.errors,
            "retry_after_max": round(self.retry_after_max, 3),
            "wall_seconds": round(self.wall_seconds, 6),
            "submit_rate": round(self.submit_rate, 3),
            "submit_p50": self.submit_percentile(0.50),
            "submit_p90": self.submit_percentile(0.90),
            "submit_p99": self.submit_percentile(0.99),
            "waited": self.waited,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
        }


class _Client(threading.Thread):
    """One keep-alive HTTP client submitting its slice of the burst."""

    def __init__(
        self,
        index: int,
        url: str,
        scenario: str,
        payloads: List[Dict[str, object]],
        deadline: float,
        retry_429: bool,
        client_prefix: str,
    ) -> None:
        super().__init__(name=f"http-loadgen-{index}", daemon=True)
        self.client_id = f"{client_prefix}-{index}"
        self.url = url
        self.scenario = scenario
        self.payloads = payloads
        self.deadline = deadline
        self.retry_429 = retry_429
        self.admitted: List[str] = []
        self.latencies: List[float] = []
        self.rejected_429 = 0
        self.errors = 0
        self.retry_after_max = 0.0

    def run(self) -> None:
        connection = _connect(self.url)
        try:
            for payload in self.payloads:
                self._submit_one(connection, payload)
        finally:
            connection.close()

    def _submit_one(self, connection: http.client.HTTPConnection, payload: Dict[str, object]):
        body = json.dumps(payload)
        while True:
            started = time.monotonic()
            try:
                connection.request(
                    "POST",
                    "/v1/jobs",
                    body=body,
                    headers={
                        "Content-Type": "application/json",
                        "X-Repro-Client": self.client_id,
                    },
                )
                response = connection.getresponse()
                data = response.read()
            except (OSError, http.client.HTTPException):
                self.errors += 1
                connection.close()  # reconnect lazily on the next request
                return
            if response.status == 202:
                self.latencies.append(time.monotonic() - started)
                try:
                    self.admitted.append(json.loads(data)["job_id"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.errors += 1
                return
            if response.status == 429:
                self.rejected_429 += 1
                retry_after = float(response.getheader("Retry-After") or 1.0)
                self.retry_after_max = max(self.retry_after_max, retry_after)
                if not self.retry_429 or time.monotonic() + retry_after > self.deadline:
                    return
                time.sleep(retry_after)
                continue
            self.errors += 1
            return


def _connect(url: str) -> http.client.HTTPConnection:
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"loadgen --http supports http:// URLs only, got {url!r}")
    host = parts.hostname or "127.0.0.1"
    return http.client.HTTPConnection(host, parts.port or 80, timeout=30.0)


def _build_payloads(
    scenario: str,
    jobs: int,
    params: Optional[Dict[str, object]],
    priority: int = 0,
    max_attempts: int = 2,
) -> List[Dict[str, object]]:
    """One submission body per job, with seeds strided like the spool loadgen.

    Seed striding keeps N concurrent submissions from collapsing into one
    cache entry; it only applies when the scenario (as known locally) has
    a ``seed`` param and the caller did not pin one.  A scenario the
    client build does not know still submits fine — the gateway is the
    validator of record.
    """
    base_params = dict(params or {})
    stride_seeds = False
    base_seed = 0
    if "seed" not in base_params:
        try:
            spec = scenario_spec(scenario)
        except KeyError:
            spec = None
        stride_seeds = spec is not None and hasattr(spec, "seed")
        base_seed = int(getattr(spec, "seed", 0) or 0)
    payloads = []
    for index in range(jobs):
        job_params = dict(base_params)
        if stride_seeds:
            job_params["seed"] = base_seed + index
        payloads.append(
            {
                "scenario": scenario,
                "params": job_params,
                "priority": priority,
                "max_attempts": max_attempts,
            }
        )
    return payloads


def run_http_loadgen(
    url: str,
    scenario: str = "smoke",
    jobs: int = 8,
    clients: int = 4,
    params: Optional[Dict[str, object]] = None,
    priority: int = 0,
    max_attempts: int = 2,
    wait: bool = False,
    timeout: float = 120.0,
    retry_429: bool = True,
    client_prefix: str = "loadgen",
) -> HttpLoadgenReport:
    """Submit ``jobs`` jobs through ``clients`` concurrent HTTP clients.

    Each client carries a distinct ``X-Repro-Client`` identity, so the
    gateway's per-client buckets see ``clients`` independent budgets —
    exactly what a real multi-tenant burst looks like.  With
    ``retry_429`` (the default) clients honour ``Retry-After`` and
    resubmit until the shared ``timeout`` deadline; with ``wait`` the
    report additionally polls ``GET /v1/jobs/<id>`` until every admitted
    job reaches a terminal status (requires a live worker fleet).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    clients = min(clients, jobs)
    payloads = _build_payloads(scenario, jobs, params, priority, max_attempts)
    deadline = time.monotonic() + timeout
    slices: List[List[Dict[str, object]]] = [payloads[i::clients] for i in range(clients)]
    workers = [
        _Client(index, url, scenario, slice_, deadline, retry_429, client_prefix)
        for index, slice_ in enumerate(slices)
    ]
    started = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=max(0.0, deadline - time.monotonic()) + 5.0)
    report = HttpLoadgenReport(url=url, scenario=scenario, clients=clients, attempted=jobs)
    for worker in workers:
        report.admitted += len(worker.admitted)
        report.job_ids.extend(worker.admitted)
        report.submit_latencies.extend(worker.latencies)
        report.rejected_429 += worker.rejected_429
        report.errors += worker.errors
        report.retry_after_max = max(report.retry_after_max, worker.retry_after_max)
    report.wall_seconds = time.monotonic() - started
    if wait:
        report.waited = True
        _wait_for_completion(report, deadline)
    return report


def _wait_for_completion(report: HttpLoadgenReport, deadline: float) -> None:
    """Poll job statuses over HTTP until every admitted job is terminal."""
    connection = _connect(report.url)
    pending = set(report.job_ids)
    tallies = {"done": 0, "failed": 0, "cancelled": 0}
    try:
        while pending and time.monotonic() < deadline:
            for job_id in sorted(pending):
                status = _poll_status(connection, job_id)
                if status in TERMINAL_STATUSES:
                    tallies[status] += 1
                    pending.discard(job_id)
            if pending:
                time.sleep(0.25)
    finally:
        connection.close()
    report.done = tallies["done"]
    report.failed = tallies["failed"]
    report.cancelled = tallies["cancelled"]
    report.timed_out = len(pending)


def _poll_status(connection: http.client.HTTPConnection, job_id: str) -> Optional[str]:
    try:
        connection.request("GET", f"/v1/jobs/{job_id}")
        response = connection.getresponse()
        data = response.read()
        if response.status != 200:
            return None
        status = json.loads(data).get("status")
        return status if isinstance(status, str) else None
    except (OSError, http.client.HTTPException, json.JSONDecodeError):
        connection.close()
        return None


def _format_ms(seconds: Optional[float]) -> str:
    return "n/a" if seconds is None else f"{seconds * 1000.0:.1f}ms"


def format_http_loadgen_report(report: HttpLoadgenReport) -> List[str]:
    """Human-readable (and CI-greppable) lines for one HTTP burst."""
    lines = []
    if report.waited:
        lines.append(
            f"http loadgen: {report.done} done, {report.failed} failed, "
            f"{report.cancelled} cancelled of {report.admitted} admitted"
        )
    else:
        lines.append(
            f"http loadgen: {report.admitted} admitted of {report.attempted} attempted "
            f"(submit only)"
        )
    lines.append(
        f"  submit: {report.admitted}/{report.attempted} in {report.wall_seconds:.2f}s "
        f"({report.submit_rate:.1f} admits/s) over {report.clients} client(s)"
    )
    if report.rejected_429:
        lines.append(
            f"  429 rejected: {report.rejected_429} "
            f"(max Retry-After {report.retry_after_max:.0f}s)"
        )
    else:
        lines.append("  429 rejected: 0")
    lines.append(
        "  submit latency"
        f" p50={_format_ms(report.submit_percentile(0.50))}"
        f" p90={_format_ms(report.submit_percentile(0.90))}"
        f" p99={_format_ms(report.submit_percentile(0.99))}"
    )
    if report.errors or report.timed_out:
        lines.append(f"  errors: {report.errors}, timed out waiting: {report.timed_out}")
    return lines


__all__ = [
    "HttpLoadgenReport",
    "run_http_loadgen",
    "format_http_loadgen_report",
    "TERMINAL_STATUSES",
]
