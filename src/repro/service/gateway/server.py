"""`repro gateway`: the asyncio HTTP/JSON front door to a spool root.

Remote clients submit jobs over plain HTTP instead of writing spool
files, and get pushed back politely when the fleet is saturated::

    POST /v1/jobs                {"scenario": ..., "params": {...}}  -> 202
    GET  /v1/jobs/<id>           spool-record status                 -> 200
    GET  /v1/jobs/<id>/events    chunked JSONL event stream          -> 200
    GET  /healthz                readiness + queue/counter snapshot  -> 200

Admission pipeline for a ``POST /v1/jobs`` (policy classes live in
:mod:`repro.service.gateway.policy`):

1. **Rate limit** — a per-client token bucket (keyed by the
   ``X-Repro-Client`` header, falling back to peer IP).  An empty bucket
   answers ``429`` with ``Retry-After`` equal to the bucket's own
   estimate of when the next token accrues.  Nothing is queued.
2. **Validate** — scenario and params go through the same
   ``scenario_spec(...).with_params`` gate as a local ``repro submit``;
   a bad request is a ``400`` before it costs the spool anything.
3. **Admission queue** — a bounded FIFO between handlers and the
   batcher.  A full queue is the fleet saturated: ``429`` + Retry-After.
4. **Micro-batch** — one background task drains the queue through a
   :class:`~repro.service.gateway.policy.MicroBatcher` and writes each
   batch with one :func:`~repro.service.daemon.submit_jobs` call
   (flush-on-size or flush-on-deadline), so a concurrent burst costs one
   layout read + executor hop per batch instead of per job.  Only after
   the spool write lands does the client get its ``202`` with the job id
   — an accepted submission is durably queued, never in-memory-only.

Everything the front door does is observable: ``gateway-started`` /
``gateway-admitted`` / ``gateway-rejected`` / ``gateway-stopped`` events
in the shared event log, ``gateway.*`` counters/histograms riding
``metrics`` events (merged by ``repro metrics`` like any worker's), and
a ``gateway.json`` heartbeat next to ``service.json`` that gives
``repro status`` its gateway section.

The server is stdlib-only (``asyncio`` + hand-rolled HTTP/1.1: request
line, headers, Content-Length bodies, keep-alive) — deliberately not a
web framework, for the same reason the spool is files: zero new
dependencies between the paper code and its service tier.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.obs.aggregate import MergedEventCursor
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service.daemon import SubmitRequest, submit_jobs
from repro.service.queue import Job
from repro.service.scenarios import scenario_spec
from repro.service.sharding import read_layout
from repro.service.store import atomic_write_text

#: Upper bound on request bodies (a submission is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Bucket edges for the batch-size histogram (jobs per spool write).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Spool statuses after which an event stream stops following a job.
_TERMINAL_STATUSES = frozenset({"done", "failed", "cancelled"})


@dataclass
class GatewayConfig:
    """Tunables for one gateway process (CLI flags map 1:1)."""

    root: Union[str, Path]
    host: str = "127.0.0.1"
    port: int = 8750
    rate: float = 50.0  # tokens/second per client
    burst: float = 100.0  # bucket capacity per client
    queue_depth: int = 256
    batch_max: int = 16
    batch_delay: float = 0.05
    max_clients: int = 1024
    submit_timeout: float = 30.0  # handler wait for its batch to land
    heartbeat_interval: float = 2.0
    stream_poll: float = 0.2  # event-stream follow cadence
    stream_timeout: float = 300.0


@dataclass
class _Pending:
    """One admitted submission waiting for its batch to hit the spool."""

    request: SubmitRequest
    client: str
    future: "asyncio.Future[Job]"
    received_at: float = field(default_factory=time.monotonic)


class _HttpError(Exception):
    """Raised by handlers to short-circuit into a JSON error response."""

    def __init__(self, status: int, message: str, headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Gateway:
    """The HTTP front door; bind with :meth:`start`, tear down with :meth:`stop`.

    All coroutine methods run on one event loop.  The only off-loop work
    is the spool write itself (``submit_fn`` in a thread-pool executor,
    because it is blocking file I/O); ``submit_fn`` is injectable so
    tests can wedge the batcher and observe queue overflow
    deterministically.
    """

    def __init__(
        self,
        config: GatewayConfig,
        submit_fn: Optional[Callable[..., List[Job]]] = None,
    ) -> None:
        from repro.service.gateway.policy import AdmissionQueue, MicroBatcher, TokenBucketTable

        self.config = config
        self.root = Path(config.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.events = EventLog(self.root, writer=f"gateway-{os.getpid()}-{uuid.uuid4().hex[:6]}")
        self.metrics = MetricsRegistry()
        self.buckets = TokenBucketTable(config.rate, config.burst, max_clients=config.max_clients)
        self.queue = AdmissionQueue(config.queue_depth)
        self.batcher = MicroBatcher(config.batch_max, config.batch_delay)
        self._submit_fn = submit_fn or submit_jobs
        self._server: Optional[asyncio.base_events.Server] = None
        self._batch_task: Optional["asyncio.Task[None]"] = None
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._connections: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False
        self._started_at = time.time()
        self._emitted_requests = -1.0  # forces one metrics event at stop even when idle
        self.port = config.port

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the batcher/heartbeat tasks."""
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.config.host, port=self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._batch_task = asyncio.create_task(self._batch_loop())
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        self._write_heartbeat(stopped=False)
        self.events.emit(
            "gateway-started",
            host=self.config.host,
            port=self.port,
            rate=self.config.rate,
            burst=self.config.burst,
            queue_depth=self.config.queue_depth,
            batch_max=self.config.batch_max,
        )

    async def stop(self) -> None:
        """Graceful stop: close the socket, flush admitted work, mark stopped.

        Submissions that were admitted (their clients may already be
        waiting on a 202) are flushed to the spool before the final
        heartbeat, so an accepted job is never lost to a shutdown.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wake is not None:
            self._wake.set()  # let the batch loop observe _stopping and final-flush
        if self._batch_task is not None:
            await self._batch_task
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._emit_metrics()
        self.events.emit(
            "gateway-stopped",
            port=self.port,
            admitted=int(self.metrics.counter("gateway.admitted").value),
            rejected=int(
                self.metrics.counter("gateway.rejected.rate").value
                + self.metrics.counter("gateway.rejected.queue").value
            ),
        )
        self._write_heartbeat(stopped=True)

    # -- batching ----------------------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the admission queue through the micro-batcher until stopped."""
        assert self._wake is not None
        while not self._stopping:
            deadline = self.batcher.next_deadline()
            try:
                if deadline is None:
                    await self._wake.wait()
                else:
                    timeout = max(0.0, deadline - time.monotonic())
                    await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            await self._drain()
        await self._drain(final=True)

    async def _drain(self, final: bool = False) -> None:
        now = time.monotonic()
        for pending in self.queue.take():
            batch = self.batcher.add(pending, now)
            if batch:
                await self._write_batch(batch)
        due = self.batcher.flush() if final else self.batcher.poll(time.monotonic())
        if due:
            await self._write_batch(due)

    async def _write_batch(self, batch: List[_Pending]) -> None:
        """One spool write for the whole batch; resolve every waiting handler."""
        loop = asyncio.get_running_loop()
        requests = [pending.request for pending in batch]
        started = time.monotonic()
        try:
            jobs = await loop.run_in_executor(
                None, lambda: self._submit_fn(self.root, requests, events=self.events)
            )
        except Exception as exc:  # noqa: BLE001 - any submit failure fails the batch
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(
                        _HttpError(500, f"spool write failed: {exc}")
                    )
            return
        elapsed = time.monotonic() - started
        self.metrics.counter("gateway.batches").inc()
        self.metrics.histogram("gateway.batch.jobs", bounds=BATCH_SIZE_BUCKETS).observe(
            float(len(batch))
        )
        self.metrics.histogram("gateway.submit.seconds").observe(elapsed)
        for pending, job in zip(batch, jobs):
            latency = time.monotonic() - pending.received_at
            self.metrics.counter("gateway.admitted").inc()
            self.metrics.histogram("gateway.admit.seconds").observe(latency)
            self.events.emit(
                "gateway-admitted",
                job=job.job_id,
                client=pending.client,
                batch=len(batch),
                latency=round(latency, 6),
            )
            if not pending.future.done():
                pending.future.set_result(job)
        # Refresh the heartbeat per batch, so `repro status` sees counters
        # move with traffic instead of lagging one heartbeat interval.
        self._write_heartbeat(stopped=False)

    # -- heartbeat / observability -----------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            self._write_heartbeat(stopped=False)
            self._emit_metrics()

    def _emit_metrics(self) -> None:
        """Append a metrics snapshot event, but only when traffic moved."""
        requests = self.metrics.counter("gateway.requests").value
        if requests == self._emitted_requests:
            return
        self._emitted_requests = requests
        self.events.emit("metrics", nonce=self.events.nonce, metrics=self.metrics.snapshot())

    def counters(self) -> Dict[str, int]:
        """Traffic totals for the heartbeat and ``/healthz``."""
        names = (
            "gateway.requests",
            "gateway.admitted",
            "gateway.rejected.rate",
            "gateway.rejected.queue",
            "gateway.batches",
        )
        return {name: int(self.metrics.counter(name).value) for name in names}

    def _write_heartbeat(self, stopped: bool) -> None:
        depth = len(self.queue) + len(self.batcher)
        self.metrics.gauge("gateway.queue.depth").set(depth)
        payload = {
            "pid": os.getpid(),
            "host": self.config.host,
            "port": self.port,
            "started_at": round(self._started_at, 3),
            "updated_at": round(time.time(), 3),
            # heartbeat_is_fresh scales staleness with poll_interval; reuse it.
            "poll_interval": self.config.heartbeat_interval,
            "stopped": stopped,
            "rate": self.config.rate,
            "burst": self.config.burst,
            "queue": {"depth": depth, "capacity": self.queue.capacity},
            "counters": self.counters(),
        }
        atomic_write_text(self.root / "gateway.json", json.dumps(payload, indent=2) + "\n")

    # -- connection handling -----------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        peer = writer.get_extra_info("peername")
        peer_ip = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while not self._stopping:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._send_json(
                        writer, exc.status, {"error": exc.message}, {}, exc.headers
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer, peer_ip)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.CancelledError,
            ConnectionError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; None on clean EOF or idle timeout."""
        try:
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _dispatch(
        self,
        request: Tuple[str, str, Dict[str, str], bytes],
        writer: asyncio.StreamWriter,
        peer_ip: str,
    ) -> bool:
        method, target, headers, body = request
        self.metrics.counter("gateway.requests").inc()
        path = urlsplit(target).path
        query = parse_qs(urlsplit(target).query)
        try:
            if path == "/healthz" and method == "GET":
                return await self._send_json(writer, 200, self._health_payload(), headers)
            if path == "/v1/scenarios" and method == "GET":
                from repro.service.scenarios import list_scenarios

                listing = [{"name": name, "description": desc} for name, desc in list_scenarios()]
                return await self._send_json(writer, 200, {"scenarios": listing}, headers)
            if path == "/v1/jobs" and method == "POST":
                client = headers.get("x-repro-client") or peer_ip
                payload = await self._submit(client, body)
                return await self._send_json(writer, 202, payload, headers)
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/") :]
                if method != "GET":
                    raise _HttpError(405, f"method {method} not allowed")
                if rest.endswith("/events"):
                    await self._stream_events(writer, rest[: -len("/events")], query)
                    return False  # chunked stream ends the connection
                return await self._send_json(writer, 200, self._job_status(rest), headers)
            raise _HttpError(404, f"no route for {method} {path}")
        except _HttpError as exc:
            payload = {"error": exc.message}
            return await self._send_json(writer, exc.status, payload, headers, exc.headers)

    # -- routes ------------------------------------------------------------------------

    def _health_payload(self) -> Dict[str, object]:
        return {
            "status": "stopping" if self._stopping else "ok",
            "root": str(self.root),
            "uptime": round(time.time() - self._started_at, 3),
            "queue": {
                "depth": len(self.queue) + len(self.batcher),
                "capacity": self.queue.capacity,
            },
            "counters": self.counters(),
        }

    async def _submit(self, client: str, body: bytes) -> Dict[str, object]:
        retry_after = self.buckets.acquire(client, time.monotonic())
        if retry_after > 0.0:
            raise self._rejection(client, "rate", retry_after)
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict) or not isinstance(payload.get("scenario"), str):
            raise _HttpError(400, 'body must be a JSON object with a "scenario" string')
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise _HttpError(400, '"params" must be a JSON object')
        request = SubmitRequest(
            scenario=payload["scenario"],
            params=params,
            priority=int(payload.get("priority", 0)),
            max_attempts=int(payload.get("max_attempts", 2)),
            job_id=payload.get("job_id"),
        )
        try:
            scenario_spec(request.scenario).with_params(dict(params))
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid submission: {exc}")
        assert self._wake is not None
        future: "asyncio.Future[Job]" = asyncio.get_running_loop().create_future()
        pending = _Pending(request=request, client=client, future=future)
        if not self.queue.offer(pending):
            raise self._rejection(client, "queue", max(self.config.batch_delay, 1.0))
        self._wake.set()
        try:
            job = await asyncio.wait_for(pending.future, timeout=self.config.submit_timeout)
        except asyncio.TimeoutError:
            raise _HttpError(503, "spool write timed out; job may still land")
        return {
            "job_id": job.job_id,
            "status": job.status,
            "scenario": job.scenario,
            "shard": read_layout(self.root).shard_tag(job.job_id),
        }

    def _rejection(self, client: str, reason: str, retry_after: float) -> _HttpError:
        """Record one 429 (counter + event) and build its response."""
        self.metrics.counter(f"gateway.rejected.{reason}").inc()
        self.events.emit(
            "gateway-rejected", client=client, reason=reason, retry_after=round(retry_after, 3)
        )
        seconds = max(1, math.ceil(retry_after))
        message = "rate limit exceeded" if reason == "rate" else "admission queue full"
        return _HttpError(429, f"{message}; retry after {seconds}s", {"Retry-After": str(seconds)})

    def _job_status(self, job_id: str) -> Dict[str, object]:
        """Spool-record view of one job; lease-aware like `repro status`."""
        layout = read_layout(self.root)
        record = layout.job_path(job_id)
        try:
            job = Job.from_dict(json.loads(record.read_text(encoding="utf-8")))
        except FileNotFoundError:
            leases = layout.lease_files(job_id)
            if leases:
                return {"job_id": job_id, "status": "running", "leased": True}
            raise _HttpError(404, f"unknown job {job_id!r}")
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            # Caught mid-rewrite; report the id as known but in flux.
            return {"job_id": job_id, "status": "running", "leased": False}
        info = job.to_dict()
        info["terminal"] = job.status in _TERMINAL_STATUSES
        return info

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str, query: Dict[str, List[str]]
    ) -> None:
        """Chunked JSONL stream of one job's events via the merged reader.

        Replays the job's history from the merged event log, then follows
        until a terminal transition (``released``/``reclaimed`` carrying a
        terminal status, or the job record going terminal), the client
        disconnecting, or ``timeout`` (query param, capped by config).
        """
        follow = query.get("follow", ["1"])[0] not in ("0", "false")
        timeout = min(
            float(query.get("timeout", [self.config.stream_timeout])[0]),
            self.config.stream_timeout,
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        cursor = MergedEventCursor(self.root)
        deadline = time.monotonic() + timeout
        finished = False
        while True:
            for record in cursor.poll():
                if record.get("job") != job_id:
                    continue
                chunk = json.dumps(record, separators=(",", ":")) + "\n"
                data = chunk.encode("utf-8")
                writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
                if record.get("status") in _TERMINAL_STATUSES or record.get("event") in (
                    "done",
                    "failed",
                    "cancelled",
                ):
                    finished = True
            await writer.drain()
            if finished or not follow or self._stopping or time.monotonic() >= deadline:
                break
            status = self._job_status_quiet(job_id)
            if status is not None and status in _TERMINAL_STATUSES:
                # Record went terminal but its event predates our cursor; one
                # more poll already happened above, so close the stream.
                finished = True
                continue
            await asyncio.sleep(self.config.stream_poll)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    def _job_status_quiet(self, job_id: str) -> Optional[str]:
        try:
            payload = self._job_status(job_id)
        except _HttpError:
            return None
        status = payload.get("status")
        return status if isinstance(status, str) else None

    # -- response plumbing -------------------------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        request_headers: Dict[str, str],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> bool:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        keep_alive = request_headers.get("connection", "keep-alive").lower() != "close"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        return keep_alive


class GatewayRunner:
    """Run a :class:`Gateway` on a background thread (tests, benches, embedding).

    ``start`` blocks until the socket is bound (so ``runner.port`` and
    ``runner.url`` are valid immediately); ``stop`` performs the same
    graceful flush as a SIGTERM'd ``repro gateway``.
    """

    def __init__(
        self,
        config: GatewayConfig,
        submit_fn: Optional[Callable[..., List[Job]]] = None,
    ) -> None:
        self.config = config
        self.gateway: Optional[Gateway] = None
        self._submit_fn = submit_fn
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="gateway", daemon=True)

    @property
    def port(self) -> int:
        assert self.gateway is not None
        return self.gateway.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "GatewayRunner":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("gateway failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"gateway failed to start: {self._error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30.0)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.gateway = Gateway(self.config, submit_fn=self._submit_fn)
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        await self.gateway.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.gateway.stop()


def _announce_stdout(line: str) -> None:
    print(line, flush=True)  # flushed so `repro gateway > log &` is tail-able immediately


def run_gateway(
    config: GatewayConfig, announce: Callable[[str], None] = _announce_stdout
) -> Dict[str, int]:
    """Blocking entry point behind ``repro gateway``; returns final counters.

    Installs SIGINT/SIGTERM handlers for a graceful stop (close the
    socket, flush admitted submissions to the spool, write a ``stopped``
    heartbeat) so CI can `kill` the process without losing accepted jobs.
    """
    counters: Dict[str, int] = {}

    async def _main() -> None:
        gateway = Gateway(config)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or unsupported platform
        await gateway.start()
        announce(
            f"gateway listening on http://{config.host}:{gateway.port} "
            f"(root {config.root}, rate {config.rate:g}/s, burst {config.burst:g}, "
            f"queue {config.queue_depth})"
        )
        try:
            await stop.wait()
        finally:
            await gateway.stop()
            counters.update(gateway.counters())

    asyncio.run(_main())
    return counters


def read_gateway_heartbeat(root: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The ``gateway.json`` heartbeat, or None when absent/unreadable."""
    path = Path(root) / "gateway.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


__all__ = [
    "GatewayConfig",
    "Gateway",
    "GatewayRunner",
    "run_gateway",
    "read_gateway_heartbeat",
]
