"""The gateway tier: HTTP front door, backpressure policy, HTTP loadgen.

Split in three so the policy math stays import-light and socket-free:

* :mod:`repro.service.gateway.policy` — token buckets, the bounded
  admission queue, and the micro-batcher (plain classes, explicit
  clocks, fully covered by tier-1 tests).
* :mod:`repro.service.gateway.server` — the asyncio HTTP/1.1 server
  that wires those policies in front of the spool.
* :mod:`repro.service.gateway.loadgen` — concurrent stdlib HTTP
  clients for ``repro loadgen --http`` and ``bench_gateway.py``.
"""

from repro.service.gateway.loadgen import (
    HttpLoadgenReport,
    format_http_loadgen_report,
    run_http_loadgen,
)
from repro.service.gateway.policy import (
    AdmissionQueue,
    MicroBatcher,
    TokenBucket,
    TokenBucketTable,
)
from repro.service.gateway.server import (
    Gateway,
    GatewayConfig,
    GatewayRunner,
    read_gateway_heartbeat,
    run_gateway,
)

__all__ = [
    "AdmissionQueue",
    "Gateway",
    "GatewayConfig",
    "GatewayRunner",
    "HttpLoadgenReport",
    "MicroBatcher",
    "TokenBucket",
    "TokenBucketTable",
    "format_http_loadgen_report",
    "read_gateway_heartbeat",
    "run_gateway",
    "run_http_loadgen",
]
