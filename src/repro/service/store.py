"""Disk-backed, content-addressed store of solved panel layouts.

The in-process :class:`~repro.engine.cache.SolutionCache` evaporates when the
CLI exits, so every new process re-anneals panels the previous run already
solved.  :class:`ResultStore` persists layouts on disk, keyed by the same
content signature (:func:`repro.engine.signature.panel_signature`), and plugs
in as the cache's second tier: a memory miss falls through to the store, a
store hit is promoted back into memory, and every fill is written through.

On-disk format (see DESIGN.md §"Service layer")::

    <root>/
        store.json            # {"format_version", "signature_version"}
        blobs/<sig[:2]>/<sig>.json

Each blob holds one layout as JSON (``null`` marks a shield track) together
with the signature scheme version it was hashed under.  Durability rules:

* **Atomic writes** — blobs and metadata are written to a temporary file in
  the same directory and ``os.replace``-d into place, so a crash mid-write
  can never leave a half-written blob where a reader finds it.
* **Corruption safety** — a blob that fails to parse or fails its integrity
  checks is dropped (and counted) rather than served; the solve simply
  happens again.
* **Versioning** — the store records both its own ``FORMAT_VERSION`` and the
  engine's :data:`~repro.engine.signature.SIGNATURE_VERSION`.  A store
  written under either older version is cleared on open: signatures hashed
  under another scheme can never be looked up again, so stale blobs are dead
  weight, and a cache may always be rebuilt from nothing.
* **LRU eviction** — blob mtimes are refreshed on every hit; when the store
  exceeds ``max_bytes`` the oldest blobs are evicted until it fits.  A
  capped store keeps a per-prefix-bucket byte account (seeded once at open,
  bumped per write), so its gc stats only the buckets eviction may actually
  touch — largest first — instead of re-walking the whole blob tree.

Multiple processes may share one store: writes are atomic renames, reads
tolerate concurrent eviction, content-addressing makes double-writes of the
same signature idempotent, and eviction re-checks each blob's mtime right
before the unlink so a blob a concurrent writer just (re)wrote or served a
hit from is never the one evicted (the cluster's N workers all write and
gc one store).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.signature import SIGNATURE_VERSION, STAGE_SIGNATURE_VERSION

#: Version of the on-disk layout described above; bump on incompatible change.
FORMAT_VERSION = 1

#: Name of the store metadata file at the root.
_META_NAME = "store.json"

#: Directory (under the store root) of per-session cumulative stats files.
_STATS_DIR_NAME = "stats"

Layout = Tuple[Optional[int], ...]


@dataclass(frozen=True)
class StoreStats:
    """Traffic and maintenance counters of a :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0

    def __sub__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            writes=self.writes - other.writes,
            evictions=self.evictions - other.evictions,
            corrupt_dropped=self.corrupt_dropped - other.corrupt_dropped,
        )

    def __add__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writes=self.writes + other.writes,
            evictions=self.evictions + other.evictions,
            corrupt_dropped=self.corrupt_dropped + other.corrupt_dropped,
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
        }

    def __str__(self) -> str:
        parts = f"{self.hits} hits, {self.misses} misses, {self.writes} writes"
        if self.evictions or self.corrupt_dropped:
            parts += f", {self.evictions} evicted, {self.corrupt_dropped} corrupt"
        return parts


_TMP_COUNTER = itertools.count()


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    The temp name embeds the pid *and* a process-wide counter, so
    concurrent writers of one path — other processes, or two threads of
    this one (a worker's execution and pulse threads both refresh its
    heartbeat; thread backends can double-fill one cache blob) — never
    collide on the temp file either.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def bucket_disk_usage(bucket_dir: Path) -> Tuple[int, int]:
    """(entry count, total bytes) of one prefix bucket (``blobs/<sig[:2]>/``)."""
    entries = 0
    total = 0
    for path in bucket_dir.glob("*.json") if bucket_dir.exists() else ():
        try:
            total += path.stat().st_size
        except OSError:
            continue
        entries += 1
    return entries, total


def blob_disk_usage(blobs_dir: Path) -> Tuple[int, int]:
    """(entry count, total bytes) under a blobs directory, one unsorted walk.

    Module-level so read-only callers (``repro status``) can measure a store
    without opening a :class:`ResultStore` — opening rewrites metadata and
    clears blobs on a version mismatch.
    """
    entries = 0
    total = 0
    for path in blobs_dir.glob("*/*.json") if blobs_dir.exists() else ():
        try:
            total += path.stat().st_size
        except OSError:
            continue
        entries += 1
    return entries, total


def read_cumulative_store_stats(store_root: Union[str, Path]) -> StoreStats:
    """Sum the per-session stats files under a store root — pure reads.

    Module-level so ``repro metrics`` can report a store's lifetime traffic
    without constructing a :class:`ResultStore` (opening one rewrites
    metadata and clears blobs on a version mismatch, which a read-only
    command must never do to a live daemon's cache).  Unreadable or
    malformed session files are skipped, never raised.
    """
    total = StoreStats()
    stats_dir = Path(store_root) / _STATS_DIR_NAME
    for path in sorted(stats_dir.glob("*.json")) if stats_dir.exists() else []:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        counters = payload.get("stats") if isinstance(payload, dict) else None
        if not isinstance(counters, dict):
            continue
        try:
            total = total + StoreStats(
                hits=int(counters.get("hits", 0)),
                misses=int(counters.get("misses", 0)),
                writes=int(counters.get("writes", 0)),
                evictions=int(counters.get("evictions", 0)),
                corrupt_dropped=int(counters.get("corrupt_dropped", 0)),
            )
        except (TypeError, ValueError):
            continue
    return total


def scan_bucket_blobs(bucket_dir: Path) -> Tuple[List[Tuple[int, Path, int]], int]:
    """Snapshot one prefix bucket — the same shape as :func:`scan_blobs`.

    The unit a capped store's gc works in: it stats the buckets its
    accounting says are worth evicting from and leaves the rest untouched.
    """
    entries: List[Tuple[int, Path, int]] = []
    total = 0
    for path in sorted(bucket_dir.glob("*.json")) if bucket_dir.exists() else []:
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime_ns, path, stat.st_size))
        total += stat.st_size
    return entries, total


def scan_blobs(blobs_dir: Path) -> Tuple[List[Tuple[int, Path, int]], int]:
    """Snapshot ``(mtime_ns, path, size)`` of every blob plus the byte total.

    The mtime is captured at scan time so :func:`evict_scanned_blobs` can
    detect blobs touched by a concurrent process after the scan.
    """
    entries: List[Tuple[int, Path, int]] = []
    total = 0
    for bucket in sorted(blobs_dir.iterdir()) if blobs_dir.exists() else []:
        if not bucket.is_dir():
            continue
        bucket_entries, bucket_total = scan_bucket_blobs(bucket)
        entries.extend(bucket_entries)
        total += bucket_total
    return entries, total


def evict_scanned_blobs(
    entries: List[Tuple[int, Path, int]], total: int, max_bytes: int
) -> Tuple[int, int]:
    """Evict oldest-first from a :func:`scan_blobs` snapshot until it fits.

    **Multi-writer guard**: each candidate is re-stat'ed immediately before
    its unlink, and skipped when its mtime no longer matches the snapshot —
    a concurrent process served a hit from it (LRU refresh) or rewrote it
    since the scan, so it is recently used and must survive.  A blob that
    vanished meanwhile (a concurrent gc evicted it) just has its size
    discounted.  Returns ``(evicted, remaining_total)``.
    """
    entries = sorted(entries, key=lambda entry: (entry[0], entry[1].name))
    evicted = 0
    for mtime_ns, path, size in entries:
        if total <= max_bytes:
            break
        try:
            stat = path.stat()
        except OSError:
            total -= size  # already gone: it no longer occupies the store
            continue
        if stat.st_mtime_ns != mtime_ns:
            continue  # touched since the scan by a concurrent writer/reader
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        evicted += 1
    return evicted, total


def evict_lru_blobs(blobs_dir: Path, max_bytes: int) -> Tuple[int, int]:
    """Delete oldest-mtime blobs under ``blobs_dir`` until it fits ``max_bytes``.

    Pure file-level maintenance — no store metadata is read or written, so
    callers (``repro gc``) can shrink a store owned by *any* format or
    signature version without risking the version-mismatch clearing that
    opening a :class:`ResultStore` performs.  Safe against concurrent
    writers and other gc passes (see :func:`evict_scanned_blobs`).
    Returns ``(evicted, total)``: blobs removed and the remaining byte
    total.
    """
    entries, total = scan_blobs(blobs_dir)
    return evict_scanned_blobs(entries, total, max_bytes)


class ResultStore:
    """Persistent second cache tier for panel layouts.

    Implements the duck-typed store protocol :class:`SolutionCache` expects —
    :meth:`get_layout` / :meth:`put_layout` — plus the maintenance surface
    (:meth:`gc`, :meth:`total_bytes`, :meth:`signatures`) the service daemon
    and the ``repro gc`` verb use.

    Parameters
    ----------
    root:
        Directory of the store; created (with metadata) if absent.
    max_bytes:
        Soft size cap.  Exceeding it on a write triggers LRU eviction down
        to the cap.  ``None`` never evicts on write (``gc`` may still be
        called with an explicit cap).
    """

    def __init__(self, root: Union[str, Path], max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._evictions = 0
        self._corrupt = 0
        # One stats session per store instance: the uuid keeps two instances
        # of one pid (tests, daemon restarts in-process) from sharing a file.
        self._session = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._open()
        # Running size estimate so capped writes stay O(1): scanned once at
        # open, bumped per write, resynced to exact by every gc() pass.  On
        # capped stores the estimate is kept *per prefix bucket*, so gc can
        # stat only the buckets worth evicting from.  Drift (corrupt drops,
        # concurrent evictors, same-signature rewrites) always leaves the
        # account an over-estimate, which at worst triggers gc early — the
        # safe direction — and each gc/disk_usage pass resyncs it to exact.
        self._bucket_bytes: Optional[Dict[str, int]] = {} if max_bytes is not None else None
        self._approx_bytes = self.total_bytes() if max_bytes is not None else 0

    # -- lifecycle ----------------------------------------------------------------

    def _open(self) -> None:
        """Create or validate the on-disk store, clearing incompatible ones."""
        blobs = self.root / "blobs"
        meta_path = self.root / _META_NAME
        blobs.mkdir(parents=True, exist_ok=True)
        meta = None
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                meta = None
        current = {
            "format_version": FORMAT_VERSION,
            "signature_version": SIGNATURE_VERSION,
        }
        if meta != current:
            if meta is not None:
                # Another format or signature scheme: every blob is dead weight.
                self._evictions += self._clear_blobs()
            atomic_write_text(meta_path, json.dumps(current, indent=2) + "\n")

    def _clear_blobs(self) -> int:
        removed = 0
        for path in self._blob_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- paths --------------------------------------------------------------------

    def _blob_path(self, signature: str) -> Path:
        return self.root / "blobs" / signature[:2] / f"{signature}.json"

    def _blob_paths(self) -> List[Path]:
        return sorted((self.root / "blobs").glob("*/*.json"))

    # -- store protocol (used by SolutionCache) -----------------------------------

    def get_layout(self, signature: str) -> Optional[Layout]:
        """The stored layout for ``signature``, or ``None`` on a miss.

        Hits refresh the blob's mtime (the LRU clock).  Unreadable or
        inconsistent blobs are dropped and counted as corruption, never
        served.
        """
        path = self._blob_path(signature)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._drop_corrupt(path)
            return None
        layout = self._validate_payload(signature, payload)
        if layout is None:
            self._drop_corrupt(path)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # concurrently evicted; the layout we read is still good
        with self._lock:
            self._hits += 1
        return layout

    def _validate_payload(self, signature: str, payload: object) -> Optional[Layout]:
        if not isinstance(payload, dict):
            return None
        if payload.get("signature") != signature:
            return None
        if payload.get("signature_version") != SIGNATURE_VERSION:
            return None
        layout = payload.get("layout")
        if not isinstance(layout, list):
            return None
        if not all(
            entry is None or (isinstance(entry, int) and not isinstance(entry, bool))
            for entry in layout
        ):
            return None
        return tuple(layout)

    def _drop_corrupt(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            self._misses += 1
            self._corrupt += 1

    def drop_layout(self, signature: str) -> None:
        """Remove a blob a caller found unusable despite passing our checks.

        The cache calls this when a stored layout fails to re-bind to its
        problem (content poisoned under a valid shape); counted as corrupt.
        """
        try:
            self._blob_path(signature).unlink()
        except OSError:
            pass
        with self._lock:
            self._corrupt += 1

    # -- artifact protocol (used by repro.flow.FlowRunner) -------------------------

    def get_artifact(self, signature: str) -> Optional[dict]:
        """The stored stage-artifact payload for ``signature``, or ``None``.

        Stage artifacts share the blob tree (and therefore the LRU clock,
        eviction and gc) with panel layouts; their signatures live in a
        different token namespace (:func:`repro.engine.signature
        .stage_signature`), so the two blob kinds can never collide.  A
        payload written under another stage-signature scheme version is a
        miss, not corruption — the signature itself could never be recomputed
        under the current scheme, so the blob is just dead weight awaiting
        eviction.
        """
        path = self._blob_path(signature)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._drop_corrupt(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("signature") != signature
            or not isinstance(payload.get("artifact"), dict)
        ):
            self._drop_corrupt(path)
            return None
        if payload.get("stage_signature_version") != STAGE_SIGNATURE_VERSION:
            # Another scheme version is a plain miss, not corruption: the
            # blob is intact, just dead weight awaiting eviction.
            with self._lock:
                self._misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # concurrently evicted; the payload we read is still good
        with self._lock:
            self._hits += 1
        return payload["artifact"]

    def put_artifact(self, signature: str, artifact: dict) -> None:
        """Persist one stage-artifact payload (idempotent; atomic on disk)."""
        payload = {
            "signature": signature,
            "stage_signature_version": STAGE_SIGNATURE_VERSION,
            "artifact": artifact,
        }
        self._write_blob(signature, json.dumps(payload))

    def _write_blob(self, signature: str, text: str) -> None:
        """Atomic write + size accounting + over-cap gc, for both blob kinds.

        With a size cap, eviction is only attempted once the running size
        estimate exceeds it — a full directory scan per write would make a
        capped store quadratic.
        """
        path = self._blob_path(signature)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, text)
        with self._lock:
            self._writes += 1
            self._approx_bytes += len(text)
            if self._bucket_bytes is not None:
                bucket = signature[:2]
                self._bucket_bytes[bucket] = self._bucket_bytes.get(bucket, 0) + len(text)
            over_cap = self.max_bytes is not None and self._approx_bytes > self.max_bytes
        if over_cap:
            self.gc(self.max_bytes)

    def put_layout(self, signature: str, layout: Layout) -> None:
        """Persist one layout (idempotent; atomic on disk; see ``_write_blob``)."""
        payload = {
            "signature": signature,
            "signature_version": SIGNATURE_VERSION,
            "layout": list(layout),
        }
        self._write_blob(signature, json.dumps(payload))

    # -- maintenance --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blob_paths())

    def __contains__(self, signature: str) -> bool:
        return self._blob_path(signature).exists()

    def signatures(self) -> List[str]:
        """Signatures of every stored blob (sorted)."""
        return sorted(path.stem for path in self._blob_paths())

    def total_bytes(self) -> int:
        """Total size of all blobs on disk."""
        return self.disk_usage()[1]

    def disk_usage(self) -> Tuple[int, int]:
        """(entry count, total bytes) in one unsorted directory walk.

        The daemon heartbeat reports both every cycle; computing them
        together halves the I/O of the separate ``len`` / ``total_bytes``
        calls on large stores.  On a capped store the walk doubles as a
        full resync of the per-bucket byte account, so estimate drift
        never outlives one heartbeat cycle.
        """
        blobs = self.root / "blobs"
        if self._bucket_bytes is None:
            return blob_disk_usage(blobs)
        entries = 0
        sizes: Dict[str, int] = {}
        for bucket in sorted(blobs.iterdir()) if blobs.exists() else []:
            if not bucket.is_dir():
                continue
            count, size = bucket_disk_usage(bucket)
            entries += count
            if size:
                sizes[bucket.name] = size
        total = sum(sizes.values())
        with self._lock:
            self._bucket_bytes = sizes
            self._approx_bytes = total
        return entries, total

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used blobs until the store fits ``max_bytes``.

        Returns the number of blobs evicted.  ``max_bytes=None`` uses the
        store's configured cap and is a no-op when the store is uncapped.

        A capped store gc's through its per-bucket byte account and stats
        only the buckets eviction may touch; an uncapped store (gc'd with
        an explicit cap) has no account to consult and falls back to the
        full-tree scan, which also keeps its eviction order exactly
        global-LRU as it always was.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        if self._bucket_bytes is not None:
            return self._gc_buckets(cap)
        evicted, total = evict_lru_blobs(self.root / "blobs", cap)
        with self._lock:
            self._approx_bytes = total  # resync the estimate to exact
            if evicted:
                self._evictions += evicted
        return evicted

    def _gc_buckets(self, cap: int) -> int:
        """Bucket-aware eviction: stat only the buckets eviction may touch.

        Buckets are visited largest-accounted-first; scanning stops as soon
        as the *unscanned* buckets' accounted bytes fit under the cap,
        because only scanned buckets can be evicted from — on a store of B
        buckets just over its cap, that is one or two bucket stats instead
        of the whole tree.  Eviction itself is LRU across the scanned set
        with the usual multi-writer guard, and every scanned bucket's
        account is resynced to exact afterwards, so drift never accumulates
        past one gc pass.  The trade against the flat path is that an old
        blob in a small (unscanned) bucket can outlive a newer blob in a
        scanned one — approximate LRU, bounded by one bucket's span.
        """
        with self._lock:
            accounted = dict(self._bucket_bytes or {})
        if sum(accounted.values()) <= cap:
            return 0
        blobs = self.root / "blobs"
        unscanned = sum(accounted.values())
        scanned_names: List[str] = []
        scanned_sizes: Dict[str, int] = {}
        entries: List[Tuple[int, Path, int]] = []
        scanned_total = 0
        for name in sorted(accounted, key=lambda bucket: (-accounted[bucket], bucket)):
            if unscanned + scanned_total <= cap or unscanned <= cap:
                break
            bucket_entries, bucket_total = scan_bucket_blobs(blobs / name)
            unscanned -= accounted[name]
            scanned_total += bucket_total
            entries.extend(bucket_entries)
            scanned_names.append(name)
            scanned_sizes[name] = bucket_total
        evicted = 0
        if unscanned + scanned_total > cap:
            evicted, _remaining = evict_scanned_blobs(
                entries, scanned_total, max(0, cap - unscanned)
            )
        if evicted:
            # Re-stat just the evicted-from buckets for exact per-bucket
            # remainders (evict_scanned_blobs reports only the aggregate).
            for name in scanned_names:
                _count, scanned_sizes[name] = bucket_disk_usage(blobs / name)
        with self._lock:
            if self._bucket_bytes is not None:
                for name in scanned_names:
                    if scanned_sizes[name]:
                        self._bucket_bytes[name] = scanned_sizes[name]
                    else:
                        self._bucket_bytes.pop(name, None)
                self._approx_bytes = sum(self._bucket_bytes.values())
            if evicted:
                self._evictions += evicted
        return evicted

    def clear(self) -> int:
        """Drop every blob (counters kept); returns the number removed."""
        removed = self._clear_blobs()
        with self._lock:
            self._evictions += removed
            self._approx_bytes = 0
            if self._bucket_bytes is not None:
                self._bucket_bytes = {}
        return removed

    def stats(self) -> StoreStats:
        """Current counters as an immutable snapshot."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                evictions=self._evictions,
                corrupt_dropped=self._corrupt,
            )

    def persist_stats(self) -> None:
        """Flush this session's counters to ``stats/<session>.json`` (atomic).

        Each store instance owns one session file and rewrites it in place,
        so the N daemons and workers sharing a store each persist their own
        traffic and :func:`read_cumulative_store_stats` can sum lifetime
        totals across processes — including ones that have since exited.
        The service layer calls this on forced heartbeats (job completions
        and shutdown), so an idle process never touches the directory.
        """
        stats_dir = self.root / _STATS_DIR_NAME
        stats_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "session": self._session,
            "updated_at": time.time(),
            "stats": self.stats().to_dict(),
        }
        atomic_write_text(
            stats_dir / f"{self._session}.json", json.dumps(payload, indent=2) + "\n"
        )

    def cumulative_stats(self) -> StoreStats:
        """Lifetime counters summed over every session of this store.

        Persists this session's counters first, so the total includes live
        not-yet-flushed traffic alongside what previous processes left in
        ``stats/``.
        """
        self.persist_stats()
        return read_cumulative_store_stats(self.root)

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, entries={len(self)}, stats={self.stats()})"
