"""Multi-worker service cluster over the shared file spool.

The :class:`~repro.service.daemon.ServiceDaemon` from the single-process
service layer drains the whole spool from one loop, so throughput is capped
at one worker.  This module turns the same on-disk spool into shared cluster
state — N cooperating worker processes, no new dependencies, no network —
by adding two directories next to ``jobs/``::

    <root>/
        jobs/<job_id>.json                  # queued + terminal records (unchanged)
        leases/<worker_id>/<job_id>.json    # claimed (running) records
        workers/<worker_id>.json            # per-worker heartbeats

On a sharded root (``repro serve --shards N``, see
:mod:`repro.service.sharding`) ``jobs/`` and ``leases/`` split into N
hash-assigned shard directories (``jobs/s00/…``, ``leases/s00/<worker>/…``)
and every worker gets a *home shard* (assigned round-robin by the
supervisor) that it drains first, probing the other shards in a
deterministic rotated order — work-stealing — only when its home is empty.
All claim/reclaim/cancel/gc semantics below are per shard and unchanged;
heartbeats stay unsharded (one per process).

**Claiming is an atomic rename.**  A worker claims a queued job by renaming
``jobs/<id>.json`` into its own lease directory.  The filesystem serialises
renames of one source path, so exactly one of N racing workers wins (the
losers see ``ENOENT`` and move to the next candidate) — that rename *is*
the deterministic tie-break; no double execution is possible.  The winner
then rewrites the lease as a record carrying its worker id, the incremented
attempt count and an expiry, and appends an entry to the job's
``executions`` history (the exactly-once audit trail the cluster-smoke CI
job greps).

**Liveness is heartbeat + lease expiry.**  Every worker heartbeats
``workers/<worker_id>.json`` and refreshes its active lease (rewriting it
bumps the file mtime, the authoritative lease clock) at every batch
boundary *and* from a background pulse thread, so even a single batch
longer than the lease TTL cannot get a live worker's job reclaimed.  A
lease is *reclaimable* only when both signals agree the owner is gone:
the lease mtime is older than its TTL **and** the owner's heartbeat is
stale.  Reclaiming is again an atomic rename (lease → a
reclaimer-private temp), so concurrent reclaimers cannot duplicate a job;
the winner re-queues the record into ``jobs/`` with its attempt count
preserved — or fails it when the retry budget is spent — and any surviving
peer picks it up.  See DESIGN.md §"Cluster layer" for the full lease
state machine.

:class:`ClusterSupervisor` runs the local fleet behind ``repro serve
--workers K``: it spawns K worker processes over one root, restarts workers
that die, and exits once the spool has been idle long enough.
:func:`run_loadgen` (the ``repro loadgen`` verb) submits a seed-striped
burst of scenario jobs and reports aggregate latency percentiles and
throughput — the measurement harness of
``benchmarks/bench_cluster_throughput.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.backends import create_backend
from repro.engine.cache import SolutionCache
from repro.engine.panels import Engine
from repro.obs.aggregate import MergedEventCursor
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, fleet_metrics_from_events, process_registry
from repro.service.daemon import (
    STALE_HEARTBEAT_SECONDS,
    _round_latency,
    heartbeat_is_fresh,
    submit_job,
)
from repro.service.queue import TERMINAL_STATUSES, Job
from repro.service.scheduler import Scheduler
from repro.service.scenarios import scenario_spec
from repro.service.sharding import (
    MAX_SHARDS,
    SpoolLayout,
    adopt_stray_records,
    ensure_layout,
    read_layout,
)
from repro.service.store import ResultStore, atomic_write_text

#: Worker heartbeats older than this are stale (scaled by the poll interval,
#: exactly like the daemon's threshold, but tighter: a cluster wants crashed
#: peers detected — and their leases reclaimed — promptly).
WORKER_STALE_SECONDS = 5.0

#: Default seconds a lease stays valid without a refresh.
DEFAULT_LEASE_TTL = 30.0


def _workers_dir(root: Path) -> Path:
    return root / "workers"


def worker_is_alive(heartbeat: Dict[str, object]) -> bool:
    """Whether a worker heartbeat indicates a live process.

    Same contract as :func:`~repro.service.daemon.heartbeat_is_fresh`
    (a ``stopped`` heartbeat is never alive; the age threshold scales with
    the poll interval) but with the tighter cluster staleness bound — the
    single definition both ``status --cluster`` and lease reclaim use.
    """
    if heartbeat.get("stopped"):
        return False
    age = time.time() - float(heartbeat.get("updated_at", 0.0))
    return age < max(WORKER_STALE_SECONDS, 3.0 * float(heartbeat.get("poll_interval", 0.0)))


def read_worker_heartbeats(root: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Every worker heartbeat under ``root``, keyed by worker id."""
    heartbeats: Dict[str, Dict[str, object]] = {}
    workers = _workers_dir(Path(root))
    for path in sorted(workers.glob("*.json")) if workers.exists() else []:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # mid-rewrite; the next status call sees it
        if isinstance(payload, dict):
            heartbeats[path.stem] = payload
    return heartbeats


@dataclass(frozen=True)
class WorkerIdentity:
    """Identity of one cluster worker process.

    The ``worker_id`` names the worker's lease directory and heartbeat
    file; it embeds the pid for operators and a random suffix so a
    restarted worker (same label, new process) can never be confused with
    its predecessor's stale lease directory or heartbeat.
    """

    worker_id: str
    pid: int
    started_at: float

    @classmethod
    def create(cls, label: str = "worker") -> "WorkerIdentity":
        pid = os.getpid()
        return cls(
            worker_id=f"{label}-{pid}-{uuid.uuid4().hex[:6]}",
            pid=pid,
            started_at=time.time(),
        )


class LeaseManager:
    """Atomic lease-based job claiming over one spool directory.

    All mutual exclusion is the filesystem's: claims and reclaims are
    single ``os.rename`` calls, of which exactly one of any set of racers
    succeeds.  The lease file's mtime is the authoritative lease clock
    (refreshing a lease rewrites it); the JSON body carries the worker id,
    attempt count and an informational expiry for ``status --cluster``.
    """

    def __init__(
        self,
        root: Union[str, Path],
        identity: WorkerIdentity,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        events: Optional[EventLog] = None,
        layout: Optional[SpoolLayout] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.root = Path(root)
        self.identity = identity
        self.lease_ttl = lease_ttl
        self.events = events
        self.layout = layout if layout is not None else read_layout(self.root)
        # One lease directory per shard (just `leases/<worker_id>` flat).
        self.my_dirs = self.layout.worker_lease_dirs(identity.worker_id)
        for directory in self.my_dirs:
            directory.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------------------

    @property
    def my_dir(self) -> Path:
        """This worker's lease directory on a flat root (shard 0)."""
        return self.my_dirs[0]

    def _job_path(self, job_id: str) -> Path:
        return self.layout.job_path(job_id)

    def lease_path(self, job_id: str) -> Path:
        return self.my_dirs[self.layout.shard_of(job_id)] / f"{job_id}.json"

    # -- claim / refresh / release --------------------------------------------------

    def claim(self, job_id: str, stolen: bool = False) -> Optional[Job]:
        """Try to claim a queued job; ``None`` when another worker won.

        The rename is the claim: after it succeeds this worker owns the
        record exclusively, so the subsequent read-modify-write (status →
        ``running``, attempts incremented, execution entry appended) is
        race-free.  A record that turns out to be unusable (unparsable,
        not queued) is put back where it was found.

        ``stolen`` marks a cross-shard claim (the job lives outside the
        claiming worker's home shard); it only affects the event tag and
        the executions audit entry — the rename semantics are identical.
        """
        source = self._job_path(job_id)
        lease = self.lease_path(job_id)
        try:
            os.rename(source, lease)
        except OSError:
            return None  # a peer claimed it first (or it was never there)
        try:
            job = Job.from_dict(json.loads(lease.read_text(encoding="utf-8")))
            if job.job_id != job_id or job.status != "queued":
                job = None
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            job = None
        if job is None:
            # Not claimable after all — return the file unharmed.
            try:
                os.rename(lease, source)
            except OSError:
                pass
            return None
        job.status = "running"
        job.attempts += 1
        job.record_claim(self.identity.worker_id, shard=self.layout.shard_tag(job_id))
        self.write_lease(job)
        if self.events is not None:
            self.events.emit(
                "claimed",
                job=job.job_id,
                worker=self.identity.worker_id,
                attempt=job.attempts,
                shard=self.layout.shard_tag(job_id),
                steal=True if (stolen and self.layout.sharded) else None,
            )
        return job

    def write_lease(self, job: Job) -> None:
        """(Re)write the lease record; the fresh mtime restarts the TTL."""
        payload = {
            "worker_id": self.identity.worker_id,
            "claimed_at": time.time(),
            "expires_at": time.time() + self.lease_ttl,
            "lease_ttl": self.lease_ttl,
            "job": job.to_dict(),
        }
        atomic_write_text(self.lease_path(job.job_id), json.dumps(payload, indent=2) + "\n")

    def refresh_lease(self, job: Job) -> bool:
        """Rewrite the lease only while this worker still owns it.

        A refresh must never *recreate* a lease file that a reclaimer
        renamed away — that would resurrect ownership this worker already
        lost and let its eventual release clobber the reclaim's record.
        Returns False when the lease is gone (the job is disowned).
        """
        if not self.lease_path(job.job_id).exists():
            return False
        self.write_lease(job)
        return True

    def release(self, job: Job) -> bool:
        """Move the job's post-execution record back into the spool.

        The record (terminal, or ``queued`` again for a retryable failure)
        is first written *into the lease file* — which this worker owns —
        and the lease is then renamed onto the spool path, so the release
        itself is atomic: a reclaimer that stole the lease meanwhile makes
        the rename fail (``ENOENT``) and the outcome is discarded.  A
        crash between the write and the rename leaves the lease holding a
        plain record, which :meth:`reclaim_expired` restores faithfully
        (terminal records unchanged, others re-queued).

        Ownership guard: a lease already gone (reclaimed while this worker
        was stalled) refuses the release outright.  In the residual
        microseconds-wide window where a reclaim lands between that check
        and the write, the rename moves this worker's *finished* record
        over the reclaim's requeue — the job ends terminal with a real
        computed result instead of being pointlessly executed a third
        time; content-addressed idempotent results make either order
        safe.  Returns whether the record reached the spool.
        """
        lease = self.lease_path(job.job_id)
        if not lease.exists():
            return False  # reclaimed out from under us; the spool moved on
        atomic_write_text(lease, json.dumps(job.to_dict(), indent=2) + "\n")
        try:
            os.rename(lease, self._job_path(job.job_id))
        except OSError:
            return False  # stolen between the write and the rename
        if self.events is not None:
            self.events.emit(
                "released",
                job=job.job_id,
                worker=self.identity.worker_id,
                status=job.status,
                latency=_round_latency(job.latency_seconds()),
                shard=self.layout.shard_tag(job.job_id),
            )
        return True

    # -- reclaim --------------------------------------------------------------------

    def reclaim_expired(self, max_scan: Optional[int] = None) -> int:
        """Requeue expired leases of dead peers; returns how many.

        A lease is reclaimed only when its mtime-based TTL has passed
        *and* the owning worker's heartbeat is stale or stopped — a slow
        worker with a fresh heartbeat keeps its leases however old they
        are.  The reclaim itself is an atomic rename into this worker's
        directory (suffix ``.reclaim``, invisible to lease scans), so
        concurrent reclaimers of one lease cannot both requeue it.
        """
        now = time.time()
        heartbeats = read_worker_heartbeats(self.root)
        reclaimed = 0
        scanned = 0
        for lease_path, owner, shard in self._foreign_leases():
            if max_scan is not None and scanned >= max_scan:
                break
            scanned += 1
            try:
                mtime = lease_path.stat().st_mtime
            except OSError:
                continue  # released or reclaimed meanwhile
            if now < mtime + self.lease_ttl:
                # Cheap floor before any JSON parse: with this manager's
                # own TTL as the bound, a freshly refreshed lease (the
                # overwhelmingly common case on every poll cycle) costs one
                # stat, never a read.  A peer with a *shorter* TTL is
                # reclaimed a little later than its own bound — safe,
                # merely conservative — and supervised fleets share one
                # TTL, making the floor exact.
                continue
            ttl = self._lease_ttl_of(lease_path)
            if now < mtime + ttl:
                continue  # still within its TTL
            owner_heartbeat = heartbeats.get(owner)
            if owner_heartbeat is not None and worker_is_alive(owner_heartbeat):
                continue  # owner is alive, merely slow; never steal
            if self._reclaim_one(lease_path, shard):
                reclaimed += 1
        return reclaimed

    def _foreign_leases(self) -> List[Tuple[Path, str, int]]:
        """(lease path, owner worker id, shard) of every other worker's lease."""
        return [
            (path, owner, shard)
            for path, owner, shard in self.layout.iter_lease_files()
            if owner != self.identity.worker_id
        ]

    def _lease_ttl_of(self, lease_path: Path) -> float:
        """TTL recorded in the lease, falling back to this manager's own.

        A lease caught in the claim window (renamed, not yet rewritten)
        still holds the plain job record; its mtime is the rename-fresh
        submit-time stamp only until the owner's first
        :meth:`write_lease`, and the heartbeat condition protects it
        meanwhile.
        """
        try:
            payload = json.loads(lease_path.read_text(encoding="utf-8"))
            return float(payload["lease_ttl"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return self.lease_ttl

    def _reclaim_one(self, lease_path: Path, shard: int = 0) -> bool:
        """Atomically steal one expired lease and resolve its job."""
        # The `.reclaim` suffix keeps the stolen file out of `*.json` scans;
        # the temp lives in this worker's directory *of the job's shard* so
        # a crash strands it where a migration would route it anyway.
        stolen = self.my_dirs[shard] / f"{lease_path.stem}.{os.getpid()}.reclaim"
        try:
            os.rename(lease_path, stolen)
        except OSError:
            return False  # another reclaimer (or the owner's release) won
        payload: object = None
        try:
            payload = json.loads(stolen.read_text(encoding="utf-8"))
            record = payload.get("job", payload)  # wrapper, or claim-window raw record
            job = Job.from_dict(record)
        except (OSError, json.JSONDecodeError, KeyError, ValueError, AttributeError):
            job = None
        worker = payload.get("worker_id") if isinstance(payload, dict) else None
        resolved = False
        if job is not None and not self._job_path(job.job_id).exists():
            # (A spool record already present means the owner's release
            # raced the reclaim — or the id was purged and reused — and the
            # spool is authoritative; the stale lease is simply dropped.)
            if job.is_terminal:
                # A claim() that renamed an already-terminal record and died
                # before renaming it back: restore it untouched — terminal
                # is terminal, the finished result must never be re-queued.
                pass
            elif job.cancel_requested:
                job.status = "cancelled"
            elif job.attempts >= job.max_attempts:
                job.status = "failed"
                job.error = job.error or (
                    f"worker {worker or 'unknown'} died during attempt "
                    f"{job.attempts}/{job.max_attempts}"
                )
            else:
                job.status = "queued"  # attempts preserved: the budget binds
            atomic_write_text(
                self._job_path(job.job_id), json.dumps(job.to_dict(), indent=2) + "\n"
            )
            resolved = True
            if self.events is not None:
                self.events.emit(
                    "reclaimed",
                    job=job.job_id,
                    worker=worker,
                    by=self.identity.worker_id,
                    status=job.status,
                    shard=self.layout.shard_tag(job.job_id),
                )
        try:
            stolen.unlink()
        except OSError:
            pass
        return resolved


def scan_spool_records(
    jobs_dir: Path, terminal_memo: Dict[str, int]
) -> Tuple[List[Dict[str, object]], int, int]:
    """One memoized pass over ``jobs/*.json``; the cluster's spool scanner.

    Returns ``(active_records, terminal_count, unreadable_count)`` where
    ``active_records`` are the parsed non-terminal records.  Terminal
    records are remembered in ``terminal_memo`` (job id → mtime_ns, pruned
    of vanished ids, updated in place), so repeated scans — the worker's
    claim loop and the supervisor's monitor tick share this helper — parse
    only *new* work, never spool history; a purged-and-resubmitted id gets
    a fresh mtime and is re-read.  Records whose filename and ``job_id``
    disagree are foreign files and ignored.
    """
    active: List[Dict[str, object]] = []
    terminal = 0
    unreadable = 0
    paths = sorted(jobs_dir.glob("*.json"))
    stems = {path.stem for path in paths}
    for vanished in set(terminal_memo) - stems:
        del terminal_memo[vanished]
    for path in paths:
        try:
            mtime = path.stat().st_mtime_ns
        except OSError:
            continue  # claimed or purged mid-scan; a lease scan sees a claim
        if terminal_memo.get(path.stem) == mtime:
            terminal += 1
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            unreadable += 1  # half-written; the next scan sees it whole
            continue
        if not isinstance(record, dict) or record.get("job_id") != path.stem:
            continue
        if record.get("status") in TERMINAL_STATUSES:
            terminal += 1
            terminal_memo[path.stem] = mtime
        else:
            terminal_memo.pop(path.stem, None)  # active again (id reuse)
            active.append(record)
    return active, terminal, unreadable


def active_leases(root: Union[str, Path]) -> List[Dict[str, object]]:
    """Snapshot of every live lease (for ``status --cluster``); pure reads.

    On a sharded root each entry also carries the shard the lease lives in
    (flat roots keep the pre-sharding dict shape).
    """
    now = time.time()
    leases: List[Dict[str, object]] = []
    layout = read_layout(root)
    for path, worker_id, shard in layout.iter_lease_files():
        try:
            stat = path.stat()
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        record = payload.get("job", payload) if isinstance(payload, dict) else {}
        ttl = payload.get("lease_ttl") if isinstance(payload, dict) else None
        entry: Dict[str, object] = {
            "job_id": path.stem,
            "worker_id": worker_id,
            "age_seconds": max(0.0, now - stat.st_mtime),
            "expires_in": (stat.st_mtime + float(ttl) - now if ttl is not None else None),
            "attempts": record.get("attempts") if isinstance(record, dict) else None,
        }
        if layout.sharded:
            entry["shard"] = layout.shard_name(shard)
        leases.append(entry)
    return leases


@dataclass
class WorkerConfig:
    """Everything one cluster worker process needs.

    ``backend`` / ``backend_workers`` configure the *engine* inside the
    worker (how one job's panel batches are dispatched); cluster
    parallelism comes from running several workers, each of which is
    usually perfectly happy with the serial backend.
    """

    root: Union[str, Path]
    label: str = "worker"
    backend: str = "serial"
    backend_workers: Optional[int] = None
    poll_interval: float = 0.2
    lease_ttl: float = DEFAULT_LEASE_TTL
    store_max_bytes: Optional[int] = None
    #: Shard this worker drains first on a sharded root (``None`` → 0);
    #: taken modulo the layout's shard count, so round-robin assignment
    #: by slot number needs no knowledge of the count.
    home_shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl}")
        if self.home_shard is not None and self.home_shard < 0:
            raise ValueError(f"home_shard must be >= 0, got {self.home_shard}")
        self.root = Path(self.root)


class ClusterWorker:
    """One lease-claiming worker process over a shared spool.

    Unlike the single-process daemon there is no in-memory queue to drain:
    every cycle re-scans the spool for ``queued`` records (priority order,
    deterministic ties) and races its peers for the first claimable one.
    Execution reuses the scheduler's batch loop, with the between-batch
    hook refreshing the lease and heartbeat and honouring cancel markers —
    so a long job neither loses its lease nor goes deaf to ``repro
    cancel``.
    """

    def __init__(self, config: WorkerConfig, identity: Optional[WorkerIdentity] = None) -> None:
        self.config = config
        root = Path(config.root)
        # Workers never change the shard count; they serve whatever layout
        # the root's marker records (stamping the flat default if absent).
        self.layout = ensure_layout(root)
        self.home_shard = (config.home_shard or 0) % self.layout.shards
        _workers_dir(root).mkdir(parents=True, exist_ok=True)
        self.identity = identity or WorkerIdentity.create(config.label)
        # On a sharded root the worker's events go to its home-shard stream,
        # so appends from different workers never contend on one file.
        self.events = EventLog(root, writer=self.identity.worker_id, shard=self.home_shard)
        self.metrics = MetricsRegistry()
        self.lease = LeaseManager(
            root, self.identity, lease_ttl=config.lease_ttl, events=self.events,
            layout=self.layout,
        )
        self.store = ResultStore(root / "store", max_bytes=config.store_max_bytes)
        self.engine = Engine(
            backend=create_backend(config.backend, config.backend_workers),
            cache=SolutionCache(store=self.store),
        )
        self.scheduler = Scheduler(
            queue=None,
            engine=self.engine,
            on_batch=self._on_batch,
            worker_id=self.identity.worker_id,
            metrics=self.metrics,
            events=self.events,
        )
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.jobs_reclaimed = 0
        self._current: Optional[Job] = None
        self._last_heartbeat = 0.0
        self._stop_requested = False
        # Serialises every lease write and the current-job handoff between
        # the execution thread and the background pulse thread (two threads
        # writing one lease would also collide on the pid-named temp file).
        self._pulse_lock = threading.Lock()
        self._pulse_stop = threading.Event()
        self._pulse_thread: Optional[threading.Thread] = None
        # Whether the last _run_claimed still owned its lease at release:
        # a disowned outcome is discarded and must not consume --max-jobs.
        self._last_owned = True
        # Terminal spool records already seen, keyed by record mtime, so an
        # idle worker's candidate scan never re-parses spool history (same
        # scheme as the daemon's `_spool_done`); a rewritten file (id reuse
        # after a purge) no longer matches its mtime and is re-read.  One
        # memo per shard — each shard directory is scanned independently.
        self._known_terminal: Dict[int, Dict[str, int]] = {
            shard: {} for shard in range(self.layout.shards)
        }

    # -- spool scanning -------------------------------------------------------------

    def _shard_scan_order(self) -> List[int]:
        """Home shard first, then the others in rotated (wrap-around) order.

        The rotation is deterministic per home shard, so a worker's steal
        probes always visit shards in the same sequence — reproducible in
        tests — while workers with *different* homes start their probes at
        different shards, spreading steal pressure instead of dogpiling.
        """
        home = self.home_shard
        shards = self.layout.shards
        return [(home + offset) % shards for offset in range(shards)]

    def _shard_candidates(self, shard: int) -> List[str]:
        """Claimable job ids of one shard, best first: priority desc, then
        submit order.

        Every worker scans a shard in the same deterministic order, so
        racers converge on the same head-of-line job and the claim rename
        picks the single winner; losers fall through to the next
        candidate.  The memoized scan never re-reads terminal history (see
        :func:`scan_spool_records`).
        """
        records, _terminal, _unreadable = scan_spool_records(
            self.layout.jobs_dir(shard), self._known_terminal[shard]
        )
        candidates = sorted(
            (
                -int(record.get("priority", 0)),
                float(record.get("created_at", 0.0)),
                str(record["job_id"]),
            )
            for record in records
            if record.get("status") == "queued"
        )
        if self.layout.sharded:
            # Per-shard queue depth gauges ride the metrics snapshots.
            self.metrics.gauge(f"spool.queued.{self.layout.shard_name(shard)}").set(
                len(candidates)
            )
        return [job_id for _priority, _created, job_id in candidates]

    def _queued_candidates(self) -> List[str]:
        """Claimable job ids across every shard, home shard's first."""
        adopt_stray_records(self.layout)
        job_ids: List[str] = []
        for shard in self._shard_scan_order():
            job_ids.extend(self._shard_candidates(shard))
        self.metrics.gauge("spool.queued").set(len(job_ids))
        return job_ids

    def _claim_next(self) -> Optional[Job]:
        """Race for the best claim: drain home, then steal in rotation.

        Shards are scanned lazily — a worker whose home shard still has
        claimable work never pays for probing the others; only an empty
        (or fully-contended) home falls through to stealing.  Records a
        racing submitter dropped on the flat paths are adopted into their
        home shard first, so they compete like any other candidate.
        """
        adopt_stray_records(self.layout)
        depth = 0
        for shard in self._shard_scan_order():
            candidates = self._shard_candidates(shard)
            depth += len(candidates)
            for job_id in candidates:
                job = self.lease.claim(job_id, stolen=shard != self.home_shard)
                if job is not None:
                    return job
        self.metrics.gauge("spool.queued").set(depth)
        return None

    # -- execution ------------------------------------------------------------------

    def _on_batch(self, job: Job) -> None:
        """Between-batch pulse: keep the lease and heartbeat alive, see cancels."""
        marker = self.layout.cancel_path(job.job_id)
        if marker.exists():
            # Raise the flag only; the marker itself is consumed by the
            # ownership-gated sweep at the end of _run_claimed, so a worker
            # that turns out to be disowned never eats a marker that
            # targets the requeued job.
            job.cancel_requested = True
        with self._pulse_lock:
            if not self.lease.refresh_lease(job):
                # Disowned: a reclaimer decided this worker was dead while a
                # batch ran long.  Stop burning work on a job a peer now
                # owns; release() will refuse the spool write for the same
                # reason, so the outcome is simply discarded.
                job.cancel_requested = True
        self._heartbeat()

    def _pulse(self) -> None:
        """Background refresher: lease + heartbeat stay fresh *within* a batch.

        The between-batch hook alone would let a single batch longer than
        the lease TTL (or the heartbeat staleness bound) get a perfectly
        live worker's job reclaimed and double-executed; this thread closes
        that window.  A worker that truly dies stops pulsing, which is
        exactly the signal reclaim needs.
        """
        interval = max(0.05, min(1.0, self.config.lease_ttl / 3.0, self.config.poll_interval))
        while not self._pulse_stop.wait(interval):
            with self._pulse_lock:
                if self._current is not None:
                    # refresh, never recreate: a reclaimed lease stays lost.
                    self.lease.refresh_lease(self._current)
            self._heartbeat()

    def _run_claimed(self, job: Job) -> Job:
        """Execute one claimed job and write its outcome back to the spool."""
        with self._pulse_lock:
            self._current = job
        marker = self.layout.cancel_path(job.job_id)
        if marker.exists():
            # Cancelled while queued; the claim just makes it terminal.
            # (Flag only — the marker is consumed by the ownership-gated
            # sweep below, never by a worker that lost its lease.)
            job.cancel_requested = True
        try:
            if job.cancel_requested:
                status = "cancelled"
                result = None
            else:
                outcome = self.scheduler.execute_job(
                    job, shard=self.layout.shard_tag(job.job_id)
                )
                status = "cancelled" if job.cancel_requested else "done"
                result = outcome.to_dict()
        except Exception as error:  # noqa: BLE001 — any job error means retry/fail
            job.error = "".join(traceback.format_exception_only(type(error), error)).strip()
            status = "failed" if job.attempts >= job.max_attempts else "queued"
            result = None
        # Terminal mutations and the pulse handoff happen under the lock,
        # so the background refresher can never write a half-updated lease
        # or resurrect a lease after release.
        with self._pulse_lock:
            job.status = status
            if result is not None:
                job.result = result
            job.finish_execution()
            self._current = None
            owned = self.lease.release(job)
        self._last_owned = owned
        if owned:
            if job.status == "done":
                self.jobs_done += 1
            elif job.status == "failed":
                self.jobs_failed += 1
            elif job.status == "cancelled":
                self.jobs_cancelled += 1
        if owned and job.is_terminal:
            # A cancel that landed during the final batch arrived too late;
            # its marker is dead and must not ambush a future reuse of the
            # job id.  Gated on ownership: a disowned worker's job was
            # requeued by a reclaim, and a marker present now targets that
            # requeued job — pending, not stale, and not ours to consume.
            try:
                marker.unlink()
            except OSError:
                pass
        self._heartbeat(force=True)
        return job

    # -- heartbeat ------------------------------------------------------------------

    def _heartbeat(self, stopped: bool = False, force: bool = False) -> None:
        """Write the worker's liveness file (throttled, like the daemon's)."""
        now = time.time()
        if not force and now - self._last_heartbeat < min(1.0, self.config.poll_interval):
            return
        self._last_heartbeat = now
        # Snapshot once: the pulse thread heartbeats concurrently with the
        # execution thread's job handoff, and a double read of _current
        # could see it become None between the check and the use.
        current = self._current
        stats = self.engine.cache_stats()
        payload = {
            "worker_id": self.identity.worker_id,
            "pid": self.identity.pid,
            "started_at": self.identity.started_at,
            "updated_at": now,
            "poll_interval": self.config.poll_interval,
            "lease_ttl": self.config.lease_ttl,
            "stopped": stopped,
            "backend": self.engine.backend.name,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "jobs_reclaimed": self.jobs_reclaimed,
            "lease": None if current is None else current.job_id,
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "store_hits": stats.store_hits,
            },
        }
        if self.layout.sharded:
            payload["home_shard"] = self.layout.shard_name(self.home_shard)
        atomic_write_text(
            _workers_dir(Path(self.config.root)) / f"{self.identity.worker_id}.json",
            json.dumps(payload, indent=2) + "\n",
        )
        if force:
            # Metrics snapshots ride the *forced* heartbeats only (startup,
            # job completions, shutdown), so an idle worker appends nothing.
            self.metrics.gauge("cache.hits").set(stats.hits)
            self.metrics.gauge("cache.misses").set(stats.misses)
            self.metrics.gauge("cache.store_hits").set(stats.store_hits)
            self.store.persist_stats()
            # The solver hot paths (the anneal chain loop, shm attaches)
            # record into the process-wide default registry; fold that
            # snapshot in so the fleet view includes them, with the
            # worker's own instruments winning any name collision.
            snapshot = process_registry().snapshot()
            snapshot.update(self.metrics.snapshot())
            # The nonce keys this process generation: aggregation sums
            # snapshots across generations of a reused writer label instead
            # of keeping only the latest (see fleet_metrics_from_events).
            self.events.emit(
                "metrics",
                worker=self.identity.worker_id,
                nonce=self.events.nonce,
                metrics=snapshot,
            )

    # -- main loop ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the loop to exit at the next between-jobs boundary."""
        self._stop_requested = True

    def step(self) -> Optional[Job]:
        """One reclaim-claim-execute cycle; returns the job run, if any."""
        reclaimed = self.lease.reclaim_expired()
        if reclaimed:
            self.metrics.counter("lease.reclaimed").inc(reclaimed)
        self.jobs_reclaimed += reclaimed
        job = self._claim_next()
        if job is None:
            self._heartbeat()
            return None
        return self._run_claimed(job)

    def _spool_has_queued_work(self) -> bool:
        return bool(self._queued_candidates())

    def run(self, max_jobs: Optional[int] = None, idle_exit: Optional[float] = None) -> int:
        """Serve until ``max_jobs`` terminal outcomes or idle too long.

        Same contract as the daemon's loop: retries released back to the
        spool do not count as finished work; the idle deadline re-checks
        the spool one final time before exiting, so a submission landing
        during the last poll sleep is served, not stranded.
        """
        self._install_signal_handler()
        self.events.emit(
            "worker-started",
            worker=self.identity.worker_id,
            pid=self.identity.pid,
            home_shard=(
                self.layout.shard_name(self.home_shard) if self.layout.sharded else None
            ),
        )
        self._heartbeat(force=True)
        self._pulse_stop.clear()
        self._pulse_thread = threading.Thread(
            target=self._pulse, name=f"pulse-{self.identity.worker_id}", daemon=True
        )
        self._pulse_thread.start()
        finished = 0
        idle_since: Optional[float] = None
        try:
            while not self._stop_requested:
                job = self.step()
                if job is not None:
                    if job.is_terminal and self._last_owned:
                        finished += 1
                        if max_jobs is not None and finished >= max_jobs:
                            break
                    idle_since = None
                    continue
                now = time.time()
                if idle_since is None:
                    idle_since = now
                if idle_exit is not None and now - idle_since >= idle_exit:
                    if self._spool_has_queued_work():
                        idle_since = None  # a submission landed during the last sleep
                        continue
                    break
                time.sleep(self.config.poll_interval)
        finally:
            self._pulse_stop.set()
            self._pulse_thread.join(timeout=5.0)
            self.engine.shutdown()
            self._heartbeat(stopped=True, force=True)
            self.events.emit("worker-stopped", worker=self.identity.worker_id, jobs=finished)
        return finished

    def _install_signal_handler(self) -> None:
        """Exit cleanly on SIGTERM (the supervisor's shutdown signal).

        Only possible from the main thread of a worker process; in-process
        workers driven from test threads simply skip it.
        """
        if threading.current_thread() is not threading.main_thread():
            return
        try:
            signal.signal(signal.SIGTERM, lambda _signum, _frame: self.request_stop())
        except (ValueError, OSError):  # pragma: no cover — exotic platforms
            pass


@dataclass
class ClusterConfig:
    """Everything ``repro serve --workers K`` needs to run a local fleet."""

    root: Union[str, Path]
    workers: int = 2
    backend: str = "serial"
    backend_workers: Optional[int] = None
    poll_interval: float = 0.2
    lease_ttl: float = DEFAULT_LEASE_TTL
    store_max_bytes: Optional[int] = None
    #: Worker restarts the supervisor will perform before giving up on a
    #: slot that keeps dying (per run, across all slots).
    max_restarts: int = 10
    #: Spool shard count to (migrate to and) serve; ``None`` keeps the
    #: root's recorded layout.  Home shards are dealt round-robin by slot.
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.shards is not None and not 1 <= self.shards <= MAX_SHARDS:
            raise ValueError(f"shards must be in 1..{MAX_SHARDS}, got {self.shards}")
        self.root = Path(self.root)


class ClusterSupervisor:
    """Spawn, monitor and restart a local fleet of worker processes.

    Workers are real OS processes (``repro serve --cluster-worker``), so a
    fleet scales across cores and a crash takes down one worker, never the
    cluster: the supervisor respawns dead workers (bounded by
    ``max_restarts``) and surviving peers reclaim the dead worker's leases
    meanwhile.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        # The supervisor is the only fleet process allowed to change the
        # shard count: migration happens here, before any worker spawns,
        # so workers always open a settled layout.
        self.layout = ensure_layout(config.root, config.shards)
        self.restarts = 0
        self._stopping = False
        self._terminated = False
        self._procs: Dict[int, subprocess.Popen] = {}
        # Terminal records already counted, keyed by mtime (the workers'
        # and daemon's scheme): the ~10 Hz monitor loop must not re-parse a
        # reused root's entire history every tick.  One memo per shard.
        self._terminal_seen: Dict[int, Dict[str, int]] = {
            shard: {} for shard in range(self.layout.shards)
        }

    def request_stop(self) -> None:
        """Ask a running :meth:`run` loop to shut the fleet down and exit."""
        self._terminated = True

    def worker_command(self, slot: int) -> List[str]:
        """The command line of worker ``slot`` (one source of truth)."""
        config = self.config
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--root",
            str(config.root),
            "--cluster-worker",
            "--worker-label",
            f"w{slot}",
            "--poll",
            str(config.poll_interval),
            "--lease-ttl",
            str(config.lease_ttl),
            "--backend",
            config.backend,
        ]
        if self.layout.sharded:
            # Round-robin home shards: slot k drains shard k mod N first
            # and steals from the rest, so every shard has a primary
            # drainer whenever workers >= shards.
            command += ["--home-shard", str(slot % self.layout.shards)]
        if config.backend_workers is not None:
            command += ["--backend-workers", str(config.backend_workers)]
        if config.store_max_bytes is not None:
            command += ["--store-max-mb", str(config.store_max_bytes / (1024 * 1024))]
        return command

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the fleet (idempotent: only empty slots are filled)."""
        self._stopping = False
        for slot in range(self.config.workers):
            if slot not in self._procs or self._procs[slot].poll() is not None:
                self._procs[slot] = subprocess.Popen(self.worker_command(slot))

    def poll(self) -> int:
        """Restart dead workers; returns the number currently alive."""
        alive = 0
        for slot, proc in list(self._procs.items()):
            if proc.poll() is None:
                alive += 1
                continue
            if self._stopping or self.restarts >= self.config.max_restarts:
                continue
            self.restarts += 1
            self._procs[slot] = subprocess.Popen(self.worker_command(slot))
            alive += 1
        return alive

    def worker_pids(self) -> List[int]:
        """Pids of the currently-running worker processes."""
        return [proc.pid for proc in self._procs.values() if proc.poll() is None]

    def wait_alive(self, timeout: float = 30.0) -> bool:
        """Block until every worker slot has a fresh heartbeat on disk."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            heartbeats = read_worker_heartbeats(self.config.root)
            fresh = sum(1 for heartbeat in heartbeats.values() if worker_is_alive(heartbeat))
            if fresh >= self.config.workers:
                return True
            time.sleep(0.05)
        return False

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate the fleet: SIGTERM, bounded wait, SIGKILL stragglers."""
        self._stopping = True
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    # -- spool accounting -----------------------------------------------------------

    def _spool_counts(self) -> Tuple[int, int]:
        """(terminal records, active records) — active = queued + leased.

        The spool is scanned *before* the leases, matching the claim
        rename's direction (``jobs/`` → ``leases/``): a record renamed
        mid-scan leaves the source after we read it, or reaches the
        destination before we read that — either way at least one scan
        sees it, so a just-claimed job can never look like an idle spool.
        Terminal records are remembered by mtime and never re-parsed, so
        the monitor tick stays proportional to new work, not history.
        """
        terminal = 0
        active_records = 0
        unreadable = 0
        for shard in range(self.layout.shards):
            records, shard_terminal, shard_unreadable = scan_spool_records(
                self.layout.jobs_dir(shard), self._terminal_seen[shard]
            )
            terminal += shard_terminal
            unreadable += shard_unreadable
            active_records += len(records)
        # Unreadable records are mid-write: assume active until readable.
        active = active_records + unreadable + len(active_leases(self.config.root))
        return terminal, active

    def run(self, max_jobs: Optional[int] = None, idle_exit: Optional[float] = None) -> int:
        """Serve until ``max_jobs`` jobs *newly* reach terminal, or idle too long.

        Terminal records already in the spool when the run starts (a reused
        root's history) are excluded from both the ``max_jobs`` budget and
        the returned count, matching the single daemon's finished-this-run
        semantics.  ``idle_exit=None`` with ``max_jobs=None`` supervises
        forever (until SIGINT/SIGTERM reaches the supervisor process).
        """
        baseline = self._spool_counts()[0]
        # SIGTERM must unwind through the finally so stop() reaps the
        # fleet — the default disposition would kill this process and
        # orphan every worker.  (Main-thread only, like the worker's.)
        if threading.current_thread() is threading.main_thread():
            try:
                signal.signal(signal.SIGTERM, lambda _signum, _frame: self.request_stop())
            except (ValueError, OSError):  # pragma: no cover — exotic platforms
                pass
        self.start()
        idle_since: Optional[float] = None
        try:
            while not self._terminated:
                alive = self.poll()
                if alive == 0 and self.restarts >= self.config.max_restarts:
                    # Every worker is dead and the restart budget is spent
                    # (a crash-looping fleet, e.g. a broken backend).
                    # Hanging here would serve nobody; exit and let the
                    # operator read the workers' exit output.
                    break
                terminal, active = self._spool_counts()
                if max_jobs is not None and terminal - baseline >= max_jobs:
                    break
                if active:
                    idle_since = None
                else:
                    now = time.time()
                    if idle_since is None:
                        idle_since = now
                    if idle_exit is not None and now - idle_since >= idle_exit:
                        # Same final re-check as the workers' own loop: a
                        # burst landing during the last sleep keeps us up.
                        if self._spool_counts()[1]:
                            idle_since = None
                            continue
                        break
                time.sleep(self.config.poll_interval)
        finally:
            self.stop()
        return max(0, self._spool_counts()[0] - baseline)


# -- load generation -------------------------------------------------------------------


def _nearest_rank(values: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of a sample (``None`` on an empty one)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class LoadgenReport:
    """Aggregate outcome of one submitted burst (JSON-safe via ``to_dict``).

    The counts and latencies are derived from the root's *event log* (see
    :func:`run_loadgen`); ``spool_check`` carries the spool-derived
    cross-check when the burst ran with ``verify=True``.
    """

    scenario: str
    submitted: int
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    timed_out: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    spool_check: Optional[Dict[str, object]] = None
    #: Mean annealing step rate over the fleet's ``metrics`` events
    #: (``anneal.steps`` / ``anneal.seconds``); ``None`` when the burst ran
    #: no annealing work (or the workers emitted no metrics yet).
    anneal_steps_per_s: Optional[float] = None

    @property
    def throughput(self) -> float:
        """Terminal jobs per wall-clock second."""
        finished = self.done + self.failed + self.cancelled
        return finished / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank latency percentile over the finished jobs."""
        return _nearest_rank(self.latencies, fraction)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scenario": self.scenario,
            "submitted": self.submitted,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_jobs_per_s": round(self.throughput, 3),
            "latency_p50": self.latency_percentile(0.50),
            "latency_p90": self.latency_percentile(0.90),
            "latency_p99": self.latency_percentile(0.99),
            "latency_max": max(self.latencies) if self.latencies else None,
            "anneal_steps_per_s": (
                None if self.anneal_steps_per_s is None else round(self.anneal_steps_per_s, 1)
            ),
        }
        if self.spool_check is not None:
            payload["spool_check"] = self.spool_check
        return payload


def _striped_job_id(layout: SpoolLayout, burst: str, index: int) -> str:
    """The ``index``-th job id of a burst, striped across the shards.

    Flat roots keep the plain ``load-<burst>-<index>`` ids.  On a sharded
    root the burst must exercise *every* shard round-robin — that is the
    whole point of a sharded load test — so a nonce suffix is searched
    until the stable hash lands the id on shard ``index mod N``.  The
    search is geometric with success chance 1/N per try; the cap is
    astronomically far beyond any plausible run, and on the (effectively
    impossible) miss the plain id is still a valid, merely unstriped, job.
    """
    job_id = f"load-{burst}-{index:03d}"
    if not layout.sharded:
        return job_id
    want = index % layout.shards
    for nonce in range(1, 10_000):
        if layout.shard_of(job_id) == want:
            return job_id
        job_id = f"load-{burst}-{index:03d}x{nonce}"
    return f"load-{burst}-{index:03d}"


def run_loadgen(
    root: Union[str, Path],
    scenario: str = "smoke",
    jobs: int = 12,
    params: Optional[Dict[str, object]] = None,
    priority: int = 0,
    max_attempts: int = 2,
    timeout: float = 300.0,
    poll: float = 0.1,
    wait: bool = True,
    verify: bool = False,
) -> LoadgenReport:
    """Submit a burst of scenario jobs and (optionally) wait them out.

    Each job gets a distinct derived seed (``base + i``) when the scenario
    has a ``seed`` parameter, so the burst is cache-cold by construction —
    the workload the throughput benchmark needs.

    The wait loop tails the root's **event log**: every serving process
    emits a terminal ``released`` (or ``reclaimed``) event carrying the
    job's submit-to-finish latency, so the hot path reads appended bytes
    only — zero per-tick spool scans, however many jobs are pending.
    ``verify=True`` re-derives the counts and percentiles from the spool
    records once the burst settles (``spool_check`` on the report; the CLI
    prints both) to prove the two sources agree.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    params = dict(params or {})
    spec = scenario_spec(scenario)
    stride_seeds = hasattr(spec, "seed")
    base_seed = params.get("seed", getattr(spec, "seed", 0))
    burst = uuid.uuid4().hex[:6]
    report = LoadgenReport(scenario=scenario, submitted=jobs)
    submitted: List[Job] = []
    root = Path(root)
    layout = read_layout(root)
    # Open the cursor before submitting so no terminal event can be missed;
    # the first poll() drains (and discards) whatever history the log holds.
    # The merged cursor covers every per-shard stream on sharded roots.
    cursor = MergedEventCursor(root)
    cursor.poll()
    start = time.perf_counter()
    for index in range(jobs):
        job_params = dict(params)
        if stride_seeds:
            job_params["seed"] = int(base_seed) + index
        submitted.append(
            submit_job(
                root,
                scenario,
                params=job_params,
                priority=priority,
                max_attempts=max_attempts,
                job_id=_striped_job_id(layout, burst, index),
            )
        )
    if not wait:
        report.wall_seconds = time.perf_counter() - start
        return report
    pending = {job.job_id: job for job in submitted}
    metrics_records: List[Dict[str, object]] = []
    deadline = time.monotonic() + timeout
    while pending and time.monotonic() < deadline:
        for record in cursor.poll():
            if record.get("event") == "metrics":
                metrics_records.append(record)
                continue
            if record.get("event") not in ("released", "reclaimed"):
                continue
            job_id = record.get("job")
            status = record.get("status")
            if not isinstance(job_id, str) or job_id not in pending:
                continue
            if status not in TERMINAL_STATUSES:
                continue  # a retry went back to queued; keep waiting
            job = pending.pop(job_id)
            if status == "done":
                report.done += 1
            elif status == "failed":
                report.failed += 1
            else:
                report.cancelled += 1
            latency = record.get("latency")
            if not isinstance(latency, (int, float)):
                # Events of jobs that died without a finished_at stamp (a
                # reclaimed-to-terminal job) carry no latency; the event
                # timestamp bounds it.
                latency = max(0.0, float(record.get("ts", 0.0)) - job.created_at)
            report.latencies.append(float(latency))
        if pending:
            time.sleep(poll)
    report.timed_out = len(pending)
    report.wall_seconds = time.perf_counter() - start
    # The last metrics snapshot rides the forced heartbeat *after* the final
    # release event, so drain the cursor once more before aggregating.
    for record in cursor.poll():
        if record.get("event") == "metrics":
            metrics_records.append(record)
    merged, _ = fleet_metrics_from_events(metrics_records)
    steps = float(merged.get("anneal.steps", {}).get("value", 0.0))
    seconds = float(merged.get("anneal.seconds", {}).get("value", 0.0))
    if seconds > 0.0:
        report.anneal_steps_per_s = steps / seconds
    if verify:
        report.spool_check = _loadgen_spool_check(root, submitted)
    return report


def _loadgen_spool_check(root: Path, submitted: List[Job]) -> Dict[str, object]:
    """Spool-derived counts + percentiles of one burst (the parity check).

    This is the pre-event-log measurement path — one job-record read per
    submitted job — kept off the hot loop and behind ``verify`` so loadgen
    normally never scans the spool at all.
    """
    counts = {"done": 0, "failed": 0, "cancelled": 0}
    latencies: List[float] = []
    layout = read_layout(root)
    for job in submitted:
        try:
            record = json.loads(
                layout.job_path(job.job_id).read_text(encoding="utf-8")
            )
            settled = Job.from_dict(record)
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            continue  # still leased or never finished; not a settled job
        if settled.status in counts:
            counts[settled.status] += 1
        latency = settled.latency_seconds()
        if latency is not None:
            latencies.append(latency)
    return {
        **counts,
        "latency_p50": _nearest_rank(latencies, 0.50),
        "latency_p90": _nearest_rank(latencies, 0.90),
        "latency_p99": _nearest_rank(latencies, 0.99),
    }


def format_loadgen_report(report: LoadgenReport) -> List[str]:
    """The ``repro loadgen`` output lines (greppable by the CI smoke jobs)."""
    lines = [f"loadgen: {report.submitted} job(s) submitted (scenario={report.scenario})"]
    lines.append(
        f"loadgen: {report.done} done, {report.failed} failed, "
        f"{report.cancelled} cancelled"
        + (f", {report.timed_out} timed out" if report.timed_out else "")
        + f" in {report.wall_seconds:.2f}s"
    )
    if report.latencies:
        p50 = report.latency_percentile(0.50)
        p90 = report.latency_percentile(0.90)
        p99 = report.latency_percentile(0.99)
        lines.append(
            f"loadgen: throughput {report.throughput:.2f} jobs/s; "
            f"latency p50={p50:.2f}s p90={p90:.2f}s p99={p99:.2f}s "
            f"max={max(report.latencies):.2f}s"
        )
    if report.anneal_steps_per_s is not None:
        lines.append(f"loadgen: mean anneal step rate {report.anneal_steps_per_s:.0f} steps/s")
    if report.spool_check is not None:
        check = report.spool_check
        lines.append(
            f"loadgen verify[events]: {report.done} done, {report.failed} failed, "
            f"{report.cancelled} cancelled; p50={_fmt_latency(report.latency_percentile(0.50))} "
            f"p90={_fmt_latency(report.latency_percentile(0.90))} "
            f"p99={_fmt_latency(report.latency_percentile(0.99))}"
        )
        lines.append(
            f"loadgen verify[spool]:  {check['done']} done, {check['failed']} failed, "
            f"{check['cancelled']} cancelled; p50={_fmt_latency(check['latency_p50'])} "
            f"p90={_fmt_latency(check['latency_p90'])} p99={_fmt_latency(check['latency_p99'])}"
        )
        agree = (report.done, report.failed, report.cancelled) == (
            check["done"],
            check["failed"],
            check["cancelled"],
        )
        lines.append(f"loadgen verify: {'parity OK' if agree else 'PARITY MISMATCH'}")
    return lines


def _fmt_latency(value: Optional[object]) -> str:
    """Render one latency figure for the verify lines (``-`` when absent)."""
    return f"{value:.2f}s" if isinstance(value, (int, float)) else "-"


__all__ = [
    "DEFAULT_LEASE_TTL",
    "STALE_HEARTBEAT_SECONDS",
    "WORKER_STALE_SECONDS",
    "WorkerIdentity",
    "LeaseManager",
    "WorkerConfig",
    "ClusterWorker",
    "ClusterConfig",
    "ClusterSupervisor",
    "LoadgenReport",
    "run_loadgen",
    "format_loadgen_report",
    "active_leases",
    "read_worker_heartbeats",
    "worker_is_alive",
    "heartbeat_is_fresh",
]
