"""Scenario registry: programmatic workload generation for the service.

The paper exercises exactly three tables' worth of workloads; a long-running
service needs far more.  A *scenario* is a named, parameterised, seeded
generator of :class:`~repro.engine.panels.PanelTask` batches — panel width,
net count, sensitivity mix, Kth bound range, technology node, capacity
pressure and solver effort are all knobs — so operators can submit diverse
traffic (``repro submit --scenario dense-bus --param seed=9``) without
writing code.

Determinism contract: a scenario name plus its (possibly overridden)
parameters fully determines the generated tasks, bit for bit.  Job records
therefore store only ``(scenario, params)`` — tiny, JSON-safe — and the
scheduler regenerates the tasks at execution time; identical submissions
produce identical panel signatures and hit the result store.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Tuple

from repro.engine.panels import PANEL_SOLVERS, PanelTask
from repro.sino.anneal import EFFORT_LEVELS, AnnealConfig
from repro.sino.panel import SinoProblem
from repro.tech.itrs import ITRS_100NM, get_technology


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters of one scenario (every field may be overridden at submit).

    Attributes
    ----------
    name / description:
        Registry identity and a one-line summary for ``repro status``.
    technology:
        Node name or alias (see :func:`repro.tech.itrs.get_technology`).
        Lower-Vdd nodes proportionally tighten every Kth bound, mirroring
        the paper's observation that crosstalk constraints bind harder as
        technology scales.
    panels:
        Number of independent panel instances the scenario generates.
    min_segments / max_segments:
        Per-panel net-segment count range (drawn uniformly).
    sensitivity_rate:
        Probability that an unordered segment pair is mutually sensitive.
    kth_low / kth_high:
        Range the per-segment Kth bounds are drawn from (before the
        technology scaling); lower bounds force more shields.
    capacity_slack:
        Region track capacity as a multiple of the segment count.  Values
        below ~1.3 leave no room for shields and create overflow pressure;
        0 disables the capacity limit entirely.
    solver / effort / chains:
        Forwarded to :class:`~repro.engine.panels.PanelTask`; ``chains > 1``
        attaches a multi-chain annealing schedule.
    seed:
        Base seed; panel ``i`` derives its structure and task seed from it.
    """

    name: str
    description: str
    technology: str = ITRS_100NM.name
    panels: int = 6
    min_segments: int = 6
    max_segments: int = 10
    sensitivity_rate: float = 0.3
    kth_low: float = 0.8
    kth_high: float = 1.6
    capacity_slack: float = 1.5
    solver: str = "sino"
    effort: str = "greedy"
    chains: int = 1
    seed: int = 2002

    def __post_init__(self) -> None:
        if self.panels < 1:
            raise ValueError(f"panels must be positive, got {self.panels}")
        if not 1 <= self.min_segments <= self.max_segments:
            raise ValueError(
                "need 1 <= min_segments <= max_segments, "
                f"got {self.min_segments}..{self.max_segments}"
            )
        if not 0.0 <= self.sensitivity_rate <= 1.0:
            raise ValueError(f"sensitivity_rate must lie in [0, 1], got {self.sensitivity_rate}")
        if not 0.0 < self.kth_low <= self.kth_high:
            raise ValueError(f"need 0 < kth_low <= kth_high, got {self.kth_low}..{self.kth_high}")
        if self.capacity_slack < 0.0:
            raise ValueError(f"capacity_slack must be non-negative, got {self.capacity_slack}")
        if self.solver not in PANEL_SOLVERS:
            raise ValueError(f"solver must be one of {PANEL_SOLVERS}, got {self.solver!r}")
        if self.effort not in EFFORT_LEVELS:
            raise ValueError(f"effort must be one of {EFFORT_LEVELS}, got {self.effort!r}")
        if self.chains < 1:
            raise ValueError(f"chains must be >= 1, got {self.chains}")
        get_technology(self.technology)  # fail fast on unknown nodes

    def with_params(self, params: Dict[str, object]) -> "ScenarioSpec":
        """A copy with submit-time overrides applied (unknown keys rejected).

        Values are type-checked against the field they override, so a bad
        submission fails here — before a job record is written — rather than
        burning the daemon's retry budget on a job that can never run.
        """
        if not params:
            return self
        known = {spec_field.name for spec_field in fields(self)} - {"name", "description"}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario parameter(s) {unknown}; overridable: {sorted(known)}"
            )
        coerced = {key: self._coerce(key, value) for key, value in params.items()}
        return replace(self, **coerced)  # type: ignore[arg-type]

    def _coerce(self, key: str, value: object) -> object:
        """Type-check one override against the field it replaces."""
        current = getattr(self, key)
        if isinstance(current, bool) or isinstance(value, bool):
            raise ValueError(f"scenario parameter {key!r} does not accept {value!r}")
        if isinstance(current, int):
            if not isinstance(value, int):
                raise ValueError(f"scenario parameter {key!r} must be an integer, got {value!r}")
            return value
        if isinstance(current, float):
            if not isinstance(value, (int, float)):
                raise ValueError(f"scenario parameter {key!r} must be a number, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise ValueError(f"scenario parameter {key!r} must be a string, got {value!r}")
        return value


def generate_scenario(name: str, params: Dict[str, object] | None = None) -> List[PanelTask]:
    """Generate the panel tasks of a registered scenario, deterministically.

    Panel ``i`` gets segment ids in a disjoint ``i * 1000`` block so tasks
    stay distinguishable in panel keys and diagnostics, and a derived task
    seed ``seed + i`` so annealing panels are independent but reproducible.
    """
    spec = scenario_spec(name).with_params(dict(params or {}))
    technology = get_technology(spec.technology)
    # Stylised node effect: bounds scale with Vdd relative to the paper's node.
    bound_scale = technology.vdd / ITRS_100NM.vdd
    rng = random.Random(spec.seed)
    tasks: List[PanelTask] = []
    anneal = AnnealConfig(chains=spec.chains) if spec.chains > 1 else None
    for index in range(spec.panels):
        count = rng.randint(spec.min_segments, spec.max_segments)
        segments = [index * 1000 + offset for offset in range(count)]
        sensitivity: Dict[int, set] = {segment: set() for segment in segments}
        for position, segment in enumerate(segments):
            for other in segments[position + 1 :]:
                if rng.random() < spec.sensitivity_rate:
                    sensitivity[segment].add(other)
        kth = {
            segment: bound_scale * rng.uniform(spec.kth_low, spec.kth_high)
            for segment in segments
        }
        capacity = 0 if spec.capacity_slack == 0.0 else math.ceil(count * spec.capacity_slack)
        problem = SinoProblem.build(
            segments=segments,
            sensitivity=sensitivity,
            kth=kth,
            default_kth=bound_scale * spec.kth_high,
            capacity=capacity,
        )
        tasks.append(
            PanelTask(
                key=((index, 0), "h"),
                problem=problem,
                solver=spec.solver,
                effort=spec.effort,
                seed=spec.seed + index,
                anneal=anneal,
            )
        )
    return tasks


# -- registry --------------------------------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario_spec(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_scenarios() -> List[Tuple[str, str]]:
    """(name, description) of every registered scenario, sorted by name."""
    return [(spec.name, spec.description) for _, spec in sorted(_REGISTRY.items())]


#: Names of the built-in scenarios (populated below).
register_scenario(
    ScenarioSpec(
        name="smoke",
        description="tiny greedy batch for health checks and CI",
        panels=3,
        min_segments=4,
        max_segments=6,
        sensitivity_rate=0.4,
    )
)
register_scenario(
    ScenarioSpec(
        name="uniform-medium",
        description="medium panels with the paper's typical sensitivity",
        panels=8,
        min_segments=8,
        max_segments=12,
        sensitivity_rate=0.3,
    )
)
register_scenario(
    ScenarioSpec(
        name="dense-bus",
        description="bus-like panels: high sensitivity, tight bounds, annealed",
        panels=6,
        min_segments=10,
        max_segments=14,
        sensitivity_rate=0.8,
        kth_low=0.5,
        kth_high=0.9,
        effort="anneal-fast",
    )
)
register_scenario(
    ScenarioSpec(
        name="mixed-width",
        description="widely varying panel widths (load-balance stressor)",
        panels=10,
        min_segments=3,
        max_segments=18,
        sensitivity_rate=0.4,
    )
)
register_scenario(
    ScenarioSpec(
        name="capacity-stress",
        description="capacity barely above the segment count: overflow pressure",
        panels=6,
        min_segments=8,
        max_segments=12,
        sensitivity_rate=0.5,
        capacity_slack=1.1,
    )
)
register_scenario(
    ScenarioSpec(
        name="node-70nm",
        description="aggressive 70 nm node: proportionally tighter Kth bounds",
        technology="70nm",
        panels=6,
        min_segments=6,
        max_segments=10,
        sensitivity_rate=0.5,
    )
)
register_scenario(
    ScenarioSpec(
        name="node-130nm",
        description="relaxed 130 nm node: looser bounds, fewer shields",
        technology="130nm",
        panels=6,
        min_segments=6,
        max_segments=10,
        sensitivity_rate=0.5,
    )
)
register_scenario(
    ScenarioSpec(
        name="ordering-baseline",
        description="net-ordering-only solves (the ID+NO per-region step)",
        solver="ordering",
        panels=8,
        min_segments=6,
        max_segments=12,
        sensitivity_rate=0.3,
    )
)

SCENARIO_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))
