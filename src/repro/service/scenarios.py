"""Scenario registry: programmatic workload generation for the service.

The paper exercises exactly three tables' worth of workloads; a long-running
service needs far more.  A *scenario* is a named, parameterised, seeded
workload description.  Two kinds are registered:

* **Panel scenarios** (:class:`ScenarioSpec`) generate batches of
  :class:`~repro.engine.panels.PanelTask` — panel width, net count,
  sensitivity mix, Kth bound range, technology node, capacity pressure and
  solver effort are all knobs — so operators can submit diverse panel
  traffic (``repro submit --scenario dense-bus --param seed=9``).
* **Flow scenarios** (:class:`FlowScenarioSpec`) name a whole stage-graph
  flow (:mod:`repro.flow`) on a generated benchmark instance — one flow or
  the full three-flow comparison — so a job can be "run GSINO on a scaled
  ibm01", not just a bag of panels
  (``repro submit --scenario flow-compare --param circuit=ibm03``).

Determinism contract: a scenario name plus its (possibly overridden)
parameters fully determines the work, bit for bit.  Job records therefore
store only ``(scenario, params)`` — tiny, JSON-safe — and the scheduler
regenerates the tasks (or the flow context) at execution time; identical
submissions produce identical panel/stage signatures and hit the result
store.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Tuple, Union

from repro.bench.profiles import get_profile
from repro.engine.panels import PANEL_SOLVERS, PanelTask
from repro.sino.anneal import EFFORT_LEVELS, AnnealConfig
from repro.sino.panel import SinoProblem
from repro.tech.itrs import ITRS_100NM, get_technology

#: The flow names a :class:`FlowScenarioSpec` may reference.  A literal
#: duplicate of :data:`repro.flow.flows.FLOW_NAMES` on purpose: importing
#: the flow stack here would make every daemon/CLI startup pay for it,
#: while the scheduler deliberately imports it only when a flow job runs.
#: ``tests/test_flow.py`` pins the two tuples equal.
FLOW_SCENARIO_FLOWS: Tuple[str, ...] = ("id_no", "isino", "gsino")


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters of one scenario (every field may be overridden at submit).

    Attributes
    ----------
    name / description:
        Registry identity and a one-line summary for ``repro status``.
    technology:
        Node name or alias (see :func:`repro.tech.itrs.get_technology`).
        Lower-Vdd nodes proportionally tighten every Kth bound, mirroring
        the paper's observation that crosstalk constraints bind harder as
        technology scales.
    panels:
        Number of independent panel instances the scenario generates.
    min_segments / max_segments:
        Per-panel net-segment count range (drawn uniformly).
    sensitivity_rate:
        Probability that an unordered segment pair is mutually sensitive.
    kth_low / kth_high:
        Range the per-segment Kth bounds are drawn from (before the
        technology scaling); lower bounds force more shields.
    capacity_slack:
        Region track capacity as a multiple of the segment count.  Values
        below ~1.3 leave no room for shields and create overflow pressure;
        0 disables the capacity limit entirely.
    solver / effort / chains / batch_k:
        Forwarded to :class:`~repro.engine.panels.PanelTask`; ``chains > 1``
        or a non-default ``batch_k`` attaches an annealing schedule (the
        batched width only takes effect under the ``anneal-batched``
        effort).
    seed:
        Base seed; panel ``i`` derives its structure and task seed from it.
    """

    name: str
    description: str
    technology: str = ITRS_100NM.name
    panels: int = 6
    min_segments: int = 6
    max_segments: int = 10
    sensitivity_rate: float = 0.3
    kth_low: float = 0.8
    kth_high: float = 1.6
    capacity_slack: float = 1.5
    solver: str = "sino"
    effort: str = "greedy"
    chains: int = 1
    batch_k: int = 8
    seed: int = 2002

    def __post_init__(self) -> None:
        if self.panels < 1:
            raise ValueError(f"panels must be positive, got {self.panels}")
        if not 1 <= self.min_segments <= self.max_segments:
            raise ValueError(
                "need 1 <= min_segments <= max_segments, "
                f"got {self.min_segments}..{self.max_segments}"
            )
        if not 0.0 <= self.sensitivity_rate <= 1.0:
            raise ValueError(f"sensitivity_rate must lie in [0, 1], got {self.sensitivity_rate}")
        if not 0.0 < self.kth_low <= self.kth_high:
            raise ValueError(f"need 0 < kth_low <= kth_high, got {self.kth_low}..{self.kth_high}")
        if self.capacity_slack < 0.0:
            raise ValueError(f"capacity_slack must be non-negative, got {self.capacity_slack}")
        if self.solver not in PANEL_SOLVERS:
            raise ValueError(f"solver must be one of {PANEL_SOLVERS}, got {self.solver!r}")
        if self.effort not in EFFORT_LEVELS:
            raise ValueError(f"effort must be one of {EFFORT_LEVELS}, got {self.effort!r}")
        if self.chains < 1:
            raise ValueError(f"chains must be >= 1, got {self.chains}")
        if self.batch_k < 1:
            raise ValueError(f"batch_k must be >= 1, got {self.batch_k}")
        get_technology(self.technology)  # fail fast on unknown nodes

    def with_params(self, params: Dict[str, object]) -> "ScenarioSpec":
        """A copy with submit-time overrides applied (unknown keys rejected).

        Values are type-checked against the field they override, so a bad
        submission fails here — before a job record is written — rather than
        burning the daemon's retry budget on a job that can never run.
        """
        return _apply_params(self, params)


def _coerce_param(spec: object, key: str, value: object) -> object:
    """Type-check one override against the field it replaces."""
    current = getattr(spec, key)
    if isinstance(current, bool) or isinstance(value, bool):
        raise ValueError(f"scenario parameter {key!r} does not accept {value!r}")
    if isinstance(current, int):
        if not isinstance(value, int):
            raise ValueError(f"scenario parameter {key!r} must be an integer, got {value!r}")
        return value
    if isinstance(current, float):
        if not isinstance(value, (int, float)):
            raise ValueError(f"scenario parameter {key!r} must be a number, got {value!r}")
        return float(value)
    if not isinstance(value, str):
        raise ValueError(f"scenario parameter {key!r} must be a string, got {value!r}")
    return value


def _apply_params(spec, params: Dict[str, object]):
    """Shared override machinery of both scenario kinds (see ``with_params``)."""
    if not params:
        return spec
    known = {spec_field.name for spec_field in fields(spec)} - {"name", "description"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown scenario parameter(s) {unknown}; overridable: {sorted(known)}"
        )
    coerced = {key: _coerce_param(spec, key, value) for key, value in params.items()}
    return replace(spec, **coerced)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FlowScenarioSpec:
    """A whole stage-graph flow run as a service workload.

    Attributes
    ----------
    name / description:
        Registry identity and a one-line summary for ``repro submit --list``.
    flow:
        One of :data:`FLOW_SCENARIO_FLOWS` or ``"compare"`` (all three
        flows over one shared runner, exactly like ``repro compare``).
    circuit / sensitivity_rate / scale / seed:
        The generated benchmark instance (same knobs as the experiment
        drivers; the electrical length scale is derived from ``scale``).
    effort:
        Per-region SINO effort level of every panel solve.
    """

    name: str
    description: str
    flow: str = "compare"
    circuit: str = "ibm01"
    sensitivity_rate: float = 0.3
    scale: float = 0.01
    seed: int = 7
    effort: str = "greedy"

    def __post_init__(self) -> None:
        if self.flow != "compare" and self.flow not in FLOW_SCENARIO_FLOWS:
            raise ValueError(
                f"flow must be 'compare' or one of {FLOW_SCENARIO_FLOWS}, got {self.flow!r}"
            )
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must lie in (0, 1], got {self.scale}")
        if not 0.0 <= self.sensitivity_rate <= 1.0:
            raise ValueError(
                f"sensitivity_rate must lie in [0, 1], got {self.sensitivity_rate}"
            )
        if self.effort not in EFFORT_LEVELS:
            raise ValueError(f"effort must be one of {EFFORT_LEVELS}, got {self.effort!r}")
        get_profile(self.circuit)  # fail fast on unknown benchmarks

    def flow_names(self) -> Tuple[str, ...]:
        """The flows this scenario runs, in canonical order."""
        return FLOW_SCENARIO_FLOWS if self.flow == "compare" else (self.flow,)

    def with_params(self, params: Dict[str, object]) -> "FlowScenarioSpec":
        """A copy with submit-time overrides applied (unknown keys rejected)."""
        return _apply_params(self, params)


#: Either kind of registered scenario.
AnyScenarioSpec = Union[ScenarioSpec, FlowScenarioSpec]


def generate_scenario(name: str, params: Dict[str, object] | None = None) -> List[PanelTask]:
    """Generate the panel tasks of a registered scenario, deterministically.

    Panel ``i`` gets segment ids in a disjoint ``i * 1000`` block so tasks
    stay distinguishable in panel keys and diagnostics, and a derived task
    seed ``seed + i`` so annealing panels are independent but reproducible.
    """
    spec = scenario_spec(name).with_params(dict(params or {}))
    if isinstance(spec, FlowScenarioSpec):
        raise ValueError(
            f"scenario {name!r} is a flow scenario; the scheduler runs it through "
            "the stage-graph runner, not as a panel-task batch"
        )
    technology = get_technology(spec.technology)
    # Stylised node effect: bounds scale with Vdd relative to the paper's node.
    bound_scale = technology.vdd / ITRS_100NM.vdd
    rng = random.Random(spec.seed)
    tasks: List[PanelTask] = []
    default_width = AnnealConfig().batch_k
    anneal = (
        AnnealConfig(chains=spec.chains, batch_k=spec.batch_k)
        if spec.chains > 1 or spec.batch_k != default_width
        else None
    )
    for index in range(spec.panels):
        count = rng.randint(spec.min_segments, spec.max_segments)
        segments = [index * 1000 + offset for offset in range(count)]
        sensitivity: Dict[int, set] = {segment: set() for segment in segments}
        for position, segment in enumerate(segments):
            for other in segments[position + 1 :]:
                if rng.random() < spec.sensitivity_rate:
                    sensitivity[segment].add(other)
        kth = {
            segment: bound_scale * rng.uniform(spec.kth_low, spec.kth_high)
            for segment in segments
        }
        capacity = 0 if spec.capacity_slack == 0.0 else math.ceil(count * spec.capacity_slack)
        problem = SinoProblem.build(
            segments=segments,
            sensitivity=sensitivity,
            kth=kth,
            default_kth=bound_scale * spec.kth_high,
            capacity=capacity,
        )
        tasks.append(
            PanelTask(
                key=((index, 0), "h"),
                problem=problem,
                solver=spec.solver,
                effort=spec.effort,
                seed=spec.seed + index,
                anneal=anneal,
            )
        )
    return tasks


# -- registry --------------------------------------------------------------------------

_REGISTRY: Dict[str, AnyScenarioSpec] = {}


def register_scenario(spec: AnyScenarioSpec) -> AnyScenarioSpec:
    """Add a scenario (panel or flow kind) to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario_spec(name: str) -> AnyScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def scenario_kind(name: str) -> str:
    """``"flow"`` or ``"panels"`` — how the scheduler must execute a scenario."""
    return "flow" if isinstance(scenario_spec(name), FlowScenarioSpec) else "panels"


def list_scenarios() -> List[Tuple[str, str]]:
    """(name, description) of every registered scenario, sorted by name."""
    return [(spec.name, spec.description) for _, spec in sorted(_REGISTRY.items())]


#: Names of the built-in scenarios (populated below).
register_scenario(
    ScenarioSpec(
        name="smoke",
        description="tiny greedy batch for health checks and CI",
        panels=3,
        min_segments=4,
        max_segments=6,
        sensitivity_rate=0.4,
    )
)
register_scenario(
    ScenarioSpec(
        name="uniform-medium",
        description="medium panels with the paper's typical sensitivity",
        panels=8,
        min_segments=8,
        max_segments=12,
        sensitivity_rate=0.3,
    )
)
register_scenario(
    ScenarioSpec(
        name="dense-bus",
        description="bus-like panels: high sensitivity, tight bounds, annealed",
        panels=6,
        min_segments=10,
        max_segments=14,
        sensitivity_rate=0.8,
        kth_low=0.5,
        kth_high=0.9,
        effort="anneal-fast",
    )
)
register_scenario(
    ScenarioSpec(
        name="mixed-width",
        description="widely varying panel widths (load-balance stressor)",
        panels=10,
        min_segments=3,
        max_segments=18,
        sensitivity_rate=0.4,
    )
)
register_scenario(
    ScenarioSpec(
        name="capacity-stress",
        description="capacity barely above the segment count: overflow pressure",
        panels=6,
        min_segments=8,
        max_segments=12,
        sensitivity_rate=0.5,
        capacity_slack=1.1,
    )
)
register_scenario(
    ScenarioSpec(
        name="node-70nm",
        description="aggressive 70 nm node: proportionally tighter Kth bounds",
        technology="70nm",
        panels=6,
        min_segments=6,
        max_segments=10,
        sensitivity_rate=0.5,
    )
)
register_scenario(
    ScenarioSpec(
        name="node-130nm",
        description="relaxed 130 nm node: looser bounds, fewer shields",
        technology="130nm",
        panels=6,
        min_segments=6,
        max_segments=10,
        sensitivity_rate=0.5,
    )
)
register_scenario(
    ScenarioSpec(
        name="ordering-baseline",
        description="net-ordering-only solves (the ID+NO per-region step)",
        solver="ordering",
        panels=8,
        min_segments=6,
        max_segments=12,
        sensitivity_rate=0.3,
    )
)
register_scenario(
    FlowScenarioSpec(
        name="flow-compare",
        description="stage-graph comparison of ID+NO, iSINO and GSINO on a scaled circuit",
        flow="compare",
    )
)
register_scenario(
    FlowScenarioSpec(
        name="flow-gsino",
        description="the three-phase GSINO stage graph on a scaled circuit",
        flow="gsino",
    )
)
register_scenario(
    FlowScenarioSpec(
        name="flow-isino",
        description="the iSINO baseline stage graph on a scaled circuit",
        flow="isino",
    )
)

SCENARIO_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))
