"""repro.service — persistent job-service layer.

The engine layer (:mod:`repro.engine`) made panel solves dispatchable and
cacheable *within* one process; this layer makes them durable *across*
processes.  It is the subsystem every future scaling step (sharding, remote
backends) builds on:

* :mod:`repro.service.store` — :class:`ResultStore`, a disk-backed,
  content-addressed store of solved panel layouts that plugs in as the
  persistent second tier under :class:`repro.engine.cache.SolutionCache`;
* :mod:`repro.service.queue` — :class:`Job` / :class:`JobQueue`, a
  thread-safe priority queue with cancellation;
* :mod:`repro.service.scheduler` — :class:`Scheduler`, which batches
  compatible panel tasks of each job and dispatches them over any
  :class:`~repro.engine.backends.ExecutionBackend`, with retries;
* :mod:`repro.service.scenarios` — the scenario registry generating diverse
  synthetic workloads far beyond the paper's three tables;
* :mod:`repro.service.daemon` — the long-running service process behind the
  ``repro serve`` / ``submit`` / ``status`` / ``gc`` CLI verbs, with a
  file-based job spool so submitters never need a network connection;
* :mod:`repro.service.cluster` — the multi-worker layer on the same spool:
  atomic lease-based claiming, per-worker heartbeats, crash reclaim, the
  ``repro serve --workers K`` local fleet supervisor and the
  ``repro loadgen`` burst harness;
* :mod:`repro.service.sharding` — the spool partitioning layer under both:
  :class:`SpoolLayout` maps job ids to hash-keyed shards (``--shards N``),
  with an in-place flat↔sharded migration and the work-stealing scan order
  cluster workers drain it in;
* :mod:`repro.service.gateway` — the HTTP front door (``repro gateway``):
  an asyncio JSON API that rate-limits, queues, and micro-batches remote
  submissions into the same spool, with an HTTP mode for ``repro loadgen``.

Every lifecycle transition in this layer (submit, claim, release, reclaim,
cancel, gc, worker start/stop) is also appended to the root's event log
(:mod:`repro.obs.events`), which ``repro events`` / ``repro metrics`` and
the typed :class:`repro.obs.snapshot.ServiceSnapshot` consume.

See DESIGN.md §"Service layer" / §"Cluster layer" / §"Observability layer"
for the on-disk formats and versioning rules.
"""

from repro.service.cluster import (
    ClusterConfig,
    ClusterSupervisor,
    ClusterWorker,
    LeaseManager,
    LoadgenReport,
    WorkerConfig,
    WorkerIdentity,
    run_loadgen,
)
from repro.service.daemon import (
    ServiceConfig,
    ServiceDaemon,
    SubmitRequest,
    gc_service,
    request_cancel,
    service_status,
    submit_job,
    submit_jobs,
    wait_for_job,
)
from repro.service.gateway import (
    Gateway,
    GatewayConfig,
    GatewayRunner,
    HttpLoadgenReport,
    run_gateway,
    run_http_loadgen,
)
from repro.service.queue import JOB_STATUSES, Job, JobQueue
from repro.service.scenarios import (
    SCENARIO_NAMES,
    FlowScenarioSpec,
    ScenarioSpec,
    generate_scenario,
    list_scenarios,
    register_scenario,
    scenario_kind,
    scenario_spec,
)
from repro.service.scheduler import JobOutcome, Scheduler, batch_compatible
from repro.service.sharding import (
    MAX_SHARDS,
    SHARD_LAYOUT_VERSION,
    SpoolLayout,
    adopt_stray_records,
    ensure_layout,
    migrate_layout,
    read_layout,
    shard_index,
)
from repro.service.store import ResultStore, StoreStats, read_cumulative_store_stats

__all__ = [
    "ResultStore",
    "StoreStats",
    "read_cumulative_store_stats",
    "ClusterConfig",
    "ClusterSupervisor",
    "ClusterWorker",
    "LeaseManager",
    "LoadgenReport",
    "WorkerConfig",
    "WorkerIdentity",
    "run_loadgen",
    "Job",
    "JobQueue",
    "JOB_STATUSES",
    "Scheduler",
    "JobOutcome",
    "batch_compatible",
    "ScenarioSpec",
    "FlowScenarioSpec",
    "SCENARIO_NAMES",
    "generate_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario_kind",
    "scenario_spec",
    "MAX_SHARDS",
    "SHARD_LAYOUT_VERSION",
    "SpoolLayout",
    "shard_index",
    "read_layout",
    "ensure_layout",
    "migrate_layout",
    "adopt_stray_records",
    "ServiceConfig",
    "ServiceDaemon",
    "SubmitRequest",
    "submit_job",
    "submit_jobs",
    "request_cancel",
    "wait_for_job",
    "service_status",
    "gc_service",
    "Gateway",
    "GatewayConfig",
    "GatewayRunner",
    "HttpLoadgenReport",
    "run_gateway",
    "run_http_loadgen",
]
