"""Job scheduler: turns queued jobs into engine dispatches.

The scheduler owns the execution side of the service: it claims the
highest-priority job from the :class:`~repro.service.queue.JobQueue`,
regenerates the job's scenario into concrete panel tasks, groups them into
*compatible batches* — tasks sharing a (solver, effort) pair, which one
backend fan-out can dispatch together — and runs each batch through the
shared :class:`~repro.engine.panels.Engine`, so every solve goes through the
two-tier solution cache and lands in the persistent store.

Failure handling is per job: an execution that raises is recorded and the
job requeued until its ``max_attempts`` run out (``failed`` thereafter).
Cancellation is cooperative: the flag is checked between batches, so a
cancel lands within one batch's latency rather than one job's.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import CacheStats
from repro.engine.panels import Engine, PanelTask
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service.queue import Job, JobQueue
from repro.service.scenarios import FlowScenarioSpec, generate_scenario, scenario_spec


@dataclass
class JobOutcome:
    """Summary of one finished job execution (JSON-safe via ``to_dict``).

    ``flows`` and ``stages`` are populated only for flow-scenario jobs: the
    Table 1–3 headline numbers per flow, and the stage-graph execution
    counters (``executed`` / ``restored`` / ``shared``) — the latter is how
    operators see a warm store serving a whole flow without recomputation.
    """

    panels: int = 0
    batches: int = 0
    shields: int = 0
    tracks: int = 0
    valid_panels: int = 0
    runtime_seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    flows: Optional[Dict[str, Dict[str, object]]] = None
    stages: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "panels": self.panels,
            "batches": self.batches,
            "shields": self.shields,
            "tracks": self.tracks,
            "valid_panels": self.valid_panels,
            "runtime_seconds": round(self.runtime_seconds, 6),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "store_hits": self.cache.store_hits,
            },
        }
        if self.flows is not None:
            payload["flows"] = self.flows
        if self.stages is not None:
            payload["stages"] = self.stages
        return payload


def batch_compatible(
    tasks: Sequence[PanelTask], max_size: Optional[int] = None
) -> List[List[PanelTask]]:
    """Group tasks into dispatch batches of one (solver, effort) pair each.

    Batches keep first-appearance order so a scenario's cheap greedy panels
    are not starved behind its annealed ones (or vice versa); within a batch
    the engine sorts by key, so the grouping never affects results.

    ``max_size`` splits each group into consecutive runs of at most that
    many tasks.  Since a scenario's tasks usually share one (solver,
    effort) pair, an unbounded grouping would collapse a whole job into a
    single batch — leaving the scheduler's between-batch cancellation and
    heartbeat hooks nothing to fire between.
    """
    if max_size is not None and max_size < 1:
        raise ValueError(f"max_size must be positive, got {max_size}")
    groups: Dict[Tuple[str, str], List[PanelTask]] = {}
    for task in tasks:
        groups.setdefault((task.solver, task.effort), []).append(task)
    if max_size is None:
        return list(groups.values())
    return [
        group[start : start + max_size]
        for group in groups.values()
        for start in range(0, len(group), max_size)
    ]


class Scheduler:
    """Drain a job queue through an engine, one job at a time.

    Parameters
    ----------
    queue:
        The queue to claim jobs from.
    engine:
        Backend + two-tier cache every batch is dispatched through.  A store
        attached to the engine's cache is what makes finished work durable.
    on_claim:
        Called with the job right after it is claimed (status ``running``,
        attempt count already incremented) and *before* execution starts.
        The daemon persists the running record here, so a crash mid-job
        leaves durable evidence and ``max_attempts`` binds across restarts.
    on_batch:
        Called with the job between dispatch batches.  The daemon polls
        cancellation markers and refreshes its heartbeat here, so both work
        while a long job is executing, not just between jobs.
    batch_size:
        Upper bound on tasks per dispatch batch.  Bounding it is what gives
        a homogeneous job (one solver/effort across all its tasks — the
        common case) multiple batch boundaries, so cancellation lands
        within ``batch_size`` panels rather than after the whole job.
        ``None`` dispatches each compatible group whole.
    worker_id:
        Name recorded in each job's execution audit trail.  The daemon uses
        the default; cluster workers pass their worker id so the per-job
        ``executions`` entries say who ran what.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` of the owning
        process; every finished execution lands in its ``solve.seconds``
        histogram (plus batch/panel counters).
    events:
        Optional :class:`~repro.obs.events.EventLog` threaded through to
        flow-scenario runners so stage materialisations are logged.
    """

    def __init__(
        self,
        queue: Optional[JobQueue] = None,
        engine: Optional[Engine] = None,
        on_claim: Optional[Callable[[Job], None]] = None,
        on_batch: Optional[Callable[[Job], None]] = None,
        batch_size: Optional[int] = 8,
        worker_id: str = "local",
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.queue = queue if queue is not None else JobQueue()
        self.engine = engine or Engine()
        self.on_claim = on_claim
        self.on_batch = on_batch
        self.batch_size = batch_size
        self.worker_id = worker_id
        self.metrics = metrics
        self.events = events

    def run_once(self) -> Optional[Job]:
        """Claim and execute one job; returns it, or ``None`` when idle."""
        job = self.queue.pop()
        if job is None:
            return None
        job.record_claim(self.worker_id)
        if self.on_claim is not None:
            self.on_claim(job)
        try:
            outcome = self.execute_job(job)
        except Exception as error:  # noqa: BLE001 — any job error means retry/fail
            detail = "".join(traceback.format_exception_only(type(error), error)).strip()
            self.queue.fail(job, detail)
            job.finish_execution()
            return job
        self.queue.finish(job, result=outcome.to_dict())
        job.finish_execution()
        return job

    def execute_job(self, job: Job, shard: Optional[str] = None) -> JobOutcome:
        """Execute one already-claimed (``running``) job; raises on failure.

        The claim itself — popping the queue, or winning a cluster lease
        rename — happened before this call; here the job's scenario is
        regenerated and dispatched batch by batch, with ``on_batch`` firing
        between batches.  Timing and the job's share of cache traffic are
        recorded on the returned outcome.  Callers own the status
        transition (finish / fail / requeue) since it differs between the
        in-memory queue and the cluster spool.

        ``shard`` is the spool shard the job was claimed from on a sharded
        root; it feeds the per-shard throughput counters that ``repro
        metrics`` aggregates into the fleet view (flat roots pass ``None``
        and record nothing extra).
        """
        start = time.perf_counter()
        stats_before = self.engine.cache_stats()
        outcome = self._execute(job)
        outcome.runtime_seconds = time.perf_counter() - start
        outcome.cache = self.engine.cache_stats() - stats_before
        if self.metrics is not None:
            self.metrics.histogram("solve.seconds").observe(outcome.runtime_seconds)
            self.metrics.counter("solve.batches").inc(outcome.batches)
            self.metrics.counter("solve.panels").inc(outcome.panels)
            if shard is not None:
                self.metrics.counter(f"shard.{shard}.jobs").inc()
        return outcome

    def _execute(self, job: Job) -> JobOutcome:
        spec = scenario_spec(job.scenario)
        if isinstance(spec, FlowScenarioSpec):
            return self._execute_flow(job, spec.with_params(dict(job.params)))
        tasks = generate_scenario(job.scenario, job.params)
        outcome = JobOutcome()
        for batch in batch_compatible(tasks, max_size=self.batch_size):
            if self.on_batch is not None:
                self.on_batch(job)
            if job.cancel_requested:
                break
            solutions = self.engine.solve_tasks(batch)
            outcome.batches += 1
            for solution in solutions.values():
                outcome.panels += 1
                outcome.shields += solution.num_shields
                outcome.tracks += solution.num_tracks
                outcome.valid_panels += int(solution.is_valid())
        return outcome

    def _execute_flow(self, job: Job, spec: FlowScenarioSpec) -> JobOutcome:
        """Run a flow scenario through the stage-graph runner.

        The job's flows share this scheduler's engine — and therefore its
        two-tier solution cache — and, when the engine's cache is backed by
        a :class:`~repro.service.store.ResultStore`, the same store doubles
        as the persistent stage-artifact tier, so a repeated flow job
        restores whole stages instead of re-solving panels one by one.
        Cancellation is honoured between flows (the stage batch boundary of
        this job kind); ``on_batch`` fires there too, keeping the daemon's
        heartbeat fresh during a long comparison.
        """
        # Imported here: the scheduler is imported by the daemon at startup,
        # and the flow/bench stack is only needed once a flow job runs.
        from repro.bench.ibm import generate_circuit
        from repro.flow.flows import build_context, run_flow
        from repro.flow.runner import FlowRunner
        from repro.gsino.config import GsinoConfig

        circuit = generate_circuit(
            spec.circuit,
            sensitivity_rate=spec.sensitivity_rate,
            scale=spec.scale,
            seed=spec.seed,
        )
        config = GsinoConfig(
            length_scale=1.0 / (spec.scale**0.5), sino_effort=spec.effort
        )
        context = build_context(circuit.grid, circuit.netlist, config, self.engine)
        layout_store = None if self.engine.cache is None else self.engine.cache.store
        artifact_store = layout_store if hasattr(layout_store, "get_artifact") else None
        runner = FlowRunner(
            context, store=artifact_store, tracer=self.engine.tracer, events=self.events
        )
        outcome = JobOutcome(flows={})
        for name in spec.flow_names():
            if self.on_batch is not None:
                self.on_batch(job)
            if job.cancel_requested:
                break
            result = run_flow(name, context, runner=runner)
            outcome.batches += 1
            outcome.panels += len(result.panels)
            outcome.shields += result.metrics.total_shields
            for solution in result.panels.values():
                outcome.tracks += solution.num_tracks
                outcome.valid_panels += int(solution.is_valid())
            assert outcome.flows is not None
            outcome.flows[name] = {
                "violations": result.metrics.crosstalk.num_violations,
                "average_wirelength_um": result.metrics.average_wirelength_um,
                "routing_area_um2": result.metrics.area.area,
                "shields": result.metrics.total_shields,
            }
        outcome.stages = runner.outcome_counts()
        return outcome

    def drain(self, max_jobs: Optional[int] = None) -> List[Job]:
        """Run jobs until the queue is empty (or ``max_jobs`` were claimed)."""
        finished: List[Job] = []
        while max_jobs is None or len(finished) < max_jobs:
            job = self.run_once()
            if job is None:
                break
            finished.append(job)
        return finished

    def __repr__(self) -> str:
        return f"Scheduler(queue={self.queue!r}, engine={self.engine!r})"
