"""Priority job queue of the service layer.

A :class:`Job` is one unit of service work — a named scenario instantiation
(the scenario registry turns it into concrete panel tasks at execution time,
so job records stay small, picklable and JSON-serialisable for the disk
spool).  :class:`JobQueue` orders jobs by descending priority with FIFO
tie-breaking, tracks every job's lifecycle (``queued → running → done`` /
``failed`` / ``cancelled``), and supports cancellation of both queued and
running jobs (running jobs are interrupted cooperatively by the scheduler at
batch boundaries).

The queue is thread-safe; the daemon polls it from one scheduler thread
today, but nothing here assumes a single consumer.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Every status a job can be in.  Terminal statuses are ``done``, ``failed``
#: and ``cancelled``.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Statuses a job never leaves.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One schedulable unit of service work.

    Attributes
    ----------
    job_id:
        Unique identifier (the spool filename stem).
    scenario:
        Name of a registered scenario (see :mod:`repro.service.scenarios`).
    params:
        Scenario parameter overrides (seed, panel count, effort, ...).
    priority:
        Higher runs first; equal priorities run in submission order.
    status:
        One of :data:`JOB_STATUSES`.
    attempts:
        How many executions have started (retries increment it).
    max_attempts:
        Executions allowed before the job is marked ``failed``.
    error:
        Message of the last failure, if any.
    result:
        Summary of a finished execution (panel counts, shields, cache
        traffic); populated by the scheduler.
    cancel_requested:
        Cooperative-cancellation flag the scheduler checks between batches.
    created_at:
        Submission timestamp; end-to-end latency is measured from it.
    executions:
        Audit trail of claims: one ``{"worker", "attempt", "claimed_at"[,
        "finished_at"]}`` entry per execution start.  A cleanly-served job
        has exactly one entry — the exactly-once evidence the cluster CI
        job checks — while a job reclaimed from a dead worker shows the
        lost attempt as an entry with no ``finished_at``.
    """

    job_id: str
    scenario: str
    params: Dict[str, object] = field(default_factory=dict)
    priority: int = 0
    status: str = "queued"
    attempts: int = 0
    max_attempts: int = 2
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    cancel_requested: bool = False
    created_at: float = field(default_factory=time.time)
    executions: List[Dict[str, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in JOB_STATUSES:
            raise ValueError(f"unknown job status {self.status!r} (expected one of {JOB_STATUSES})")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {self.max_attempts}")

    @property
    def is_terminal(self) -> bool:
        """True once the job can no longer change status."""
        return self.status in TERMINAL_STATUSES

    def record_claim(self, worker_id: str, shard: Optional[str] = None) -> None:
        """Append one execution entry (call right after ``attempts`` bumps).

        ``shard`` records which spool shard the claim rename happened in on
        a sharded root (``None`` — and no key at all — on a flat one), so
        the executions audit trail shows where every attempt was claimed.
        """
        entry: Dict[str, object] = {
            "worker": worker_id,
            "attempt": self.attempts,
            "claimed_at": round(time.time(), 6),
        }
        if shard is not None:
            entry["shard"] = shard
        self.executions.append(entry)

    def finish_execution(self) -> None:
        """Stamp the end of the latest execution, however it ended."""
        if self.executions and "finished_at" not in self.executions[-1]:
            self.executions[-1]["finished_at"] = round(time.time(), 6)

    def latency_seconds(self) -> Optional[float]:
        """Submit-to-finish latency, once the final execution is stamped."""
        if not self.is_terminal:
            return None
        for entry in reversed(self.executions):
            finished = entry.get("finished_at")
            if isinstance(finished, (int, float)):
                return max(0.0, float(finished) - self.created_at)
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record (the disk-spool format)."""
        return {
            "job_id": self.job_id,
            "scenario": self.scenario,
            "params": dict(self.params),
            "priority": self.priority,
            "status": self.status,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "result": self.result,
            # Persisted so a cancel that landed mid-run survives a daemon
            # crash: the restarted daemon re-queues the job and the first
            # batch boundary honours the restored flag.
            "cancel_requested": self.cancel_requested,
            "created_at": self.created_at,
            "executions": [dict(entry) for entry in self.executions],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Job":
        """Rebuild a job from its spool record."""
        return cls(
            job_id=str(record["job_id"]),
            scenario=str(record["scenario"]),
            params=dict(record.get("params") or {}),
            priority=int(record.get("priority", 0)),
            status=str(record.get("status", "queued")),
            attempts=int(record.get("attempts", 0)),
            max_attempts=int(record.get("max_attempts", 2)),
            error=record.get("error"),  # type: ignore[arg-type]
            result=record.get("result"),  # type: ignore[arg-type]
            cancel_requested=bool(record.get("cancel_requested", False)),
            created_at=float(record.get("created_at", 0.0)),
            executions=[dict(entry) for entry in record.get("executions") or []],
        )


class JobQueue:
    """Thread-safe priority queue with status tracking and cancellation.

    Jobs are popped highest-priority first; ties run in submission order.
    Cancelling a queued job removes it lazily (its heap entry is skipped when
    reached); cancelling a running job raises its ``cancel_requested`` flag
    for the scheduler to honour at the next batch boundary.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self._jobs: Dict[str, Job] = {}

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.status == "queued")

    def submit(self, job: Job) -> Job:
        """Enqueue a job (it must be in the ``queued`` status)."""
        with self._lock:
            if job.job_id in self._jobs and not self._jobs[job.job_id].is_terminal:
                raise ValueError(f"job {job.job_id!r} is already active")
            if job.status != "queued":
                raise ValueError(f"only queued jobs can be submitted, got {job.status!r}")
            self._jobs[job.job_id] = job
            heapq.heappush(self._heap, (-job.priority, next(self._sequence), job.job_id))
        return job

    def pop(self) -> Optional[Job]:
        """Claim the next runnable job (marked ``running``), or ``None``."""
        with self._lock:
            while self._heap:
                _neg_priority, _seq, job_id = heapq.heappop(self._heap)
                job = self._jobs.get(job_id)
                if job is None or job.status != "queued":
                    continue  # cancelled (or retried under a newer entry) while queued
                job.status = "running"
                job.attempts += 1
                return job
        return None

    def requeue(self, job: Job) -> bool:
        """Put a failed execution back in line if attempts remain.

        Returns True when the job was requeued, False when it was marked
        ``failed`` (out of attempts) or had been cancelled meanwhile.
        """
        with self._lock:
            if job.cancel_requested:
                job.status = "cancelled"
                return False
            if job.attempts >= job.max_attempts:
                job.status = "failed"
                return False
            job.status = "queued"
            heapq.heappush(self._heap, (-job.priority, next(self._sequence), job.job_id))
            return True

    def finish(self, job: Job, result: Optional[Dict[str, object]] = None) -> None:
        """Mark a running job ``done`` (or ``cancelled`` if requested)."""
        with self._lock:
            job.status = "cancelled" if job.cancel_requested else "done"
            if result is not None:
                job.result = result

    def fail(self, job: Job, error: str) -> None:
        """Record a failed execution; terminal only when attempts ran out."""
        job.error = error
        self.requeue(job)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job existed and was not terminal."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                return False
            job.cancel_requested = True
            if job.status == "queued":
                job.status = "cancelled"
            return True

    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up by id."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, newest submission order last."""
        with self._lock:
            return list(self._jobs.values())

    def prune_terminal(self) -> int:
        """Forget finished jobs; returns how many were dropped.

        A serve-forever daemon would otherwise accumulate every job it ever
        ran.  The disk spool stays the source of truth for job history;
        stale heap entries of pruned jobs are skipped naturally by
        :meth:`pop`.
        """
        with self._lock:
            terminal = [job_id for job_id, job in self._jobs.items() if job.is_terminal]
            for job_id in terminal:
                del self._jobs[job_id]
            return len(terminal)

    def counts(self) -> Dict[str, int]:
        """Number of jobs per status (all statuses present)."""
        counts = {status: 0 for status in JOB_STATUSES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.status] += 1
        return counts

    def __repr__(self) -> str:
        counts = self.counts()
        rendered = ", ".join(f"{status}={count}" for status, count in counts.items() if count)
        return f"JobQueue({rendered or 'empty'})"
