"""Sharded spool layout: N independent job shards under one service root.

The cluster layer (PR 5) serialises every claim, release and reclaim
through a single flat ``jobs/`` directory and a single ``leases/`` tree.
That is correct — the rename-based claim is atomic per directory entry —
but at high submit rates all workers contend on the same directory's
rename traffic and every spool scan walks one ever-growing listing.

This module splits the spool into N independent shards keyed by a stable
hash prefix of the job id::

    <root>/shards.json             # {"layout_version": 1, "shards": N}
    <root>/jobs/s00/<id>.json      # spool records of shard 0
    <root>/jobs/s00/<id>.cancel    # cancel markers live with their record
    <root>/leases/s00/<worker>/    # per-shard lease tree
    <root>/workers/<worker>.json   # heartbeats stay unsharded (per process)

Design rules:

* **Flat is shards=1.**  A one-shard layout *is* the legacy flat layout —
  ``jobs/<id>.json`` and ``leases/<worker>/<id>.json`` with no shard
  directories — so every pre-sharding root keeps working unchanged and
  the sharded code paths degrade to exactly the old behaviour.
* **Stable hash.**  Shard assignment uses ``blake2b(job_id)`` (never
  Python's ``hash()``, which is salted per process); the same job id maps
  to the same shard from any process, any Python version, any machine.
* **One marker, one version.**  ``shards.json`` records the shard count
  and :data:`SHARD_LAYOUT_VERSION`.  A missing marker means a flat
  (1-shard) root.  An unknown version is a hard error — never guess at
  someone else's layout.
* **Migration is a quiescent, rename-only rebucket.**  Changing the shard
  count moves every spool record, cancel marker and lease file to its new
  shard directory with ``os.rename`` — same filesystem, byte-for-byte,
  no copies — and refuses to run while any live daemon or worker
  heartbeat is present.  Claim/reclaim/cancel/gc semantics are unchanged
  *within* a shard; migration only changes which directory a job lives in.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.obs.events import event_log_for

#: Version of the on-disk shard layout; bump on incompatible change.
SHARD_LAYOUT_VERSION = 1

#: Name of the shard-layout marker file under a service root.
SHARD_MARKER_NAME = "shards.json"

#: Upper bound on the shard count (two-digit directory names, and past
#: ~64 directories the per-shard rename contention this layer removes is
#: no longer the bottleneck).
MAX_SHARDS = 64


def shard_index(job_id: str, shards: int) -> int:
    """Stable shard assignment of a job id for an ``shards``-way layout.

    Uses blake2b, not ``hash()``: the mapping must be identical across
    processes, interpreter restarts and Python versions, because any
    client may compute a spool path for a job another process submitted.
    """
    if shards <= 1:
        return 0
    digest = hashlib.blake2b(job_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def shard_dir_name(index: int) -> str:
    """Directory name of one shard (``s00`` .. ``s63``)."""
    return f"s{index:02d}"


@dataclass(frozen=True)
class SpoolLayout:
    """Path arithmetic for a service root's (possibly sharded) spool.

    All spool-path decisions in the service layer go through this class;
    nothing else is allowed to assume where a job record or lease file
    lives.  A 1-shard layout reproduces the flat legacy paths exactly.
    """

    root: Path
    shards: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.shards <= MAX_SHARDS:
            raise ValueError(f"shards must be in 1..{MAX_SHARDS}, got {self.shards}")

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    # -- assignment ---------------------------------------------------------------

    def shard_of(self, job_id: str) -> int:
        return shard_index(job_id, self.shards)

    def shard_name(self, index: int) -> str:
        return shard_dir_name(index)

    def shard_names(self) -> List[str]:
        return [shard_dir_name(index) for index in range(self.shards)]

    def shard_tag(self, job_id: str) -> Optional[str]:
        """Shard name for event tagging, or ``None`` on a flat root.

        Returning ``None`` (which :meth:`EventLog.emit` drops) keeps flat
        roots' event records byte-compatible with pre-sharding logs.
        """
        return shard_dir_name(self.shard_of(job_id)) if self.sharded else None

    # -- spool paths --------------------------------------------------------------

    def jobs_dir(self, shard: int = 0) -> Path:
        base = self.root / "jobs"
        return base / shard_dir_name(shard) if self.sharded else base

    def jobs_dirs(self) -> List[Path]:
        return [self.jobs_dir(index) for index in range(self.shards)]

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir(self.shard_of(job_id)) / f"{job_id}.json"

    def cancel_path(self, job_id: str) -> Path:
        return self.jobs_dir(self.shard_of(job_id)) / f"{job_id}.cancel"

    # -- lease paths --------------------------------------------------------------

    def leases_root(self) -> Path:
        return self.root / "leases"

    def leases_dir(self, shard: int = 0) -> Path:
        base = self.leases_root()
        return base / shard_dir_name(shard) if self.sharded else base

    def leases_dirs(self) -> List[Path]:
        return [self.leases_dir(index) for index in range(self.shards)]

    def worker_lease_dir(self, worker_id: str, shard: int = 0) -> Path:
        return self.leases_dir(shard) / worker_id

    def worker_lease_dirs(self, worker_id: str) -> List[Path]:
        return [self.worker_lease_dir(worker_id, index) for index in range(self.shards)]

    def lease_path(self, worker_id: str, job_id: str) -> Path:
        return self.worker_lease_dir(worker_id, self.shard_of(job_id)) / f"{job_id}.json"

    def lease_files(self, job_id: str) -> List[Path]:
        """Every worker's lease file for one job (at most one, normally)."""
        directory = self.leases_dir(self.shard_of(job_id))
        if not directory.exists():
            return []
        return sorted(directory.glob(f"*/{job_id}.json"))

    def iter_lease_files(
        self, include_temps: bool = False
    ) -> Iterator[Tuple[Path, str, int]]:
        """Yield ``(path, worker_id, shard)`` for every lease file.

        ``include_temps`` also yields ``.reclaim`` temp files stranded by
        a reclaimer that died mid-steal (migration must carry them along:
        until resolved, such a file is the only copy of its job record).
        """
        pattern = "*/*" if include_temps else "*/*.json"
        for shard in range(self.shards):
            directory = self.leases_dir(shard)
            if not directory.exists():
                continue
            for path in sorted(directory.glob(pattern)):
                if not path.is_file():
                    continue
                yield path, path.parent.name, shard

    def ensure_dirs(self) -> None:
        """Create every shard's jobs directory (leases are made on claim)."""
        for directory in self.jobs_dirs():
            directory.mkdir(parents=True, exist_ok=True)


# -- marker ------------------------------------------------------------------------


def _marker_path(root: Union[str, Path]) -> Path:
    return Path(root) / SHARD_MARKER_NAME


def write_shard_marker(root: Union[str, Path], shards: int) -> None:
    payload = {"layout_version": SHARD_LAYOUT_VERSION, "shards": int(shards)}
    path = _marker_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def read_layout(root: Union[str, Path]) -> SpoolLayout:
    """The layout recorded at ``root`` (flat 1-shard when no marker exists).

    Read-only: safe for clients (``submit``, ``status``, ``events``) that
    must never mutate a root they merely inspect.
    """
    root = Path(root)
    try:
        payload = json.loads(_marker_path(root).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return SpoolLayout(root=root, shards=1)
    if not isinstance(payload, dict):
        return SpoolLayout(root=root, shards=1)
    version = payload.get("layout_version")
    if version != SHARD_LAYOUT_VERSION:
        raise RuntimeError(
            f"unsupported shard layout version {version!r} at {root} "
            f"(this build speaks version {SHARD_LAYOUT_VERSION})"
        )
    shards = payload.get("shards")
    if not isinstance(shards, int) or not 1 <= shards <= MAX_SHARDS:
        raise RuntimeError(f"corrupt shard marker at {root}: shards={shards!r}")
    return SpoolLayout(root=root, shards=shards)


def ensure_layout(root: Union[str, Path], shards: Optional[int] = None) -> SpoolLayout:
    """Open a root for service use, migrating to ``shards`` if requested.

    ``shards=None`` keeps whatever the marker says (flat when absent).
    A differing explicit count triggers the one-shot in-place migration;
    an equal one is a no-op beyond (re)stamping the marker.  Either way
    the marker is written, so the first sharded open of a flat root
    up-converts it and later marker-less readers cannot misroute jobs.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    current = read_layout(root)
    target = current.shards if shards is None else int(shards)
    layout = SpoolLayout(root=root, shards=target)
    if target != current.shards:
        migrate_layout(root, current, layout)
    elif not _marker_path(root).exists():
        write_shard_marker(root, target)
    layout.ensure_dirs()
    return layout


# -- migration ---------------------------------------------------------------------


def _live_processes(root: Path) -> List[str]:
    """Names of live daemon/worker processes attached to this root."""
    from repro.service.cluster import read_worker_heartbeats, worker_is_alive
    from repro.service.daemon import heartbeat_is_fresh

    live: List[str] = []
    try:
        heartbeat = json.loads((root / "service.json").read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        heartbeat = None
    if isinstance(heartbeat, dict) and heartbeat_is_fresh(heartbeat):
        if heartbeat.get("pid") != os.getpid():
            live.append(f"daemon pid={heartbeat.get('pid')}")
    for worker_id, beat in read_worker_heartbeats(root).items():
        if worker_is_alive(beat) and beat.get("pid") != os.getpid():
            live.append(worker_id)
    return live


def _prune_empty_shard_dirs(layout: SpoolLayout) -> None:
    """Best-effort rmdir of the old layout's now-empty directories."""
    candidates: List[Path] = []
    if layout.sharded:
        candidates.extend(layout.jobs_dirs())
        for directory in layout.leases_dirs():
            if directory.exists():
                candidates.extend(child for child in directory.iterdir() if child.is_dir())
            candidates.append(directory)
    else:
        leases = layout.leases_root()
        if leases.exists():
            candidates.extend(child for child in leases.iterdir() if child.is_dir())
    for directory in candidates:
        try:
            directory.rmdir()
        except OSError:
            pass  # not empty or already gone; harmless either way


def migrate_layout(root: Union[str, Path], old: SpoolLayout, new: SpoolLayout) -> int:
    """Rebucket a quiescent root from ``old`` to ``new`` shard count.

    Every spool record, cancel marker and lease file is moved with
    ``os.rename`` — byte-for-byte, no re-serialisation — to the directory
    its job id hashes to under the new layout.  Returns the number of
    files moved.  Raises :class:`RuntimeError` if any live daemon or
    worker heartbeat is attached to the root: resharding under a running
    fleet would race its claim renames.
    """
    root = Path(root)
    if old.shards == new.shards:
        return 0
    live = _live_processes(root)
    if live:
        raise RuntimeError(
            f"refusing to reshard {root} ({old.shards} -> {new.shards} shards): "
            f"live processes attached: {', '.join(sorted(live))}"
        )
    moved = 0
    for directory in old.jobs_dirs():
        if not directory.exists():
            continue
        for path in sorted(directory.iterdir()):
            if not path.is_file() or path.suffix not in (".json", ".cancel"):
                continue
            target = new.jobs_dir(new.shard_of(path.stem)) / path.name
            if target == path:
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            os.rename(path, target)
            moved += 1
    for path, worker_id, _shard in list(old.iter_lease_files(include_temps=True)):
        job_id = path.name.split(".", 1)[0]
        target = new.worker_lease_dir(worker_id, new.shard_of(job_id)) / path.name
        if target == path:
            continue
        target.parent.mkdir(parents=True, exist_ok=True)
        os.rename(path, target)
        moved += 1
    _prune_empty_shard_dirs(old)
    write_shard_marker(root, new.shards)
    event_log_for(root).emit(
        "resharded", shards=new.shards, previous=old.shards, moved=moved
    )
    return moved


def adopt_stray_records(layout: SpoolLayout) -> int:
    """Re-bucket records dropped into the *flat* paths of a sharded root.

    A submitter that read the layout an instant before the shard marker
    appeared writes its record (or ``.cancel`` marker) to the flat
    ``jobs/`` path — and the one-shot migration pass may already have
    scanned past it.  Every scanning process on a sharded root calls this
    before claiming, so such strays are adopted into their home shard
    within one poll instead of starving forever.  The adoption is the same
    atomic rename the migration uses; when several workers race, one wins
    and the losers' ``OSError`` is ignored, so a job is never duplicated.

    Flat layouts return 0 without touching the filesystem.
    """
    if not layout.sharded:
        return 0
    jobs_root = layout.root / "jobs"
    moved = 0
    try:
        entries = sorted(jobs_root.iterdir())
    except OSError:
        return 0
    for path in entries:
        if not path.is_file() or path.suffix not in (".json", ".cancel"):
            continue
        target = layout.jobs_dir(layout.shard_of(path.stem)) / path.name
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(path, target)
        except OSError:
            continue  # a racing adopter won, or the record was purged
        moved += 1
    if moved:
        event_log_for(layout.root).emit("adopted", moved=moved, shards=layout.shards)
    return moved


__all__ = [
    "SHARD_LAYOUT_VERSION",
    "SHARD_MARKER_NAME",
    "MAX_SHARDS",
    "SpoolLayout",
    "shard_index",
    "shard_dir_name",
    "read_layout",
    "ensure_layout",
    "migrate_layout",
    "adopt_stray_records",
    "write_shard_marker",
]
