"""repro — a reproduction of "Towards Global Routing With RLC Crosstalk Constraints".

The package reimplements, in pure Python, the complete system of Ma & He
(DAC 2002): the LSK crosstalk noise model, the per-region SINO solver, the
iterative-deletion global router, the three-phase GSINO flow and the two
baseline flows the paper compares against, plus every substrate they need
(technology parameters, a coupled-RLC transient simulator standing in for
SPICE, synthetic ISPD'98/IBM-style benchmarks, and the evaluation metrics of
Tables 1-3).  The :mod:`repro.engine` layer scales all of it: pluggable
serial/thread/process execution backends, a content-addressed cache of panel
solutions shared across flows and phases, and sweep orchestration over the
experiment grid.

Quick start::

    from repro.bench import generate_circuit
    from repro.gsino import GsinoConfig, compare_flows

    circuit = generate_circuit("ibm01", sensitivity_rate=0.3, scale=0.03, seed=1)
    config = GsinoConfig(length_scale=1.0 / (0.03 ** 0.5))
    results = compare_flows(circuit.grid, circuit.netlist, config)
    print(results["gsino"].metrics.summary())

See DESIGN.md (repository root) for the full system inventory, layer map
and the scaled-instance methodology.
"""

__version__ = "1.1.0"

__all__ = [
    "tech",
    "circuit",
    "noise",
    "sino",
    "grid",
    "router",
    "engine",
    "gsino",
    "bench",
    "analysis",
]
