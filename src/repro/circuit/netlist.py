"""Circuit container: nodes, elements and validation.

A :class:`Circuit` is built incrementally (``add_resistor`` and friends) and
then handed to :class:`repro.circuit.mna.TransientSimulator`.  The container
owns node-name bookkeeping and element validation; it knows nothing about
matrices.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.circuit.elements import (
    GROUND,
    Capacitor,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from repro.circuit.waveforms import PiecewiseLinear, constant


class Circuit:
    """A flat netlist of linear elements referenced to a single ground node.

    Node names are arbitrary non-empty strings; ``"0"`` (``GROUND``) is the
    reference.  Element names must be unique within their element class.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.inductors: List[Inductor] = []
        self.mutuals: List[MutualInductance] = []
        self.sources: List[VoltageSource] = []
        self._node_names: Dict[str, None] = {GROUND: None}
        self._element_names: Dict[str, None] = {}

    # -- construction -----------------------------------------------------

    def _register_nodes(self, *nodes: str) -> None:
        for node in nodes:
            if not node:
                raise ValueError("node names must be non-empty strings")
            self._node_names.setdefault(node, None)

    def _register_element_name(self, name: str) -> None:
        if not name:
            raise ValueError("element names must be non-empty strings")
        if name in self._element_names:
            raise ValueError(f"duplicate element name {name!r} in circuit {self.name!r}")
        self._element_names[name] = None

    def add_resistor(self, name: str, node_pos: str, node_neg: str, resistance: float) -> Resistor:
        """Add a resistor and return it."""
        element = Resistor(name=name, node_pos=node_pos, node_neg=node_neg, resistance=resistance)
        self._register_element_name(name)
        self._register_nodes(node_pos, node_neg)
        self.resistors.append(element)
        return element

    def add_capacitor(
        self,
        name: str,
        node_pos: str,
        node_neg: str,
        capacitance: float,
        initial_voltage: float = 0.0,
    ) -> Capacitor:
        """Add a capacitor and return it."""
        element = Capacitor(
            name=name,
            node_pos=node_pos,
            node_neg=node_neg,
            capacitance=capacitance,
            initial_voltage=initial_voltage,
        )
        self._register_element_name(name)
        self._register_nodes(node_pos, node_neg)
        self.capacitors.append(element)
        return element

    def add_inductor(
        self,
        name: str,
        node_pos: str,
        node_neg: str,
        inductance: float,
        initial_current: float = 0.0,
    ) -> Inductor:
        """Add an inductor and return it."""
        element = Inductor(
            name=name,
            node_pos=node_pos,
            node_neg=node_neg,
            inductance=inductance,
            initial_current=initial_current,
        )
        self._register_element_name(name)
        self._register_nodes(node_pos, node_neg)
        self.inductors.append(element)
        return element

    def add_mutual(self, name: str, inductor_a: str, inductor_b: str, mutual: float) -> MutualInductance:
        """Couple two previously added inductors with a mutual inductance."""
        element = MutualInductance(name=name, inductor_a=inductor_a, inductor_b=inductor_b, mutual=mutual)
        self._register_element_name(name)
        self.mutuals.append(element)
        return element

    def add_voltage_source(
        self,
        name: str,
        node_pos: str,
        node_neg: str,
        waveform: Optional[PiecewiseLinear] = None,
        dc_value: float = 0.0,
    ) -> VoltageSource:
        """Add a voltage source; either a waveform or a DC value."""
        if waveform is None:
            waveform = constant(dc_value)
        element = VoltageSource(name=name, node_pos=node_pos, node_neg=node_neg, waveform=waveform)
        self._register_element_name(name)
        self._register_nodes(node_pos, node_neg)
        self.sources.append(element)
        return element

    # -- queries ----------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        """All node names including ground, in insertion order."""
        return list(self._node_names)

    @property
    def non_ground_nodes(self) -> List[str]:
        """All node names excluding ground, in insertion order."""
        return [node for node in self._node_names if node != GROUND]

    def element_count(self) -> int:
        """Total number of elements (mutual couplings included)."""
        return (
            len(self.resistors)
            + len(self.capacitors)
            + len(self.inductors)
            + len(self.mutuals)
            + len(self.sources)
        )

    def inductor_by_name(self, name: str) -> Inductor:
        """Look up an inductor by name (raises KeyError if absent)."""
        for inductor in self.inductors:
            if inductor.name == name:
                return inductor
        raise KeyError(f"no inductor named {name!r} in circuit {self.name!r}")

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency before simulation.

        Raises
        ------
        ValueError
            If the circuit has no elements, references ground nowhere, has a
            mutual inductance referring to a missing inductor, or has a
            physically impossible coupling (``M > sqrt(L1 L2)``).
        """
        if self.element_count() == 0:
            raise ValueError(f"circuit {self.name!r} has no elements")

        touches_ground = False
        for group in (self.resistors, self.capacitors, self.inductors, self.sources):
            for element in group:
                if GROUND in (element.node_pos, element.node_neg):
                    touches_ground = True
                    break
            if touches_ground:
                break
        if not touches_ground:
            raise ValueError(f"circuit {self.name!r} never references the ground node {GROUND!r}")

        inductances = {inductor.name: inductor.inductance for inductor in self.inductors}
        for mutual in self.mutuals:
            for ref in (mutual.inductor_a, mutual.inductor_b):
                if ref not in inductances:
                    raise ValueError(
                        f"mutual inductance {mutual.name!r} references unknown inductor {ref!r}"
                    )
            limit = math.sqrt(inductances[mutual.inductor_a] * inductances[mutual.inductor_b])
            if mutual.mutual > limit * (1.0 + 1e-9):
                raise ValueError(
                    f"mutual inductance {mutual.name!r} ({mutual.mutual}) exceeds "
                    f"sqrt(L1*L2) = {limit}"
                )

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, nodes={len(self._node_names)}, "
            f"R={len(self.resistors)}, C={len(self.capacitors)}, "
            f"L={len(self.inductors)}, K={len(self.mutuals)}, V={len(self.sources)})"
        )
