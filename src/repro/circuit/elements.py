"""Circuit element descriptions used by the MNA simulator.

Elements are plain dataclasses: they carry the node names they connect and
their value, and nothing else.  Matrix stamping lives in
:mod:`repro.circuit.mna`; this separation keeps the element set easy to test
and extend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuit.waveforms import PiecewiseLinear

#: Name of the reference node.  Every circuit must reference it at least once.
GROUND = "0"


@dataclass(frozen=True)
class Resistor:
    """A linear resistor between two nodes (ohms)."""

    name: str
    node_pos: str
    node_neg: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError(f"resistor {self.name}: resistance must be positive, got {self.resistance}")
        if self.node_pos == self.node_neg:
            raise ValueError(f"resistor {self.name}: both terminals on node {self.node_pos!r}")


@dataclass(frozen=True)
class Capacitor:
    """A linear capacitor between two nodes (farads)."""

    name: str
    node_pos: str
    node_neg: str
    capacitance: float
    initial_voltage: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError(f"capacitor {self.name}: capacitance must be positive, got {self.capacitance}")
        if self.node_pos == self.node_neg:
            raise ValueError(f"capacitor {self.name}: both terminals on node {self.node_pos!r}")


@dataclass(frozen=True)
class Inductor:
    """A linear inductor between two nodes (henries).

    Inductors introduce a branch-current unknown in MNA; mutual coupling
    between two inductors is expressed with :class:`MutualInductance`.
    """

    name: str
    node_pos: str
    node_neg: str
    inductance: float
    initial_current: float = 0.0

    def __post_init__(self) -> None:
        if self.inductance <= 0.0:
            raise ValueError(f"inductor {self.name}: inductance must be positive, got {self.inductance}")
        if self.node_pos == self.node_neg:
            raise ValueError(f"inductor {self.name}: both terminals on node {self.node_pos!r}")


@dataclass(frozen=True)
class MutualInductance:
    """Mutual inductance (henries) between two named inductors.

    The coupling must satisfy ``M <= sqrt(L1 * L2)`` (checked at circuit
    finalisation when both inductors are known).
    """

    name: str
    inductor_a: str
    inductor_b: str
    mutual: float

    def __post_init__(self) -> None:
        if self.mutual < 0.0:
            raise ValueError(f"mutual inductance {self.name}: value must be non-negative, got {self.mutual}")
        if self.inductor_a == self.inductor_b:
            raise ValueError(f"mutual inductance {self.name}: cannot couple inductor to itself")


@dataclass(frozen=True)
class VoltageSource:
    """An independent voltage source with a piecewise-linear waveform.

    A constant source is expressed with a single-point waveform.  Voltage
    sources introduce a branch-current unknown in MNA.
    """

    name: str
    node_pos: str
    node_neg: str
    waveform: PiecewiseLinear

    def __post_init__(self) -> None:
        if self.node_pos == self.node_neg:
            raise ValueError(f"voltage source {self.name}: both terminals on node {self.node_pos!r}")

    def voltage_at(self, time: float) -> float:
        """Source value at an absolute time (seconds)."""
        return self.waveform.value_at(time)


Element = object  # historical alias; kept for typing readability in callers


def element_nodes(element: object) -> tuple:
    """Return the node names an element touches (empty for MutualInductance)."""
    if isinstance(element, MutualInductance):
        return ()
    node_pos: Optional[str] = getattr(element, "node_pos", None)
    node_neg: Optional[str] = getattr(element, "node_neg", None)
    if node_pos is None or node_neg is None:
        raise TypeError(f"object {element!r} is not a circuit element")
    return (node_pos, node_neg)
