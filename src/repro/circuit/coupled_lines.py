"""Coupled RLC line circuits for a panel of parallel global wires.

A "panel" is the set of parallel tracks inside one routing region (the unit
SINO operates on).  To characterise crosstalk the paper simulates such panels
in SPICE: each wire is a distributed RLC line, wires couple through sidewall
capacitance and mutual inductance, aggressors switch, the victim is held
quiet, and shields are tied to ground.  This module builds exactly that
circuit for our MNA simulator.

Each wire is discretised into ``segments_per_wire`` RLC sections.  Coupling
capacitance is only stamped between adjacent tracks (it is strongly screened
by intermediate conductors), while mutual inductance is stamped between every
pair of signal/shield tracks (it is long-range) with the geometric decay
provided by :func:`repro.tech.parasitics.extract_parasitics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.elements import GROUND
from repro.circuit.mna import TransientResult, TransientSimulator
from repro.circuit.waveforms import constant, ramp
from repro.tech.driver import UniformInterfaceModel
from repro.tech.itrs import Technology
from repro.tech.parasitics import extract_parasitics


class WireRole(enum.Enum):
    """What a track in the panel is doing during the noise characterisation."""

    AGGRESSOR = "aggressor"
    VICTIM = "victim"
    QUIET = "quiet"
    SHIELD = "shield"

    @property
    def is_signal(self) -> bool:
        """True for tracks that carry a signal net (not shields)."""
        return self is not WireRole.SHIELD


@dataclass(frozen=True)
class CoupledLineConfig:
    """Parameters of a panel characterisation run.

    Attributes
    ----------
    technology:
        Technology node supplying geometry and parasitics.
    interface:
        Uniform driver / receiver model shared by every signal wire.
    wire_length:
        Length of every wire in the panel, in metres.
    segments_per_wire:
        Number of RLC sections each wire is split into.  Five sections per
        wire are enough for the noise peak to converge at global-wire lengths.
    shield_resistance:
        Resistance of the via connection tying each shield end to the P/G
        network, in ohms.
    """

    technology: Technology
    interface: UniformInterfaceModel
    wire_length: float
    segments_per_wire: int = 5
    shield_resistance: float = 1.0

    def __post_init__(self) -> None:
        if self.wire_length <= 0.0:
            raise ValueError(f"wire_length must be positive, got {self.wire_length}")
        if self.segments_per_wire < 1:
            raise ValueError(f"segments_per_wire must be >= 1, got {self.segments_per_wire}")
        if self.shield_resistance <= 0.0:
            raise ValueError(f"shield_resistance must be positive, got {self.shield_resistance}")


@dataclass
class CoupledLinePanel:
    """A built panel circuit plus the bookkeeping needed to read results.

    Attributes
    ----------
    circuit:
        The assembled :class:`~repro.circuit.netlist.Circuit`.
    roles:
        The role of each track, in track order.
    sink_nodes:
        Node name of the far (receiver) end of each track; shields map to
        their grounded far-end node.
    source_nodes:
        Node name of the near (driver) end of each track.
    """

    circuit: Circuit
    roles: Tuple[WireRole, ...]
    sink_nodes: Tuple[str, ...]
    source_nodes: Tuple[str, ...]
    config: CoupledLineConfig = field(repr=False, default=None)  # type: ignore[assignment]

    def victim_sinks(self) -> List[str]:
        """Sink nodes of all victim tracks."""
        return [node for node, role in zip(self.sink_nodes, self.roles) if role is WireRole.VICTIM]


def _wire_node(track: int, section: int) -> str:
    """Internal node naming scheme: ``w<track>_n<section>``."""
    return f"w{track}_n{section}"


def build_panel_circuit(config: CoupledLineConfig, roles: Sequence[WireRole]) -> CoupledLinePanel:
    """Build the MNA circuit of a panel with the given track roles.

    Aggressors are driven by a 0 -> Vdd ramp behind the driver resistance,
    victims and quiet wires are held at 0 V behind the same driver, and
    shields are tied to ground through ``shield_resistance`` at both ends.
    Every signal wire sees the receiver load capacitance at its far end.
    """
    roles = tuple(roles)
    if not roles:
        raise ValueError("a panel needs at least one track")
    if not any(role is WireRole.VICTIM for role in roles):
        raise ValueError("a panel characterisation needs at least one victim track")

    tech = config.technology
    interface = config.interface
    segments = config.segments_per_wire
    segment_length = config.wire_length / segments

    circuit = Circuit(name=f"panel_{len(roles)}tracks")
    source_nodes: List[str] = []
    sink_nodes: List[str] = []

    # Per-wire parasitics (same for every track since geometry is uniform).
    unit = extract_parasitics(tech, config.wire_length, neighbour_tracks=1)
    seg_r = unit.resistance * segment_length
    seg_cg = unit.ground_capacitance * segment_length
    seg_l = unit.self_inductance * segment_length

    # Wire bodies: driver, RLC ladder, receiver.
    for track, role in enumerate(roles):
        near = _wire_node(track, 0)
        source_nodes.append(near)
        if role is WireRole.SHIELD:
            circuit.add_resistor(f"rshield_near_{track}", near, GROUND, config.shield_resistance)
        else:
            drive_node = f"drv{track}"
            if role is WireRole.AGGRESSOR:
                waveform = ramp(interface.driver.vdd, interface.driver.rise_time)
            else:
                waveform = constant(0.0)
            circuit.add_voltage_source(f"vsrc{track}", drive_node, GROUND, waveform=waveform)
            circuit.add_resistor(f"rdrv{track}", drive_node, near, interface.driver.resistance)

        for section in range(segments):
            left = _wire_node(track, section)
            mid = f"w{track}_m{section}"
            right = _wire_node(track, section + 1)
            circuit.add_resistor(f"r{track}_{section}", left, mid, seg_r)
            circuit.add_inductor(f"l{track}_{section}", mid, right, seg_l)
            circuit.add_capacitor(f"cg{track}_{section}", right, GROUND, seg_cg)

        far = _wire_node(track, segments)
        sink_nodes.append(far)
        if role is WireRole.SHIELD:
            circuit.add_resistor(f"rshield_far_{track}", far, GROUND, config.shield_resistance)
        else:
            circuit.add_capacitor(f"cload{track}", far, GROUND, interface.receiver.capacitance)

    # Coupling capacitance: adjacent tracks only.
    for track in range(len(roles) - 1):
        cc = extract_parasitics(tech, config.wire_length, neighbour_tracks=1).coupling_capacitance
        seg_cc = cc * segment_length
        for section in range(1, segments + 1):
            circuit.add_capacitor(
                f"cc{track}_{track + 1}_{section}",
                _wire_node(track, section),
                _wire_node(track + 1, section),
                seg_cc,
            )

    # Mutual inductance: all track pairs (long range), decaying with distance.
    for track_a in range(len(roles)):
        for track_b in range(track_a + 1, len(roles)):
            distance = track_b - track_a
            mutual = extract_parasitics(tech, config.wire_length, neighbour_tracks=distance).mutual_inductance
            seg_m = mutual * segment_length
            if seg_m <= 0.0:
                continue
            for section in range(segments):
                circuit.add_mutual(
                    f"k{track_a}_{track_b}_{section}",
                    f"l{track_a}_{section}",
                    f"l{track_b}_{section}",
                    seg_m,
                )

    return CoupledLinePanel(
        circuit=circuit,
        roles=roles,
        sink_nodes=tuple(sink_nodes),
        source_nodes=tuple(source_nodes),
        config=config,
    )


def simulate_panel_noise(
    config: CoupledLineConfig,
    roles: Sequence[WireRole],
    stop_time: Optional[float] = None,
    num_steps: int = 600,
) -> Tuple[float, TransientResult]:
    """Simulate a panel and return the peak victim-sink noise voltage.

    Parameters
    ----------
    config:
        Panel characterisation parameters.
    roles:
        Track roles in panel order (must contain at least one victim).
    stop_time:
        Simulation horizon; defaults to four driver rise times plus four times
        the wire's RC delay, which comfortably contains the noise peak.
    num_steps:
        Number of trapezoidal integration steps.

    Returns
    -------
    (noise, result):
        ``noise`` is the largest absolute voltage across all victim sinks;
        ``result`` is the full transient result for further inspection.
    """
    panel = build_panel_circuit(config, roles)
    if stop_time is None:
        unit = extract_parasitics(config.technology, config.wire_length, neighbour_tracks=1)
        wire_rc = (
            unit.resistance
            * config.wire_length
            * (unit.ground_capacitance + unit.coupling_capacitance)
            * config.wire_length
        )
        driver_rc = config.interface.driver.resistance * (
            unit.ground_capacitance * config.wire_length + config.interface.receiver.capacitance
        )
        stop_time = 4.0 * config.interface.driver.rise_time + 4.0 * (wire_rc + driver_rc)
    simulator = TransientSimulator(panel.circuit)
    result = simulator.run(stop_time, num_steps=num_steps)
    victim_sinks = panel.victim_sinks()
    noise = max(result.peak_abs_voltage(node) for node in victim_sinks)
    return noise, result


def roles_from_string(pattern: str) -> Tuple[WireRole, ...]:
    """Parse a compact track-pattern string such as ``"AVSA"``.

    ``A`` = aggressor, ``V`` = victim, ``S`` = shield, ``Q`` = quiet signal.
    Convenient for tests and examples.
    """
    mapping = {
        "A": WireRole.AGGRESSOR,
        "V": WireRole.VICTIM,
        "S": WireRole.SHIELD,
        "Q": WireRole.QUIET,
    }
    roles: List[WireRole] = []
    for char in pattern.strip().upper():
        if char not in mapping:
            raise ValueError(f"unknown track role character {char!r} (expected A, V, S or Q)")
        roles.append(mapping[char])
    return tuple(roles)
