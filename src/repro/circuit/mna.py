"""Modified nodal analysis (MNA) and trapezoidal transient integration.

The simulator assembles the standard MNA system

    G x(t) + C dx/dt = b(t)

where the unknown vector ``x`` stacks the non-ground node voltages, the
inductor branch currents and the voltage-source branch currents.  ``G`` holds
the resistive stamps and the incidence of branch currents, ``C`` holds the
capacitive stamps and the (mutually coupled) inductance matrix, and ``b``
holds the independent source values.

Time integration uses the trapezoidal rule with a fixed step:

    (G + 2/h C) x_{n+1} = b_{n+1} + b_n + (2/h C - G) x_n

which is A-stable and second-order accurate — the same default SPICE uses for
this class of circuit.  The system matrix is constant, so it is factorised
once per run.

This is the module that substitutes for the SPICE simulations used by the
paper to build the LSK lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.circuit.elements import GROUND
from repro.circuit.netlist import Circuit


@dataclass
class TransientResult:
    """Waveforms produced by a transient run.

    Attributes
    ----------
    times:
        1-D array of time points (seconds), including t = 0.
    node_voltages:
        Mapping from node name to its voltage waveform (same length as
        ``times``).  Ground is included and identically zero.
    branch_currents:
        Mapping from inductor / source name to its branch current waveform.
    """

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a node (raises KeyError for unknown nodes)."""
        if node not in self.node_voltages:
            raise KeyError(f"no node named {node!r} in the simulation result")
        return self.node_voltages[node]

    def current(self, element_name: str) -> np.ndarray:
        """Branch current waveform of an inductor or voltage source."""
        if element_name not in self.branch_currents:
            raise KeyError(f"no branch current recorded for element {element_name!r}")
        return self.branch_currents[element_name]

    def peak_abs_voltage(self, node: str) -> float:
        """Largest absolute voltage excursion seen at a node."""
        return float(np.max(np.abs(self.voltage(node))))

    def peak_voltage(self, node: str) -> float:
        """Largest (signed) voltage seen at a node."""
        return float(np.max(self.voltage(node)))

    def final_voltage(self, node: str) -> float:
        """Voltage of a node at the last time point."""
        return float(self.voltage(node)[-1])

    def settle_error(self, node: str, expected: float) -> float:
        """Absolute difference between the final node voltage and ``expected``."""
        return abs(self.final_voltage(node) - expected)


class TransientSimulator:
    """Assembles the MNA system of a :class:`Circuit` and integrates it in time."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._node_index: Dict[str, int] = {}
        for node in circuit.non_ground_nodes:
            self._node_index[node] = len(self._node_index)
        num_nodes = len(self._node_index)

        self._inductor_index: Dict[str, int] = {}
        for inductor in circuit.inductors:
            self._inductor_index[inductor.name] = num_nodes + len(self._inductor_index)
        num_inductors = len(self._inductor_index)

        self._source_index: Dict[str, int] = {}
        for source in circuit.sources:
            self._source_index[source.name] = num_nodes + num_inductors + len(self._source_index)

        self.size = num_nodes + num_inductors + len(self._source_index)
        if self.size == 0:
            raise ValueError(f"circuit {circuit.name!r} produces an empty MNA system")

        self._conductance = np.zeros((self.size, self.size))
        self._dynamic = np.zeros((self.size, self.size))
        self._stamp_resistors()
        self._stamp_capacitors()
        self._stamp_inductors()
        self._stamp_sources()

    # -- stamping ----------------------------------------------------------

    def _node_row(self, node: str) -> Optional[int]:
        """Row/column index of a node, or None for ground."""
        if node == GROUND:
            return None
        return self._node_index[node]

    def _stamp_resistors(self) -> None:
        for resistor in self.circuit.resistors:
            conductance = 1.0 / resistor.resistance
            pos = self._node_row(resistor.node_pos)
            neg = self._node_row(resistor.node_neg)
            if pos is not None:
                self._conductance[pos, pos] += conductance
            if neg is not None:
                self._conductance[neg, neg] += conductance
            if pos is not None and neg is not None:
                self._conductance[pos, neg] -= conductance
                self._conductance[neg, pos] -= conductance

    def _stamp_capacitors(self) -> None:
        for capacitor in self.circuit.capacitors:
            value = capacitor.capacitance
            pos = self._node_row(capacitor.node_pos)
            neg = self._node_row(capacitor.node_neg)
            if pos is not None:
                self._dynamic[pos, pos] += value
            if neg is not None:
                self._dynamic[neg, neg] += value
            if pos is not None and neg is not None:
                self._dynamic[pos, neg] -= value
                self._dynamic[neg, pos] -= value

    def _stamp_inductors(self) -> None:
        for inductor in self.circuit.inductors:
            row = self._inductor_index[inductor.name]
            pos = self._node_row(inductor.node_pos)
            neg = self._node_row(inductor.node_neg)
            # Branch current enters the KCL equations of its terminal nodes.
            if pos is not None:
                self._conductance[pos, row] += 1.0
                self._conductance[row, pos] += 1.0
            if neg is not None:
                self._conductance[neg, row] -= 1.0
                self._conductance[row, neg] -= 1.0
            # Branch voltage equation: v_pos - v_neg - L dI/dt = 0.
            self._dynamic[row, row] -= inductor.inductance
        for mutual in self.circuit.mutuals:
            row_a = self._inductor_index[mutual.inductor_a]
            row_b = self._inductor_index[mutual.inductor_b]
            self._dynamic[row_a, row_b] -= mutual.mutual
            self._dynamic[row_b, row_a] -= mutual.mutual

    def _stamp_sources(self) -> None:
        for source in self.circuit.sources:
            row = self._source_index[source.name]
            pos = self._node_row(source.node_pos)
            neg = self._node_row(source.node_neg)
            if pos is not None:
                self._conductance[pos, row] += 1.0
                self._conductance[row, pos] += 1.0
            if neg is not None:
                self._conductance[neg, row] -= 1.0
                self._conductance[row, neg] -= 1.0

    # -- source vector ------------------------------------------------------

    def _source_vector(self, time: float) -> np.ndarray:
        vector = np.zeros(self.size)
        for source in self.circuit.sources:
            vector[self._source_index[source.name]] = source.voltage_at(time)
        return vector

    # -- initial condition ---------------------------------------------------

    def _initial_state(self) -> np.ndarray:
        """DC operating point at t = 0.

        Capacitors are open and inductor voltages are zero at DC, which is
        exactly what solving ``G x = b(0)`` expresses.  If the DC matrix is
        singular (a node held up only by capacitors), a tiny leak conductance
        to ground is added to make the solve well-posed; the leak is far below
        any physical conductance in the circuit so it does not disturb the
        transient.
        """
        rhs = self._source_vector(0.0)
        matrix = self._conductance.copy()
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError:
            leak = 1e-12
            matrix = matrix + leak * np.eye(self.size)
            solution = np.linalg.solve(matrix, rhs)
        # Honour explicit initial conditions when they were requested.
        for capacitor in self.circuit.capacitors:
            if capacitor.initial_voltage == 0.0:
                continue
            pos = self._node_row(capacitor.node_pos)
            neg = self._node_row(capacitor.node_neg)
            if pos is not None and neg is None:
                solution[pos] = capacitor.initial_voltage
            elif pos is None and neg is not None:
                solution[neg] = -capacitor.initial_voltage
        for inductor in self.circuit.inductors:
            if inductor.initial_current != 0.0:
                solution[self._inductor_index[inductor.name]] = inductor.initial_current
        return solution

    # -- transient ------------------------------------------------------------

    def run(
        self,
        stop_time: float,
        time_step: Optional[float] = None,
        num_steps: Optional[int] = None,
    ) -> TransientResult:
        """Integrate the circuit from t = 0 to ``stop_time``.

        Exactly one of ``time_step`` / ``num_steps`` may be given; the default
        is 2000 uniform steps, which resolves a 0.1 x clock-period rise time
        with dozens of points at the simulation horizons used by the LSK
        table builder.

        Returns
        -------
        TransientResult
            Node-voltage and branch-current waveforms.
        """
        if stop_time <= 0.0:
            raise ValueError(f"stop_time must be positive, got {stop_time}")
        if time_step is not None and num_steps is not None:
            raise ValueError("give either time_step or num_steps, not both")
        if time_step is None:
            steps = 2000 if num_steps is None else int(num_steps)
            if steps < 1:
                raise ValueError(f"num_steps must be >= 1, got {num_steps}")
            time_step = stop_time / steps
        else:
            if time_step <= 0.0 or time_step > stop_time:
                raise ValueError(
                    f"time_step must be in (0, stop_time], got {time_step} for stop_time {stop_time}"
                )
            steps = int(round(stop_time / time_step))
            steps = max(steps, 1)

        h = stop_time / steps
        times = np.linspace(0.0, stop_time, steps + 1)

        lhs = self._conductance + (2.0 / h) * self._dynamic
        rhs_matrix = (2.0 / h) * self._dynamic - self._conductance
        lu, piv = lu_factor(lhs)

        states = np.zeros((steps + 1, self.size))
        states[0] = self._initial_state()
        previous_sources = self._source_vector(0.0)
        for step_index in range(1, steps + 1):
            current_sources = self._source_vector(times[step_index])
            rhs = current_sources + previous_sources + rhs_matrix @ states[step_index - 1]
            states[step_index] = lu_solve((lu, piv), rhs)
            previous_sources = current_sources

        node_voltages: Dict[str, np.ndarray] = {GROUND: np.zeros(steps + 1)}
        for node, index in self._node_index.items():
            node_voltages[node] = states[:, index]
        branch_currents: Dict[str, np.ndarray] = {}
        for name, index in self._inductor_index.items():
            branch_currents[name] = states[:, index]
        for name, index in self._source_index.items():
            branch_currents[name] = states[:, index]
        return TransientResult(
            times=times,
            node_voltages=node_voltages,
            branch_currents=branch_currents,
        )


def simulate(
    circuit: Circuit,
    stop_time: float,
    time_step: Optional[float] = None,
    num_steps: Optional[int] = None,
) -> TransientResult:
    """Convenience wrapper: build a simulator for ``circuit`` and run it."""
    return TransientSimulator(circuit).run(stop_time, time_step=time_step, num_steps=num_steps)


def peak_noise(result: TransientResult, nodes: Sequence[str]) -> float:
    """Largest absolute voltage excursion over a set of observation nodes."""
    if not nodes:
        raise ValueError("peak_noise needs at least one observation node")
    return max(result.peak_abs_voltage(node) for node in nodes)
