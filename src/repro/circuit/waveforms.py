"""Piecewise-linear stimulus waveforms for the transient simulator.

The LSK table characterisation drives aggressor nets with a single rising ramp
(0 to Vdd over the technology rise time) while the victim's driver holds it
quiet at 0 V.  Both are naturally expressed as piecewise-linear waveforms.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class PiecewiseLinear:
    """A piecewise-linear waveform defined by (time, value) breakpoints.

    Before the first breakpoint the waveform holds the first value; after the
    last breakpoint it holds the last value.  Breakpoint times must be strictly
    increasing.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a piecewise-linear waveform needs at least one breakpoint")
        times = [t for t, _ in self.points]
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise ValueError(f"breakpoint times must be strictly increasing, got {times}")

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]]) -> "PiecewiseLinear":
        """Build from any sequence of (time, value) pairs."""
        return cls(points=tuple((float(t), float(v)) for t, v in pairs))

    def value_at(self, time: float) -> float:
        """Evaluate the waveform at an absolute time (seconds)."""
        times = [t for t, _ in self.points]
        if time <= times[0]:
            return self.points[0][1]
        if time >= times[-1]:
            return self.points[-1][1]
        index = bisect.bisect_right(times, time)
        t0, v0 = self.points[index - 1]
        t1, v1 = self.points[index]
        fraction = (time - t0) / (t1 - t0)
        return v0 + fraction * (v1 - v0)

    @property
    def final_value(self) -> float:
        """Value held after the last breakpoint."""
        return self.points[-1][1]

    @property
    def max_abs_value(self) -> float:
        """Largest absolute breakpoint value (bounds the waveform everywhere)."""
        return max(abs(v) for _, v in self.points)


def constant(value: float) -> PiecewiseLinear:
    """A waveform that holds ``value`` for all time."""
    return PiecewiseLinear(points=((0.0, float(value)),))


def step(value: float, at: float = 0.0) -> PiecewiseLinear:
    """An (almost) ideal step from 0 to ``value`` at time ``at``.

    A tiny but finite rise (1 fs) keeps the waveform well-defined for the
    integrator; transient steps are always much larger than that.
    """
    eps = 1e-15
    return PiecewiseLinear(points=((float(at), 0.0), (float(at) + eps, float(value))))


def ramp(value: float, rise_time: float, start: float = 0.0) -> PiecewiseLinear:
    """A linear ramp from 0 to ``value`` starting at ``start`` over ``rise_time``."""
    if rise_time <= 0.0:
        raise ValueError(f"rise_time must be positive, got {rise_time}")
    return PiecewiseLinear(points=((float(start), 0.0), (float(start) + float(rise_time), float(value))))


def falling_ramp(value: float, fall_time: float, start: float = 0.0) -> PiecewiseLinear:
    """A linear ramp from ``value`` down to 0, used for falling-edge aggressors."""
    if fall_time <= 0.0:
        raise ValueError(f"fall_time must be positive, got {fall_time}")
    return PiecewiseLinear(points=((float(start), float(value)), (float(start) + float(fall_time), 0.0)))
