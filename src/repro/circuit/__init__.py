"""A small transient circuit simulator for coupled RLC interconnect.

The paper builds its LSK lookup table by running SPICE on single-region SINO
solutions.  SPICE is not available here, so this sub-package provides the
substitute: a modified-nodal-analysis (MNA) transient simulator that handles
resistors, capacitors, (mutually coupled) inductors, and piecewise-linear
voltage sources — exactly the element set needed to model a panel of parallel
global wires with shields, drivers and receivers.

Modules
-------
* :mod:`repro.circuit.elements` — circuit element dataclasses.
* :mod:`repro.circuit.netlist` — the circuit container / node name registry.
* :mod:`repro.circuit.waveforms` — piecewise-linear stimulus descriptions.
* :mod:`repro.circuit.mna` — MNA matrix assembly and trapezoidal transient
  integration.
* :mod:`repro.circuit.coupled_lines` — builds a multi-segment coupled RLC
  ladder circuit for a panel of parallel wires from technology parasitics.
"""

from repro.circuit.elements import (
    Capacitor,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import PiecewiseLinear, ramp, step
from repro.circuit.mna import TransientResult, TransientSimulator
from repro.circuit.coupled_lines import (
    CoupledLineConfig,
    CoupledLinePanel,
    WireRole,
    build_panel_circuit,
    roles_from_string,
    simulate_panel_noise,
)

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualInductance",
    "VoltageSource",
    "Circuit",
    "PiecewiseLinear",
    "ramp",
    "step",
    "TransientSimulator",
    "TransientResult",
    "CoupledLineConfig",
    "CoupledLinePanel",
    "WireRole",
    "build_panel_circuit",
    "roles_from_string",
    "simulate_panel_noise",
]
