"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_percentage(value: float, decimals: int = 2) -> str:
    """Render a ratio as a percentage string, e.g. ``0.146 -> "14.60%"``."""
    return f"{value * 100:.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table.

    Every cell is stringified; columns are left-aligned for strings and
    right-aligned for numbers, padded to the widest entry.
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row} has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(render_row(row))
    return "\n".join(lines)


def render_comparison(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render a titled table followed by a blank line (for report concatenation)."""
    return format_table(headers, rows, title=title) + "\n"
