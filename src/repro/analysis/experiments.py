"""Experiment drivers that regenerate the paper's tables.

Each driver runs the three flows (ID+NO, iSINO, GSINO) on synthetic instances
of the requested benchmark circuits and extracts the quantity the
corresponding table reports:

* :func:`table1_rows` — crosstalk-violating nets of the ID+NO solutions
  (Table 1),
* :func:`table2_rows` — average wire length of ID+NO vs GSINO (Table 2),
* :func:`table3_rows` — routing area of ID+NO, iSINO and GSINO (Table 3).

All drivers share :func:`run_circuit_comparison`, which runs the flows once
per (circuit, sensitivity-rate) pair.  Instances are independent and seeded,
so :func:`run_table_suite` fans them over a
:class:`~repro.engine.sweep.SweepRunner` execution backend; within each
instance the three flows share one solution cache.  Results are identical
for every backend — the experiments stay reproducible from the seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_percentage, format_table
from repro.bench.ibm import GeneratedCircuit, generate_circuit
from repro.engine.backends import BACKEND_NAMES, create_backend
from repro.engine.cache import SolutionCache
from repro.engine.panels import Engine
from repro.engine.sweep import SweepRunner
from repro.flow.flows import build_context, run_compare
from repro.gsino.config import GsinoConfig
from repro.gsino.pipeline import FlowResult
from repro.sino.anneal import EFFORT_LEVELS, AnnealConfig

if TYPE_CHECKING:  # the service layer sits above analysis; import for types only
    from repro.service.store import ResultStore

#: The benchmark circuits and sensitivity rates the paper's tables cover.
DEFAULT_CIRCUITS: Tuple[str, ...] = ("ibm01", "ibm02", "ibm03", "ibm04", "ibm05", "ibm06")
DEFAULT_RATES: Tuple[float, ...] = (0.3, 0.5)


@dataclass
class ExperimentConfig:
    """Scope and scale of a table-reproduction run.

    Attributes
    ----------
    circuits:
        Benchmark names to include (subset of ibm01–ibm06).
    sensitivity_rates:
        Sensitivity rates to evaluate (the paper uses 0.3 and 0.5).
    scale:
        Benchmark size scale; the default keeps a full six-circuit sweep in
        the order of a minute of CPU.
    seed:
        Base random seed (each circuit adds its index).
    gsino:
        Flow configuration template; its ``length_scale`` is overridden per
        instance so scaled circuits keep full-size electrical behaviour.
    backend:
        Execution backend the sweep fans instances over (``"serial"``,
        ``"thread"`` or ``"process"``).  Instance results are identical
        across backends.
    workers:
        Worker count of a parallel backend; ``None`` uses the CPU count.
    use_cache:
        Whether each instance shares one panel-solution cache across its
        three flows (on by default; purely an execution optimisation).
    sino_effort:
        Per-region SINO effort level — one of
        :data:`repro.sino.anneal.EFFORT_LEVELS`; overrides the template's
        ``sino_effort``.
    chains:
        Independent annealing chains per panel for the annealing effort
        levels (1 = single-chain search, the historic behaviour).
    batch_k:
        Candidate moves scored per batched annealing step (the
        ``anneal-batched`` effort); ``None`` keeps the schedule default.
    store_path:
        Optional directory of a persistent result store
        (:class:`repro.service.store.ResultStore`).  Every instance's cache
        is backed by it, so repeated sweeps — including sweeps in *other
        processes*, and instances fanned over a process backend — warm-start
        from already-solved panels.  Requires ``use_cache``.
    """

    circuits: Tuple[str, ...] = DEFAULT_CIRCUITS
    sensitivity_rates: Tuple[float, ...] = DEFAULT_RATES
    scale: float = 0.03
    seed: int = 7
    gsino: GsinoConfig = field(default_factory=GsinoConfig)
    backend: str = "serial"
    workers: Optional[int] = None
    use_cache: bool = True
    sino_effort: str = "greedy"
    chains: int = 1
    batch_k: Optional[int] = None
    store_path: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if not self.circuits:
            raise ValueError("at least one circuit is required")
        if not self.sensitivity_rates:
            raise ValueError("at least one sensitivity rate is required")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must lie in (0, 1], got {self.scale}")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.workers is not None and self.backend == "serial":
            raise ValueError(
                "workers requires a parallel backend ('thread' or 'process')"
            )
        if self.sino_effort not in EFFORT_LEVELS:
            raise ValueError(
                f"sino_effort must be one of {EFFORT_LEVELS}, got {self.sino_effort!r}"
            )
        if self.chains < 1:
            raise ValueError(f"chains must be >= 1, got {self.chains}")
        if self.batch_k is not None and self.batch_k < 1:
            raise ValueError(f"batch_k must be >= 1, got {self.batch_k}")
        if self.store_path is not None and not self.use_cache:
            raise ValueError("store_path requires use_cache=True")

    def flow_config(self) -> GsinoConfig:
        """The per-instance flow configuration.

        The length scale is matched to ``scale``, and the SINO effort level,
        chain count and batched-evaluation width are folded into the GSINO
        configuration (chains and ``batch_k`` live on the annealing schedule
        so they reach the panel cache key).
        """
        changes: dict = {
            "length_scale": 1.0 / (self.scale ** 0.5),
            "sino_effort": self.sino_effort,
        }
        if self.chains != 1 or self.batch_k is not None:
            schedule = self.gsino.anneal or AnnealConfig()
            overrides: dict = {"chains": self.chains}
            if self.batch_k is not None:
                overrides["batch_k"] = self.batch_k
            changes["anneal"] = replace(schedule, **overrides)
        return self.gsino.with_changes(**changes)

    def instance_runtime(self) -> Tuple[Engine, Optional["ResultStore"]]:
        """The per-instance execution engine and its persistent store.

        Panel solves inside an instance run serially — the sweep already
        parallelises at instance granularity, and nesting pools would
        oversubscribe — but the instance's three flows share one solution
        cache unless caching is disabled.  A configured ``store_path`` backs
        that cache with the persistent tier; the store is (re)opened here,
        inside the worker, so process-backend sweeps each hold their own
        handle on the shared directory (writes are atomic and idempotent).
        The store doubles as the stage-artifact tier of the flow runner, so
        repeated sweeps resume whole stages, not just panels.
        """
        if not self.use_cache:
            return Engine(), None
        store = None
        if self.store_path is not None:
            from repro.service.store import ResultStore  # service sits above analysis

            store = ResultStore(self.store_path)
        return Engine(cache=SolutionCache(store=store)), store

    def instance_engine(self) -> Engine:
        """The per-instance execution engine (see :meth:`instance_runtime`)."""
        return self.instance_runtime()[0]


@dataclass
class CircuitComparison:
    """The three flow results of one (circuit, sensitivity rate) instance."""

    circuit: GeneratedCircuit
    sensitivity_rate: float
    flows: Dict[str, FlowResult]

    @property
    def id_no(self) -> FlowResult:
        """The conventional-routing baseline."""
        return self.flows["id_no"]

    @property
    def isino(self) -> FlowResult:
        """Conventional routing followed by per-region SINO."""
        return self.flows["isino"]

    @property
    def gsino(self) -> FlowResult:
        """The three-phase GSINO flow."""
        return self.flows["gsino"]


def run_circuit_comparison(
    circuit_name: str,
    sensitivity_rate: float,
    config: ExperimentConfig,
    seed_offset: int = 0,
) -> CircuitComparison:
    """Generate one instance and run all three flows on it.

    The instance (grid, netlist, sensitivity) is generated exactly once and
    threaded through all three flows via one shared
    :class:`~repro.flow.graph.FlowContext`; the flows themselves run as
    stage graphs over a single runner, so shared ancestors (the baselines'
    routing, the budgets) are computed once per comparison — and, when a
    ``store_path`` is configured, persisted stage artifacts are restored
    instead of recomputed.
    """
    circuit = generate_circuit(
        circuit_name,
        sensitivity_rate=sensitivity_rate,
        scale=config.scale,
        seed=config.seed + seed_offset,
    )
    engine, store = config.instance_runtime()
    context = build_context(circuit.grid, circuit.netlist, config.flow_config(), engine)
    flows = run_compare(context, store=store).results
    return CircuitComparison(
        circuit=circuit,
        sensitivity_rate=sensitivity_rate,
        flows=flows,
    )


def run_table_suite(config: Optional[ExperimentConfig] = None) -> List[CircuitComparison]:
    """Run the full sweep behind Tables 1–3 (every circuit at every rate).

    The (circuit, rate) grid is fanned over the configured execution backend
    by a :class:`~repro.engine.sweep.SweepRunner`; results come back in the
    canonical grid order regardless of the backend.
    """
    config = config or ExperimentConfig()
    with create_backend(config.backend, config.workers) as backend:
        return SweepRunner(backend=backend).run(config)


# -- Table 1: crosstalk violations of ID+NO ------------------------------------------


def table1_rows(comparisons: Sequence[CircuitComparison]) -> List[List[str]]:
    """Rows of Table 1: violating-net counts and percentages per circuit and rate."""
    by_circuit: Dict[str, Dict[float, CircuitComparison]] = {}
    for comparison in comparisons:
        name = comparison.circuit.profile.name
        by_circuit.setdefault(name, {})[comparison.sensitivity_rate] = comparison
    rows: List[List[str]] = []
    for name in sorted(by_circuit):
        row: List[str] = [name]
        for rate in sorted(by_circuit[name]):
            crosstalk = by_circuit[name][rate].id_no.metrics.crosstalk
            row.append(f"{crosstalk.num_violations} ({format_percentage(crosstalk.violation_fraction)})")
        rows.append(row)
    return rows


def render_table1(comparisons: Sequence[CircuitComparison]) -> str:
    """Table 1 as printable text."""
    rates = sorted({comparison.sensitivity_rate for comparison in comparisons})
    headers = ["circuit"] + [f"sensitivity = {format_percentage(rate, 0)}" for rate in rates]
    return format_table(
        headers,
        table1_rows(comparisons),
        title="Table 1: crosstalk-violating nets in ID+NO solutions",
    )


# -- Table 2: average wire length ------------------------------------------------------


def table2_rows(comparisons: Sequence[CircuitComparison]) -> List[List[str]]:
    """Rows of Table 2: ID+NO vs GSINO average wire length per circuit and rate."""
    rows: List[List[str]] = []
    for comparison in sorted(
        comparisons, key=lambda c: (c.circuit.profile.name, c.sensitivity_rate)
    ):
        id_no_wl = comparison.id_no.metrics.average_wirelength_um
        gsino_wl = comparison.gsino.metrics.average_wirelength_um
        overhead = gsino_wl / id_no_wl - 1.0 if id_no_wl > 0 else 0.0
        rows.append(
            [
                comparison.circuit.profile.name,
                format_percentage(comparison.sensitivity_rate, 0),
                f"{id_no_wl:.1f}",
                f"{gsino_wl:.1f} ({format_percentage(overhead)})",
            ]
        )
    return rows


def render_table2(comparisons: Sequence[CircuitComparison]) -> str:
    """Table 2 as printable text."""
    headers = ["circuit", "sensitivity", "ID+NO wl (um)", "GSINO wl (um)"]
    return format_table(
        headers,
        table2_rows(comparisons),
        title="Table 2: average wire lengths of ID+NO and GSINO solutions",
    )


# -- Table 3: routing area ----------------------------------------------------------------


def table3_rows(comparisons: Sequence[CircuitComparison]) -> List[List[str]]:
    """Rows of Table 3: routing area of the three flows per circuit and rate."""
    rows: List[List[str]] = []
    for comparison in sorted(
        comparisons, key=lambda c: (c.circuit.profile.name, c.sensitivity_rate)
    ):
        id_no_area = comparison.id_no.metrics.area
        isino_area = comparison.isino.metrics.area
        gsino_area = comparison.gsino.metrics.area
        rows.append(
            [
                comparison.circuit.profile.name,
                format_percentage(comparison.sensitivity_rate, 0),
                id_no_area.dimensions_label(),
                f"{isino_area.dimensions_label()} ({format_percentage(isino_area.overhead_vs(id_no_area))})",
                f"{gsino_area.dimensions_label()} ({format_percentage(gsino_area.overhead_vs(id_no_area))})",
            ]
        )
    return rows


def render_table3(comparisons: Sequence[CircuitComparison]) -> str:
    """Table 3 as printable text."""
    headers = ["circuit", "sensitivity", "ID+NO area", "iSINO area", "GSINO area"]
    return format_table(
        headers,
        table3_rows(comparisons),
        title="Table 3: routing areas of ID+NO, iSINO and GSINO solutions",
    )


def render_all_tables(comparisons: Sequence[CircuitComparison]) -> str:
    """Tables 1–3 concatenated, ready to print or write to a file."""
    return "\n\n".join(
        [
            render_table1(comparisons),
            render_table2(comparisons),
            render_table3(comparisons),
        ]
    )
