"""Experiment drivers and plain-text reporting.

:mod:`repro.analysis.experiments` regenerates the rows of the paper's Tables
1–3 (and the model-validation studies) from the synthetic benchmark suite;
:mod:`repro.analysis.report` renders them as aligned plain-text tables the
way the paper prints them.
"""

from repro.analysis.report import format_table, format_percentage, render_comparison
from repro.analysis.experiments import (
    CircuitComparison,
    ExperimentConfig,
    run_circuit_comparison,
    table1_rows,
    table2_rows,
    table3_rows,
    run_table_suite,
)

__all__ = [
    "format_table",
    "format_percentage",
    "render_comparison",
    "CircuitComparison",
    "ExperimentConfig",
    "run_circuit_comparison",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "run_table_suite",
]
