"""Per-net connection graphs for the ID router.

The paper defines the net connection graph ``G_i = (V_i, E_i)`` of net
``N_i`` as the grid graph over the regions inside the bounding box of the
net's pins, with an edge between every pair of adjacent regions.  The ID
router deletes edges from these graphs until each becomes a tree.

The implementation keeps its own light-weight adjacency structure rather than
a :mod:`networkx` graph because the router's inner loop (deletability checks
and incremental edge removal) dominates run time; networkx remains available
for analysis and tests via :meth:`ConnectionGraph.to_networkx`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.grid.nets import Net
from repro.grid.regions import RegionCoord, RoutingGrid
from repro.grid.routes import GridEdge, normalize_edge


class ConnectionGraph:
    """The mutable routing graph of one net during iterative deletion."""

    def __init__(self, net_id: int, pin_regions: Iterable[RegionCoord]) -> None:
        self.net_id = net_id
        self.pin_regions: Tuple[RegionCoord, ...] = tuple(dict.fromkeys(pin_regions))
        if not self.pin_regions:
            raise ValueError(f"net {net_id} has no pin regions")
        self._adjacency: Dict[RegionCoord, Set[RegionCoord]] = {}
        self._edges: Set[GridEdge] = set()

    # -- construction -------------------------------------------------------

    def add_node(self, coord: RegionCoord) -> None:
        """Add a region vertex (idempotent)."""
        self._adjacency.setdefault(coord, set())

    def add_edge(self, coord_a: RegionCoord, coord_b: RegionCoord) -> None:
        """Add an undirected edge between two region vertices."""
        self.add_node(coord_a)
        self.add_node(coord_b)
        self._adjacency[coord_a].add(coord_b)
        self._adjacency[coord_b].add(coord_a)
        self._edges.add(normalize_edge(coord_a, coord_b))

    def remove_edge(self, coord_a: RegionCoord, coord_b: RegionCoord) -> None:
        """Remove an edge (raises KeyError if absent)."""
        edge = normalize_edge(coord_a, coord_b)
        if edge not in self._edges:
            raise KeyError(f"edge {edge} not present in the graph of net {self.net_id}")
        self._edges.remove(edge)
        self._adjacency[coord_a].discard(coord_b)
        self._adjacency[coord_b].discard(coord_a)

    # -- queries ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of region vertices."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of edges currently present."""
        return len(self._edges)

    def edges(self) -> Set[GridEdge]:
        """Copy of the current edge set."""
        return set(self._edges)

    def has_edge(self, coord_a: RegionCoord, coord_b: RegionCoord) -> bool:
        """True when the edge is still present."""
        return normalize_edge(coord_a, coord_b) in self._edges

    def neighbors(self, coord: RegionCoord) -> Set[RegionCoord]:
        """Current neighbours of a vertex."""
        return set(self._adjacency.get(coord, set()))

    def degree(self, coord: RegionCoord) -> int:
        """Current degree of a vertex."""
        return len(self._adjacency.get(coord, set()))

    def is_pin_region(self, coord: RegionCoord) -> bool:
        """True when the region contains a pin of the net."""
        return coord in self.pin_regions

    # -- connectivity --------------------------------------------------------

    def pins_connected(self, skip_edge: Optional[GridEdge] = None) -> bool:
        """True when every pin region is mutually reachable.

        ``skip_edge`` lets the router test deletability ("would the pins stay
        connected if this edge were removed?") without mutating the graph.
        """
        if len(self.pin_regions) <= 1:
            return True
        start = self.pin_regions[0]
        targets = set(self.pin_regions)
        seen: Set[RegionCoord] = {start}
        queue = deque([start])
        found = {start}
        while queue and len(found) < len(targets):
            current = queue.popleft()
            for neighbour in self._adjacency.get(current, set()):
                if skip_edge is not None and normalize_edge(current, neighbour) == skip_edge:
                    continue
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                if neighbour in targets:
                    found.add(neighbour)
                queue.append(neighbour)
        return len(found) == len(targets)

    def is_deletable(self, coord_a: RegionCoord, coord_b: RegionCoord) -> bool:
        """True when removing the edge keeps all pin regions connected."""
        edge = normalize_edge(coord_a, coord_b)
        if edge not in self._edges:
            return False
        return self.pins_connected(skip_edge=edge)

    def is_forest(self) -> bool:
        """True when the graph is acyclic (the ID stopping condition)."""
        visited: Set[RegionCoord] = set()
        for root in self._adjacency:
            if root in visited:
                continue
            # Iterative DFS with parent tracking to detect cycles.
            stack: List[Tuple[RegionCoord, Optional[RegionCoord]]] = [(root, None)]
            visited.add(root)
            while stack:
                current, parent = stack.pop()
                for neighbour in self._adjacency[current]:
                    if neighbour == parent:
                        continue
                    if neighbour in visited:
                        return False
                    visited.add(neighbour)
                    stack.append((neighbour, current))
        return True

    def to_networkx(self) -> nx.Graph:
        """Export the current graph for analysis or visualisation."""
        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        graph.add_edges_from(self._edges)
        return graph


def build_connection_graph(
    net: Net,
    grid: RoutingGrid,
    bounding_box_margin: int = 0,
) -> ConnectionGraph:
    """Build the initial connection graph of a net.

    The graph covers every region inside the pin bounding box (optionally
    expanded by ``bounding_box_margin`` regions on each side) with edges
    between all adjacent region pairs.
    """
    pin_regions = net.pin_regions(grid)
    graph = ConnectionGraph(net_id=net.net_id, pin_regions=pin_regions)
    box = grid.bounding_box_regions(pin_regions, margin=bounding_box_margin)
    box_set = set(box)
    for coord in box:
        graph.add_node(coord)
    for coord in box:
        for neighbour in grid.neighbors(coord):
            if neighbour in box_set and coord < neighbour:
                graph.add_edge(coord, neighbour)
    return graph
