"""The iterative-deletion (ID) global router.

Every net starts with the complete grid graph of its pin bounding box.  The
router repeatedly removes the edge with the largest Formula 2 weight — over
*all* nets simultaneously, which is what makes the result independent of any
net ordering — provided its removal keeps the net's pin regions connected.
When no removable edge remains, each net's graph has collapsed to a Steiner
tree over its pin regions.

Implementation notes
--------------------
* Edge weights change as edges disappear (deleting an edge can remove a net's
  demand from a region, lowering the density every other net sees there).
  A lazy max-heap handles this: entries are re-validated when popped and
  re-pushed with their current weight when stale.
* The utilisation ``HU = Nns + Nss`` of each (region, direction) is tracked
  incrementally: ``Nns`` as the number of nets still touching the region and
  ``Nss`` through running sums of net sensitivity rates feeding Formula 3.
* An edge that is found non-removable (its removal would disconnect the
  net's pins) can never become removable again — deletions only remove
  alternative paths — so it is discarded permanently.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.grid.nets import Netlist
from repro.grid.regions import RegionCoord, RoutingGrid
from repro.grid.routes import GridEdge, RouteTree, RoutingSolution
from repro.grid.steiner import rsmt_length_estimate
from repro.router.connection_graph import ConnectionGraph, build_connection_graph
from repro.router.realize import prune_to_tree
from repro.router.weights import WeightConfig, edge_weight
from repro.sino.estimate import ShieldEstimator, default_shield_estimator

#: Key identifying one routing resource: a region coordinate plus a direction.
ResourceKey = Tuple[RegionCoord, str]


@dataclass
class _ResourceDemand:
    """Incrementally maintained utilisation of one (region, direction)."""

    capacity: int
    num_nets: int = 0
    sum_rates: float = 0.0
    sum_rates_sq: float = 0.0

    def add_net(self, rate: float) -> None:
        self.num_nets += 1
        self.sum_rates += rate
        self.sum_rates_sq += rate * rate

    def remove_net(self, rate: float) -> None:
        self.num_nets -= 1
        self.sum_rates -= rate
        self.sum_rates_sq -= rate * rate
        if self.num_nets < 0:
            raise RuntimeError("resource demand went negative; internal accounting error")

    def shield_estimate(self, estimator: Optional[ShieldEstimator]) -> float:
        """Formula 3 evaluated on the running sums (0 when reservation is off)."""
        if estimator is None or self.num_nets == 0:
            return 0.0
        n = float(self.num_nets)
        features = (
            self.sum_rates_sq,
            self.sum_rates_sq / n,
            self.sum_rates,
            self.sum_rates / n,
            n,
            1.0,
        )
        coefficients = estimator.coefficients.as_array()
        value = float(sum(f * c for f, c in zip(features, coefficients)))
        return max(value, 0.0)

    def utilization(self, estimator: Optional[ShieldEstimator]) -> float:
        """``HU = Nns + Nss``."""
        return self.num_nets + self.shield_estimate(estimator)

    def density(self, estimator: Optional[ShieldEstimator]) -> float:
        """``HD = HU / HC``."""
        if self.capacity <= 0:
            return 0.0
        return self.utilization(estimator) / self.capacity

    def relative_overflow(self, estimator: Optional[ShieldEstimator]) -> float:
        """``HOFR = max(0, HU - HC) / HC``."""
        if self.capacity <= 0:
            return 0.0
        return max(0.0, self.utilization(estimator) - self.capacity) / self.capacity


@dataclass
class RouterReport:
    """Statistics of one ID routing run."""

    num_nets: int = 0
    initial_edges: int = 0
    deleted_edges: int = 0
    kept_edges: int = 0
    heap_repushes: int = 0
    runtime_seconds: float = 0.0

    @property
    def final_edges(self) -> int:
        """Edges remaining across all nets when the router stopped."""
        return self.initial_edges - self.deleted_edges


class IterativeDeletionRouter:
    """Routes a netlist on a grid with the iterative-deletion algorithm."""

    def __init__(
        self,
        grid: RoutingGrid,
        netlist: Netlist,
        config: Optional[WeightConfig] = None,
        shield_estimator: Optional[ShieldEstimator] = None,
    ) -> None:
        self.grid = grid
        self.netlist = netlist
        self.config = config or WeightConfig()
        if self.config.reserve_shields:
            self.estimator: Optional[ShieldEstimator] = shield_estimator or default_shield_estimator()
        else:
            self.estimator = None

        self._graphs: Dict[int, ConnectionGraph] = {}
        self._demand: Dict[ResourceKey, _ResourceDemand] = {}
        self._touch_counts: Dict[Tuple[int, ResourceKey], int] = {}
        self._rsmt_length: Dict[int, float] = {}
        self._sensitivity_rate: Dict[int, float] = {}

    # -- demand bookkeeping ------------------------------------------------------

    def _resource(self, key: ResourceKey) -> _ResourceDemand:
        if key not in self._demand:
            coord, direction = key
            capacity = self.grid.region(coord).capacity(direction)
            self._demand[key] = _ResourceDemand(capacity=capacity)
        return self._demand[key]

    def _edge_resources(self, edge: GridEdge) -> Tuple[ResourceKey, ResourceKey]:
        coord_a, coord_b = edge
        direction = self.grid.edge_direction(coord_a, coord_b)
        return (coord_a, direction), (coord_b, direction)

    def _register_edge(self, net_id: int, edge: GridEdge) -> None:
        rate = self._sensitivity_rate[net_id]
        for key in self._edge_resources(edge):
            count_key = (net_id, key)
            previous = self._touch_counts.get(count_key, 0)
            self._touch_counts[count_key] = previous + 1
            if previous == 0:
                self._resource(key).add_net(rate)

    def _unregister_edge(self, net_id: int, edge: GridEdge) -> None:
        rate = self._sensitivity_rate[net_id]
        for key in self._edge_resources(edge):
            count_key = (net_id, key)
            remaining = self._touch_counts.get(count_key, 0) - 1
            if remaining < 0:
                raise RuntimeError("edge unregistered more times than registered")
            self._touch_counts[count_key] = remaining
            if remaining == 0:
                self._resource(key).remove_net(rate)

    # -- weights -------------------------------------------------------------------

    def _edge_weight(self, net_id: int, edge: GridEdge) -> float:
        coord_a, coord_b = edge
        length = self.grid.edge_length(coord_a, coord_b)
        normalized_length = length / self._rsmt_length[net_id]
        key_a, key_b = self._edge_resources(edge)
        resource_a = self._resource(key_a)
        resource_b = self._resource(key_b)
        density = (resource_a.density(self.estimator) + resource_b.density(self.estimator)) / 2.0
        overflow = (
            resource_a.relative_overflow(self.estimator)
            + resource_b.relative_overflow(self.estimator)
        ) / 2.0
        return edge_weight(self.config, normalized_length, density, overflow)

    # -- main entry point --------------------------------------------------------------

    def route(self) -> Tuple[RoutingSolution, RouterReport]:
        """Run iterative deletion and return the solution plus run statistics."""
        start = time.perf_counter()
        report = RouterReport(num_nets=self.netlist.num_nets)

        for net in self.netlist.nets():
            self._sensitivity_rate[net.net_id] = self.netlist.sensitivity_rate(net.net_id)
            graph = build_connection_graph(net, self.grid, self.config.bounding_box_margin)
            self._graphs[net.net_id] = graph
            estimate = rsmt_length_estimate(list(net.pins))
            minimum = min(self.grid.region_width, self.grid.region_height)
            self._rsmt_length[net.net_id] = max(estimate, minimum)
            for edge in graph.edges():
                self._register_edge(net.net_id, edge)
                report.initial_edges += 1

        counter = itertools.count()
        heap: List[Tuple[float, int, int, GridEdge]] = []
        for net_id, graph in self._graphs.items():
            for edge in graph.edges():
                weight = self._edge_weight(net_id, edge)
                heapq.heappush(heap, (-weight, next(counter), net_id, edge))

        while heap:
            negative_weight, _, net_id, edge = heapq.heappop(heap)
            graph = self._graphs[net_id]
            if not graph.has_edge(*edge):
                continue
            current_weight = self._edge_weight(net_id, edge)
            popped_weight = -negative_weight
            stale_margin = self.config.weight_tolerance * max(popped_weight, 1.0) + 1e-9
            if current_weight < popped_weight - stale_margin:
                # Weight dropped noticeably since the entry was pushed; re-queue.
                heapq.heappush(heap, (-current_weight, next(counter), net_id, edge))
                report.heap_repushes += 1
                continue
            if not graph.is_deletable(*edge):
                report.kept_edges += 1
                continue
            graph.remove_edge(*edge)
            self._unregister_edge(net_id, edge)
            report.deleted_edges += 1

        routes: Dict[int, RouteTree] = {}
        for net_id, graph in self._graphs.items():
            routes[net_id] = prune_to_tree(graph)

        report.runtime_seconds = time.perf_counter() - start
        solution = RoutingSolution(self.grid, self.netlist, routes)
        return solution, report


def route_netlist(
    grid: RoutingGrid,
    netlist: Netlist,
    config: Optional[WeightConfig] = None,
    shield_estimator: Optional[ShieldEstimator] = None,
) -> Tuple[RoutingSolution, RouterReport]:
    """Convenience wrapper: construct the router and route the netlist."""
    router = IterativeDeletionRouter(grid, netlist, config=config, shield_estimator=shield_estimator)
    return router.route()
