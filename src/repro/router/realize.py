"""Turning the final connection graphs into route trees.

When iterative deletion stops, each net's graph is a forest in which all pin
regions are connected; it may still carry dangling branches whose leaves are
not pin regions (edges that were never worth deleting explicitly).  Pruning
removes those branches and any stray components without pins, producing the
Steiner tree over the pin regions that the rest of the flow consumes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.grid.regions import RegionCoord
from repro.grid.routes import GridEdge, RouteTree, normalize_edge
from repro.router.connection_graph import ConnectionGraph


def prune_to_tree(graph: ConnectionGraph) -> RouteTree:
    """Prune a final connection graph down to its pin-spanning tree.

    Repeatedly removes degree-one vertices that are not pin regions, then
    drops every component that contains no pin region.  Raises ``ValueError``
    if the pins are not connected (the router guarantees they are).
    """
    if not graph.pins_connected():
        raise ValueError(
            f"net {graph.net_id}: pin regions are disconnected, cannot realise a route tree"
        )
    adjacency: Dict[RegionCoord, Set[RegionCoord]] = {}
    for edge in graph.edges():
        coord_a, coord_b = edge
        adjacency.setdefault(coord_a, set()).add(coord_b)
        adjacency.setdefault(coord_b, set()).add(coord_a)
    for pin in graph.pin_regions:
        adjacency.setdefault(pin, set())

    pins = set(graph.pin_regions)

    # Iteratively strip non-pin leaves.
    leaves: List[RegionCoord] = [
        coord for coord, neighbours in adjacency.items()
        if len(neighbours) <= 1 and coord not in pins
    ]
    while leaves:
        leaf = leaves.pop()
        neighbours = adjacency.pop(leaf, set())
        for neighbour in neighbours:
            adjacency[neighbour].discard(leaf)
            if len(adjacency[neighbour]) <= 1 and neighbour not in pins:
                leaves.append(neighbour)

    # Keep only the component(s) containing pins (after pruning there is one).
    reachable: Set[RegionCoord] = set()
    stack: List[RegionCoord] = [pin for pin in pins if pin in adjacency]
    reachable.update(stack)
    while stack:
        current = stack.pop()
        for neighbour in adjacency.get(current, set()):
            if neighbour not in reachable:
                reachable.add(neighbour)
                stack.append(neighbour)

    edges: Set[GridEdge] = set()
    for coord, neighbours in adjacency.items():
        if coord not in reachable:
            continue
        for neighbour in neighbours:
            if neighbour in reachable:
                edges.add(normalize_edge(coord, neighbour))

    return RouteTree(
        net_id=graph.net_id,
        pin_regions=graph.pin_regions,
        edges=frozenset(edges),
    )
