"""The iterative-deletion (ID) global router.

Phase I of GSINO (and both baselines) route with the iterative-deletion
algorithm of Cong & Preas (reference [10] of the paper): every net starts
with the full grid graph of its pin bounding box, and the router repeatedly
deletes the edge with the largest weight — Formula 2 — until every net's
graph has been reduced to a tree.  Because all nets are considered
simultaneously, the result does not depend on a net ordering.

Modules
-------
* :mod:`repro.router.connection_graph` — per-net connection graphs.
* :mod:`repro.router.weights` — the Formula 2 edge weight.
* :mod:`repro.router.iterative_deletion` — the ID router itself.
* :mod:`repro.router.realize` — pruning the final graphs into route trees.
"""

from repro.router.connection_graph import ConnectionGraph, build_connection_graph
from repro.router.weights import WeightConfig, edge_weight
from repro.router.iterative_deletion import IterativeDeletionRouter, RouterReport
from repro.router.realize import prune_to_tree

__all__ = [
    "ConnectionGraph",
    "build_connection_graph",
    "WeightConfig",
    "edge_weight",
    "IterativeDeletionRouter",
    "RouterReport",
    "prune_to_tree",
]
