"""The ID router's edge weight — Formula 2 of the paper.

For a horizontal edge ``e`` of a net the weight is

    w(e) = alpha * f(WL) + beta * HD(R) + gamma * HOFR(R)

with ``f(WL)`` the wire length the edge represents normalised by the net's
estimated RSMT length, ``HD`` the routing density ``HU / HC`` of the regions
the edge occupies, and ``HOFR`` their relative overflow.  The utilisation
``HU = Nns + Nss`` includes the shields predicted by Formula 3 when shield
reservation is enabled (GSINO Phase I) and only the net segments otherwise
(the ID+NO / iSINO baselines).  The paper sets ``alpha = 2``, ``beta = 1``,
``gamma = 50`` so that virtually no overflow survives in the final solution;
those are the defaults here as well.  Vertical edges use the same formula
with the vertical capacities.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WeightConfig:
    """Formula 2 coefficients and options.

    Attributes
    ----------
    alpha / beta / gamma:
        Weights of the wire-length, density and overflow terms (paper values
        2, 1 and 50).
    reserve_shields:
        When True the density and overflow terms include the Formula 3 shield
        estimate (``Nss``); when False they count net segments only, which is
        how the ID+NO and iSINO baselines are configured "in order to make
        fair comparisons".
    bounding_box_margin:
        How many regions beyond the pin bounding box each net may use.
    weight_tolerance:
        Relative staleness the router tolerates before re-queueing a heap
        entry whose weight has decreased.  0 reproduces exact max-weight
        deletion order; the small default trades a slightly approximate order
        for far fewer heap re-pushes on large designs.
    """

    alpha: float = 2.0
    beta: float = 1.0
    gamma: float = 50.0
    reserve_shields: bool = True
    bounding_box_margin: int = 0
    weight_tolerance: float = 0.2

    def __post_init__(self) -> None:
        if self.alpha < 0.0 or self.beta < 0.0 or self.gamma < 0.0:
            raise ValueError("Formula 2 coefficients must be non-negative")
        if self.bounding_box_margin < 0:
            raise ValueError("bounding_box_margin must be non-negative")
        if self.weight_tolerance < 0.0:
            raise ValueError("weight_tolerance must be non-negative")


def edge_weight(
    config: WeightConfig,
    normalized_length: float,
    density: float,
    relative_overflow: float,
) -> float:
    """Evaluate Formula 2 for one edge.

    Parameters
    ----------
    config:
        Coefficient set.
    normalized_length:
        ``f(WL)``: the edge's wire length divided by the net's estimated RSMT
        length.
    density:
        ``HD``: utilisation over capacity of the regions the edge occupies.
    relative_overflow:
        ``HOFR``: overflow over capacity of the regions the edge occupies.
    """
    if normalized_length < 0.0:
        raise ValueError(f"normalized_length must be non-negative, got {normalized_length}")
    if density < 0.0:
        raise ValueError(f"density must be non-negative, got {density}")
    if relative_overflow < 0.0:
        raise ValueError(f"relative_overflow must be non-negative, got {relative_overflow}")
    return config.alpha * normalized_length + config.beta * density + config.gamma * relative_overflow
