"""Statistical profiles of the ISPD'98 / IBM benchmark circuits.

The paper's tables expose, for each circuit, the number of signal nets (via
the violation percentages of Table 1), the chip dimensions of the DRAGON
placement (Table 3, ID+NO column) and the average routed net length (Table 2,
ID+NO column).  Those numbers parameterise the synthetic generator so the
reproduced experiments see workloads of the same shape.

The net counts below are derived from Table 1: e.g. ibm01 reports 1907
violating nets at a 14.60 % rate, giving ~13 062 signal nets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CircuitProfile:
    """Published statistics of one benchmark circuit.

    Attributes
    ----------
    name:
        Circuit name (``ibm01`` .. ``ibm06``).
    num_nets:
        Number of signal nets in the full-size design.
    chip_width / chip_height:
        DRAGON placement dimensions in micrometres (Table 3, ID+NO).
    average_net_length:
        Average routed net length of the conventional (ID+NO) solution in
        micrometres (Table 2).
    grid_cols / grid_rows:
        Routing-grid dimensions used for the full-size reproduction.
    """

    name: str
    num_nets: int
    chip_width: float
    chip_height: float
    average_net_length: float
    grid_cols: int = 32
    grid_rows: int = 32

    def __post_init__(self) -> None:
        if self.num_nets < 1:
            raise ValueError(f"profile {self.name}: num_nets must be positive")
        if self.chip_width <= 0 or self.chip_height <= 0:
            raise ValueError(f"profile {self.name}: chip dimensions must be positive")
        if self.average_net_length <= 0:
            raise ValueError(f"profile {self.name}: average net length must be positive")
        if self.grid_cols < 2 or self.grid_rows < 2:
            raise ValueError(f"profile {self.name}: grid must be at least 2x2")

    def scaled(self, scale: float) -> "CircuitProfile":
        """A reduced-size version of the profile.

        ``scale`` shrinks the net count linearly and the chip dimensions and
        grid by ``sqrt(scale)`` so the per-region statistics (nets per region,
        net length in region spans) stay close to the full-size design.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must lie in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        linear = scale ** 0.5
        return CircuitProfile(
            name=f"{self.name}-s{scale:g}",
            num_nets=max(int(round(self.num_nets * scale)), 8),
            chip_width=self.chip_width * linear,
            chip_height=self.chip_height * linear,
            average_net_length=self.average_net_length * linear,
            grid_cols=max(int(round(self.grid_cols * linear)), 4),
            grid_rows=max(int(round(self.grid_rows * linear)), 4),
        )


#: Full-size profiles of the six circuits used in the paper's experiments.
IBM_PROFILES: Dict[str, CircuitProfile] = {
    "ibm01": CircuitProfile("ibm01", 13062, 1533.0, 1824.0, 639.0),
    "ibm02": CircuitProfile("ibm02", 19290, 3004.0, 3995.0, 724.0),
    "ibm03": CircuitProfile("ibm03", 26101, 3178.0, 3852.0, 647.0),
    "ibm04": CircuitProfile("ibm04", 31322, 3861.0, 3910.0, 748.0),
    "ibm05": CircuitProfile("ibm05", 29646, 9837.0, 7286.0, 695.0),
    "ibm06": CircuitProfile("ibm06", 34399, 5002.0, 3795.0, 769.0),
}


def get_profile(name: str) -> CircuitProfile:
    """Look up a benchmark profile by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in IBM_PROFILES:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(IBM_PROFILES)}")
    return IBM_PROFILES[key]


def list_profiles() -> List[str]:
    """Names of all available benchmark profiles."""
    return sorted(IBM_PROFILES)
