"""Top-level synthetic benchmark generator.

``generate_circuit("ibm01", sensitivity_rate=0.3, scale=0.05)`` returns the
routing grid and netlist of a reduced-size circuit whose per-region
statistics match the full-size ibm01 profile; ``scale=1.0`` produces the
full-size instance (slow to route in pure Python, but supported).

Track capacities are derived from the generated netlist itself: the expected
number of nets crossing a region is estimated from the total horizontal /
vertical wire demand, and the capacity is that demand times a headroom
factor.  This keeps utilisation in the regime the paper operates in (congested
but routable) across scales and profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bench.placement import PlacementConfig, generate_nets
from repro.bench.profiles import CircuitProfile, get_profile
from repro.grid.nets import Net, Netlist
from repro.grid.regions import RoutingGrid
from repro.grid.sensitivity import RandomPairwiseSensitivity
from repro.tech.itrs import ITRS_100NM, Technology


@dataclass
class GeneratedCircuit:
    """A synthetic benchmark instance ready for routing.

    Attributes
    ----------
    profile:
        The (possibly scaled) statistical profile the instance was drawn from.
    grid:
        The routing grid with derived track capacities.
    netlist:
        The placed nets with their random sensitivity relation.
    sensitivity_rate:
        The nominal sensitivity rate used for the random relation.
    seed:
        Seed of the random generator that produced the instance.
    """

    profile: CircuitProfile
    grid: RoutingGrid
    netlist: Netlist
    sensitivity_rate: float
    seed: int

    @property
    def name(self) -> str:
        """Instance name (profile name plus the sensitivity rate)."""
        return f"{self.profile.name}-s{int(self.sensitivity_rate * 100)}"


def _demand_maps(nets: list, profile: CircuitProfile) -> tuple:
    """Expected per-region horizontal / vertical track demand of a net list.

    Each net's bounding box is rasterised onto the region grid: its expected
    horizontal track demand (bounding-box width in region spans) is spread
    uniformly over the rows its box covers, and likewise for the vertical
    demand over the columns.  The result approximates the congestion map a
    bounding-box router will produce.
    """
    cols, rows = profile.grid_cols, profile.grid_rows
    region_w = profile.chip_width / cols
    region_h = profile.chip_height / rows
    horizontal = np.zeros((cols, rows))
    vertical = np.zeros((cols, rows))
    for net in nets:
        xs = [pin.x for pin in net.pins]
        ys = [pin.y for pin in net.pins]
        col_lo = min(int(min(xs) / region_w), cols - 1)
        col_hi = min(int(max(xs) / region_w), cols - 1)
        row_lo = min(int(min(ys) / region_h), rows - 1)
        row_hi = min(int(max(ys) / region_h), rows - 1)
        cols_covered = col_hi - col_lo + 1
        rows_covered = row_hi - row_lo + 1
        # Horizontal wires: the net crosses ~cols_covered regions in x, and the
        # row it uses is one of the rows_covered candidate rows.
        horizontal[col_lo:col_hi + 1, row_lo:row_hi + 1] += 1.0 / rows_covered
        vertical[col_lo:col_hi + 1, row_lo:row_hi + 1] += 1.0 / cols_covered
    return horizontal, vertical


def _derive_capacity(
    nets: list,
    profile: CircuitProfile,
    headroom: float,
    demand_percentile: float = 90.0,
) -> tuple:
    """Derive uniform per-region track capacities from the expected demand map.

    The capacity is set to the ``demand_percentile``-th percentile of the
    per-region expected demand times ``headroom``.  With a modest headroom the
    busiest regions of the conventional routing run close to (but below)
    capacity — the regime the paper's benchmarks operate in, where inserting
    shields after routing forces rows and columns to expand.
    """
    horizontal, vertical = _demand_maps(nets, profile)
    horizontal_capacity = max(int(np.ceil(np.percentile(horizontal, demand_percentile) * headroom)), 4)
    vertical_capacity = max(int(np.ceil(np.percentile(vertical, demand_percentile) * headroom)), 4)
    return horizontal_capacity, vertical_capacity


def generate_circuit(
    name: str,
    sensitivity_rate: float = 0.3,
    scale: float = 1.0,
    seed: int = 1998,
    capacity_headroom: float = 0.8,
    capacity_percentile: float = 90.0,
    placement: PlacementConfig = PlacementConfig(),
    technology: Technology = ITRS_100NM,
    profile: Optional[CircuitProfile] = None,
) -> GeneratedCircuit:
    """Generate one synthetic benchmark instance.

    Parameters
    ----------
    name:
        Benchmark name (``ibm01`` .. ``ibm06``); ignored when ``profile`` is
        given explicitly.
    sensitivity_rate:
        Nominal random sensitivity rate (the paper uses 0.3 and 0.5).
    scale:
        Size scale in (0, 1]; 1.0 is the full published size.
    seed:
        Random seed (placement and sensitivity are both derived from it).
    capacity_headroom:
        Ratio of region track capacity to the ``capacity_percentile``-th
        percentile of the expected per-region demand.
    capacity_percentile:
        Which percentile of the expected demand map sets the capacity.
    placement:
        Net synthesis configuration.
    technology:
        Technology node; its track pitch enters the routing grid (area model).
    profile:
        Explicit profile overriding the named lookup (used for custom sizes).
    """
    if not 0.0 <= sensitivity_rate <= 1.0:
        raise ValueError(f"sensitivity_rate must lie in [0, 1], got {sensitivity_rate}")
    if capacity_headroom <= 0.0:
        raise ValueError(f"capacity_headroom must be positive, got {capacity_headroom}")
    base_profile = profile or get_profile(name)
    scaled_profile = base_profile.scaled(scale)
    rng = np.random.default_rng(seed)
    nets = generate_nets(scaled_profile, rng, config=placement)
    horizontal_capacity, vertical_capacity = _derive_capacity(
        nets, scaled_profile, capacity_headroom, demand_percentile=capacity_percentile
    )
    grid = RoutingGrid(
        num_cols=scaled_profile.grid_cols,
        num_rows=scaled_profile.grid_rows,
        chip_width=scaled_profile.chip_width,
        chip_height=scaled_profile.chip_height,
        horizontal_capacity=horizontal_capacity,
        vertical_capacity=vertical_capacity,
        track_pitch_um=technology.track_pitch * 1e6,
    )
    sensitivity = RandomPairwiseSensitivity(rate=sensitivity_rate, seed=seed)
    netlist = Netlist(nets, sensitivity=sensitivity, name=scaled_profile.name)
    return GeneratedCircuit(
        profile=scaled_profile,
        grid=grid,
        netlist=netlist,
        sensitivity_rate=sensitivity_rate,
        seed=seed,
    )
