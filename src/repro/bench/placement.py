"""Synthesis of placed nets matching a circuit profile.

The real benchmarks are placed with DRAGON; here each net is synthesised
directly in its placed form:

* the pin count follows a short-tailed distribution typical of standard-cell
  netlists (mostly 2- and 3-pin nets),
* the net's bounding box is drawn with exponentially distributed width and
  height whose means are calibrated so the *average* half-perimeter wire
  length matches the profile's published average net length (long-tail mix of
  many short nets and few long global nets),
* the bounding box centre is uniform over the chip, and the source / first
  sink sit at opposite corners of the box so the box is tight.

This keeps the statistics the experiments depend on — net count, net-length
distribution, per-region demand — close to the originals without the
original netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.bench.profiles import CircuitProfile
from repro.grid.nets import Net, Pin

#: Pin-count distribution: (number of pins, probability).
DEFAULT_PIN_DISTRIBUTION: Tuple[Tuple[int, float], ...] = (
    (2, 0.58),
    (3, 0.22),
    (4, 0.11),
    (5, 0.06),
    (6, 0.03),
)


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs of the net synthesiser.

    Attributes
    ----------
    pin_distribution:
        Discrete distribution of pins per net.
    hpwl_to_route_ratio:
        Expected ratio between a net's HPWL and its final routed length; the
        generator aims the *HPWL* mean at ``average_net_length`` divided by
        this ratio so routed lengths land near the published averages.
    minimum_span:
        Smallest bounding-box side (um), keeping nets from degenerating to a
        point.
    """

    pin_distribution: Tuple[Tuple[int, float], ...] = DEFAULT_PIN_DISTRIBUTION
    hpwl_to_route_ratio: float = 1.05
    minimum_span: float = 1.0

    def __post_init__(self) -> None:
        total = sum(probability for _, probability in self.pin_distribution)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"pin distribution probabilities must sum to 1, got {total}")
        if any(count < 2 for count, _ in self.pin_distribution):
            raise ValueError("every net needs at least 2 pins")
        if self.hpwl_to_route_ratio <= 0.0:
            raise ValueError("hpwl_to_route_ratio must be positive")
        if self.minimum_span <= 0.0:
            raise ValueError("minimum_span must be positive")


def _draw_pin_count(config: PlacementConfig, rng: np.random.Generator) -> int:
    counts = [count for count, _ in config.pin_distribution]
    probabilities = [probability for _, probability in config.pin_distribution]
    return int(rng.choice(counts, p=probabilities))


def generate_nets(
    profile: CircuitProfile,
    rng: np.random.Generator,
    config: PlacementConfig = PlacementConfig(),
) -> List[Net]:
    """Generate the placed nets of one synthetic circuit."""
    chip_w = profile.chip_width
    chip_h = profile.chip_height
    target_hpwl = profile.average_net_length / config.hpwl_to_route_ratio
    # Split the HPWL budget between x and y proportionally to the chip aspect.
    mean_w = target_hpwl * chip_w / (chip_w + chip_h)
    mean_h = target_hpwl * chip_h / (chip_w + chip_h)

    nets: List[Net] = []
    for net_id in range(profile.num_nets):
        width = min(max(rng.exponential(mean_w), config.minimum_span), chip_w)
        height = min(max(rng.exponential(mean_h), config.minimum_span), chip_h)
        center_x = rng.uniform(width / 2.0, chip_w - width / 2.0)
        center_y = rng.uniform(height / 2.0, chip_h - height / 2.0)
        x_low, x_high = center_x - width / 2.0, center_x + width / 2.0
        y_low, y_high = center_y - height / 2.0, center_y + height / 2.0

        num_pins = _draw_pin_count(config, rng)
        pins: List[Pin] = [Pin(x=x_low, y=y_low), Pin(x=x_high, y=y_high)]
        for _ in range(num_pins - 2):
            pins.append(Pin(x=rng.uniform(x_low, x_high), y=rng.uniform(y_low, y_high)))
        # Randomise which pin drives the net so sources are not biased to one corner.
        source_index = int(rng.integers(len(pins)))
        pins[0], pins[source_index] = pins[source_index], pins[0]
        nets.append(Net(net_id=net_id, pins=tuple(pins), name=f"{profile.name}_n{net_id}"))
    return nets


def average_hpwl(nets: Sequence[Net]) -> float:
    """Mean half-perimeter wire length of a net collection (um)."""
    if not nets:
        return 0.0
    return sum(net.hpwl() for net in nets) / len(nets)
