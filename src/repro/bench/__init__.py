"""Synthetic ISPD'98 / IBM-style benchmark circuits.

The paper evaluates on the ISPD'98 / IBM benchmark suite placed with DRAGON.
Neither the netlists nor the placement tool are redistributable here, so this
sub-package generates *synthetic* circuits whose statistics match what the
paper's tables expose about each design: number of signal nets, chip
dimensions, average net length, and the random sensitivity assignment at a
chosen rate.  DESIGN.md records this substitution and the scale-factor
methodology every published number was generated under.

Modules
-------
* :mod:`repro.bench.profiles` — the per-circuit statistics (ibm01–ibm06).
* :mod:`repro.bench.placement` — net/pin synthesis from a profile.
* :mod:`repro.bench.ibm` — the top-level generator returning grid + netlist.
"""

from repro.bench.profiles import CircuitProfile, IBM_PROFILES, get_profile, list_profiles
from repro.bench.placement import PlacementConfig, generate_nets
from repro.bench.ibm import GeneratedCircuit, generate_circuit

__all__ = [
    "CircuitProfile",
    "IBM_PROFILES",
    "get_profile",
    "list_profiles",
    "PlacementConfig",
    "generate_nets",
    "GeneratedCircuit",
    "generate_circuit",
]
