"""Per-unit-length interconnect parasitic extraction.

The LSK lookup table in the paper is characterised with SPICE simulations of
coupled global wires.  We replace SPICE with our own transient simulator
(:mod:`repro.circuit`), which needs per-unit-length R, C and L values for the
wires it simulates.  This module computes those values from wire geometry
using standard closed-form approximations:

* resistance from the cross-section and metal resistivity,
* ground capacitance from a parallel-plate term plus a fringe term
  (Sakurai–Tamaru style),
* coupling capacitance between adjacent parallel wires from a coupled-line
  approximation that decays with spacing,
* partial self and mutual inductance from the standard partial-inductance
  formulas for rectangular conductors (Grover / Ruehli), where mutual
  inductance decays only logarithmically with separation — the long-range
  behaviour that makes inductive crosstalk hard and motivates the paper.

The exact constants matter much less than the qualitative behaviour: coupling
capacitance falls off quickly with spacing while mutual inductance falls off
slowly, so shields (grounded return paths close to a victim) are the effective
countermeasure for inductive noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.itrs import (
    Technology,
    VACUUM_PERMEABILITY,
    VACUUM_PERMITTIVITY,
)


@dataclass(frozen=True)
class WireGeometry:
    """Cross-section geometry of a routed wire, in metres.

    Attributes
    ----------
    width:
        Wire width.
    spacing:
        Edge-to-edge spacing to the adjacent track.
    thickness:
        Metal thickness.
    height:
        Dielectric height between the wire bottom and the return plane.
    length:
        Wire length (used when converting per-unit-length values to lumped
        element values).
    """

    width: float
    spacing: float
    thickness: float
    height: float
    length: float

    def __post_init__(self) -> None:
        for name in ("width", "spacing", "thickness", "height", "length"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ValueError(f"wire geometry field {name!r} must be positive, got {value}")

    @classmethod
    def from_technology(cls, tech: Technology, length: float) -> "WireGeometry":
        """Build the geometry of a minimum-pitch global wire of ``length`` metres."""
        return cls(
            width=tech.wire_width,
            spacing=tech.wire_spacing,
            thickness=tech.wire_thickness,
            height=tech.dielectric_height,
            length=length,
        )


@dataclass(frozen=True)
class WireParasitics:
    """Per-unit-length parasitics of a wire and its coupling to a neighbour.

    All values are per metre: ohms/m, farads/m, henries/m.
    """

    resistance: float
    ground_capacitance: float
    coupling_capacitance: float
    self_inductance: float
    mutual_inductance: float

    def scaled_to_length(self, length: float) -> "LumpedParasitics":
        """Convert to total (lumped) values for a wire of ``length`` metres."""
        if length <= 0.0:
            raise ValueError(f"length must be positive, got {length}")
        return LumpedParasitics(
            resistance=self.resistance * length,
            ground_capacitance=self.ground_capacitance * length,
            coupling_capacitance=self.coupling_capacitance * length,
            self_inductance=self.self_inductance * length,
            mutual_inductance=self.mutual_inductance * length,
        )


@dataclass(frozen=True)
class LumpedParasitics:
    """Total parasitics of a finite-length wire (ohms, farads, henries)."""

    resistance: float
    ground_capacitance: float
    coupling_capacitance: float
    self_inductance: float
    mutual_inductance: float


def wire_resistance_per_meter(geometry: WireGeometry, resistivity: float) -> float:
    """Series resistance per metre from the wire cross-section."""
    area = geometry.width * geometry.thickness
    return resistivity / area


def ground_capacitance_per_meter(geometry: WireGeometry, dielectric_constant: float) -> float:
    """Capacitance to the return plane per metre.

    Parallel-plate term plus a fringe term that depends on the
    thickness-to-height ratio (a simplified Sakurai–Tamaru fit).
    """
    eps = dielectric_constant * VACUUM_PERMITTIVITY
    plate = eps * geometry.width / geometry.height
    fringe = eps * 0.77 * (
        1.06 * (geometry.width / geometry.height) ** 0.25
        + 1.06 * (geometry.thickness / geometry.height) ** 0.5
    )
    # The plate term already covers the width/height ratio once; keep the
    # fringe contribution bounded so narrow wires do not dominate.
    return plate + fringe * 0.5


def coupling_capacitance_per_meter(geometry: WireGeometry, dielectric_constant: float) -> float:
    """Sidewall coupling capacitance to the adjacent track per metre.

    Scales with the facing sidewall area (thickness / spacing) and decays as
    the spacing grows relative to the dielectric height.
    """
    eps = dielectric_constant * VACUUM_PERMITTIVITY
    sidewall = eps * geometry.thickness / geometry.spacing
    decay = 1.0 / (1.0 + (geometry.spacing / geometry.height) ** 1.34)
    return sidewall * decay


def self_inductance_per_meter(geometry: WireGeometry) -> float:
    """Partial self inductance per metre of a rectangular conductor.

    Uses the standard long-conductor partial-inductance expression
    ``L = (mu0 / 2pi) * (ln(2l / (w + t)) + 0.5)`` evaluated per unit length.
    The weak length dependence is evaluated at the wire's own length, which is
    how partial inductance is normally tabulated for global wires.
    """
    perimeter = geometry.width + geometry.thickness
    ratio = max(2.0 * geometry.length / perimeter, 1.0 + 1e-12)
    return VACUUM_PERMEABILITY / (2.0 * math.pi) * (math.log(ratio) + 0.5)


def mutual_inductance_per_meter(geometry: WireGeometry, centre_distance: float) -> float:
    """Partial mutual inductance per metre between two parallel wires.

    ``M = (mu0 / 2pi) * (ln(2l / d) - 1 + d / l)`` — the key property is the
    logarithmic (long-range) decay with centre-to-centre distance ``d``.
    """
    if centre_distance <= 0.0:
        raise ValueError(f"centre_distance must be positive, got {centre_distance}")
    length = geometry.length
    ratio = 2.0 * length / centre_distance
    if ratio <= 1.0:
        # Wires far apart relative to their length couple negligibly.
        return 0.0
    value = VACUUM_PERMEABILITY / (2.0 * math.pi) * (
        math.log(ratio) - 1.0 + centre_distance / length
    )
    return max(value, 0.0)


def extract_parasitics(
    tech: Technology,
    length: float,
    neighbour_tracks: int = 1,
) -> WireParasitics:
    """Extract per-unit-length parasitics for a global wire in ``tech``.

    Parameters
    ----------
    tech:
        Technology node supplying geometry, resistivity and dielectric
        constant.
    length:
        Wire length in metres (needed by the partial-inductance formulas).
    neighbour_tracks:
        Track distance to the neighbour the coupling values refer to; 1 means
        the immediately adjacent track.

    Returns
    -------
    WireParasitics
        Per-unit-length R, Cg, Cc, L, M.  ``coupling_capacitance`` and
        ``mutual_inductance`` describe coupling to a wire ``neighbour_tracks``
        tracks away.
    """
    if neighbour_tracks < 1:
        raise ValueError(f"neighbour_tracks must be >= 1, got {neighbour_tracks}")
    geometry = WireGeometry.from_technology(tech, length)
    centre_distance = neighbour_tracks * tech.track_pitch

    resistance = wire_resistance_per_meter(geometry, tech.resistivity)
    cg = ground_capacitance_per_meter(geometry, tech.dielectric_constant)
    # Coupling capacitance beyond the adjacent track is screened by the wires
    # in between; attenuate it geometrically with the track distance.
    cc_adjacent = coupling_capacitance_per_meter(geometry, tech.dielectric_constant)
    cc = cc_adjacent / (neighbour_tracks ** 2)
    ls = self_inductance_per_meter(geometry)
    m = mutual_inductance_per_meter(geometry, centre_distance)
    return WireParasitics(
        resistance=resistance,
        ground_capacitance=cg,
        coupling_capacitance=cc,
        self_inductance=ls,
        mutual_inductance=m,
    )


def inductive_coupling_ratio(tech: Technology, length: float, neighbour_tracks: int) -> float:
    """Ratio M/L between a wire and a neighbour ``neighbour_tracks`` away.

    This dimensionless ratio is what the formula-based Keff model of
    He–Lepak captures; it decays slowly with distance, unlike the coupling
    capacitance ratio.
    """
    parasitics = extract_parasitics(tech, length, neighbour_tracks)
    if parasitics.self_inductance <= 0.0:
        return 0.0
    return parasitics.mutual_inductance / parasitics.self_inductance
