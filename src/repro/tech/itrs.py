"""ITRS technology node descriptions.

The paper evaluates at the ITRS 0.10 um technology node (reference [9] of the
paper, the 1999 International Technology Roadmap for Semiconductors): supply
voltage Vdd = 1.05 V and a 3 GHz clock.  The crosstalk bound used in the
experiments is 0.15 V, i.e. roughly 15 % of Vdd.

The values collected here are the small set of node-level quantities the rest
of the library needs: supply voltage, clock frequency, global-wire geometry
(width / spacing / thickness / inter-layer dielectric height), metal
resistivity, dielectric constant, and the uniform driver / receiver values
assumed for global interconnects.  They are representative published roadmap
values for each node; the reproduction only depends on them being physically
sensible and self-consistent, not on matching the authors' exact extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# Physical constants (SI units).
VACUUM_PERMITTIVITY = 8.854e-12  # F/m
VACUUM_PERMEABILITY = 4.0e-7 * 3.141592653589793  # H/m
COPPER_RESISTIVITY = 1.72e-8  # ohm*m (bulk copper at room temperature)


@dataclass(frozen=True)
class Technology:
    """A technology node as seen by the global router and the noise models.

    All geometric quantities are in metres, electrical quantities in SI units.
    The defaults of the factory constants below correspond to global-layer
    (top metal) wires, which is what over-the-cell global routing uses.

    Attributes
    ----------
    name:
        Human readable node name, e.g. ``"itrs-0.10um"``.
    feature_size:
        Nominal drawn feature size in metres.
    vdd:
        Supply voltage in volts.
    clock_ghz:
        Target clock frequency in GHz (the paper uses 3 GHz).
    wire_width / wire_spacing / wire_thickness:
        Global wire cross-section geometry.
    dielectric_height:
        Distance from the wire bottom to the ground plane underneath.
    dielectric_constant:
        Relative permittivity of the inter-layer dielectric.
    resistivity:
        Metal resistivity (ohm*m).
    driver_resistance:
        Uniform driver output resistance (ohms) for global nets.
    load_capacitance:
        Uniform receiver load capacitance (farads) for global nets.
    track_pitch:
        Centre-to-centre distance between adjacent routing tracks
        (``wire_width + wire_spacing``); exposed separately because the area
        model widens regions by whole track pitches.
    """

    name: str
    feature_size: float
    vdd: float
    clock_ghz: float
    wire_width: float
    wire_spacing: float
    wire_thickness: float
    dielectric_height: float
    dielectric_constant: float
    resistivity: float = COPPER_RESISTIVITY
    driver_resistance: float = 30.0
    load_capacitance: float = 50e-15
    track_pitch: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "track_pitch", self.wire_width + self.wire_spacing)

    @property
    def clock_period(self) -> float:
        """Clock period in seconds."""
        return 1.0 / (self.clock_ghz * 1e9)

    @property
    def rise_time(self) -> float:
        """Signal rise time in seconds.

        Global signal rise time is commonly taken as ~10 % of the clock
        period; the LSK table is characterised with this edge rate.
        """
        return 0.1 * self.clock_period

    @property
    def crosstalk_noise_floor(self) -> float:
        """Lowest noise voltage tabulated in the LSK table (paper: 0.10 V)."""
        return round(0.10 / 1.05 * self.vdd, 6)

    @property
    def crosstalk_noise_ceiling(self) -> float:
        """Highest noise voltage tabulated in the LSK table (paper: 0.20 V)."""
        return round(0.20 / 1.05 * self.vdd, 6)

    def default_crosstalk_bound(self) -> float:
        """The per-sink crosstalk bound used in the paper's experiments.

        The paper sets it to 0.15 V, "around 15% of the supply voltage".
        """
        return round(0.15 / 1.05 * self.vdd, 6)

    def scaled(self, **changes: object) -> "Technology":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: The node the paper evaluates at (ITRS 1999 roadmap, 0.10 um generation).
ITRS_100NM = Technology(
    name="itrs-0.10um",
    feature_size=0.10e-6,
    vdd=1.05,
    clock_ghz=3.0,
    wire_width=0.5e-6,
    wire_spacing=0.5e-6,
    wire_thickness=1.0e-6,
    dielectric_height=0.8e-6,
    dielectric_constant=2.8,
)

#: The preceding node, useful for the "different fabrication technologies"
#: observation in Section 2.2 of the paper.
ITRS_130NM = Technology(
    name="itrs-0.13um",
    feature_size=0.13e-6,
    vdd=1.2,
    clock_ghz=1.7,
    wire_width=0.6e-6,
    wire_spacing=0.6e-6,
    wire_thickness=1.2e-6,
    dielectric_height=0.9e-6,
    dielectric_constant=3.2,
)

#: A more aggressive node used only in sensitivity studies.
ITRS_70NM = Technology(
    name="itrs-0.07um",
    feature_size=0.07e-6,
    vdd=0.9,
    clock_ghz=5.0,
    wire_width=0.35e-6,
    wire_spacing=0.35e-6,
    wire_thickness=0.8e-6,
    dielectric_height=0.7e-6,
    dielectric_constant=2.4,
)

_NODES = {tech.name: tech for tech in (ITRS_100NM, ITRS_130NM, ITRS_70NM)}
_ALIASES = {
    "0.10um": ITRS_100NM.name,
    "100nm": ITRS_100NM.name,
    "0.13um": ITRS_130NM.name,
    "130nm": ITRS_130NM.name,
    "0.07um": ITRS_70NM.name,
    "70nm": ITRS_70NM.name,
}


def get_technology(name: str) -> Technology:
    """Look up a technology node by name or alias.

    Parameters
    ----------
    name:
        Either the full node name (``"itrs-0.10um"``) or a short alias such as
        ``"100nm"`` or ``"0.10um"``.

    Raises
    ------
    KeyError
        If the name is not a known node.
    """
    key = name.strip().lower()
    if key in _NODES:
        return _NODES[key]
    if key in _ALIASES:
        return _NODES[_ALIASES[key]]
    known = sorted(set(_NODES) | set(_ALIASES))
    raise KeyError(f"unknown technology {name!r}; known nodes/aliases: {known}")
