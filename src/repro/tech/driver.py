"""Uniform driver and receiver models for global interconnects.

The paper assumes "all global interconnects have the same driver resistance
and loading capacitance" and notes that the LSK lookup table must be
re-computed for different driver/receiver combinations.  This module captures
that assumption explicitly so the table builder and the circuit simulator can
be parameterised by a single object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.itrs import Technology


@dataclass(frozen=True)
class DriverModel:
    """Linearised driver: a ramp voltage source behind an output resistance.

    Attributes
    ----------
    resistance:
        Output (on) resistance in ohms.
    rise_time:
        10–90 % rise time of the driven edge, in seconds.
    vdd:
        Swing of the driven edge in volts.
    """

    resistance: float
    rise_time: float
    vdd: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError(f"driver resistance must be positive, got {self.resistance}")
        if self.rise_time <= 0.0:
            raise ValueError(f"driver rise time must be positive, got {self.rise_time}")
        if self.vdd <= 0.0:
            raise ValueError(f"driver vdd must be positive, got {self.vdd}")


@dataclass(frozen=True)
class ReceiverModel:
    """Receiver modelled as a lumped load capacitance (farads)."""

    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError(f"receiver capacitance must be positive, got {self.capacitance}")


@dataclass(frozen=True)
class UniformInterfaceModel:
    """The driver/receiver pair shared by every global net.

    The LSK table lookup is only valid for one such pair; constructing a new
    :class:`UniformInterfaceModel` (e.g. with a stronger driver) requires the
    table to be rebuilt, mirroring the caveat in Section 2.2 of the paper.
    """

    driver: DriverModel
    receiver: ReceiverModel

    @classmethod
    def from_technology(cls, tech: Technology) -> "UniformInterfaceModel":
        """Build the default interface model of a technology node."""
        driver = DriverModel(
            resistance=tech.driver_resistance,
            rise_time=tech.rise_time,
            vdd=tech.vdd,
        )
        receiver = ReceiverModel(capacitance=tech.load_capacitance)
        return cls(driver=driver, receiver=receiver)

    def cache_key(self) -> tuple:
        """Hashable identity of the driver/receiver combination.

        Used by :mod:`repro.noise.table_builder` to decide whether a cached
        LSK table can be reused.
        """
        return (
            round(self.driver.resistance, 9),
            round(self.driver.rise_time, 15),
            round(self.driver.vdd, 9),
            round(self.receiver.capacitance, 18),
        )
