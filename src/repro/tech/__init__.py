"""Technology parameters and interconnect parasitic extraction.

This sub-package provides the physical substrate used throughout the
reproduction of Ma & He, DAC 2002:

* :mod:`repro.tech.itrs` — the ITRS 0.10 um technology node parameters the
  paper evaluates at (Vdd = 1.05 V, 3 GHz clock), plus a few neighbouring
  nodes for sensitivity studies.
* :mod:`repro.tech.parasitics` — closed-form per-unit-length resistance,
  ground/coupling capacitance, and self/mutual inductance extraction from
  wire geometry.
* :mod:`repro.tech.driver` — uniform driver / receiver models assumed by the
  paper ("all global interconnects have the same driver resistance and
  loading capacitance").
"""

from repro.tech.itrs import Technology, ITRS_100NM, ITRS_130NM, ITRS_70NM, get_technology
from repro.tech.parasitics import WireGeometry, WireParasitics, extract_parasitics
from repro.tech.driver import DriverModel, ReceiverModel, UniformInterfaceModel

__all__ = [
    "Technology",
    "ITRS_100NM",
    "ITRS_130NM",
    "ITRS_70NM",
    "get_technology",
    "WireGeometry",
    "WireParasitics",
    "extract_parasitics",
    "DriverModel",
    "ReceiverModel",
    "UniformInterfaceModel",
]
