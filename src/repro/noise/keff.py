"""The formula-based Keff inductive-coupling model.

The paper relies on the Keff model of He–Lepak (its reference [4]) to
characterise inductive coupling between signal wires placed on the parallel
tracks of a routing region:  ``K_ij`` is the coupling coefficient induced on
net ``i`` by a sensitive aggressor ``j`` and ``K_i = sum_j K_ij`` is the total
coupling of net ``i``.

The exact closed form is given only in the referenced work; what the GSINO
algorithm needs from it — and what this implementation preserves — are the
following properties:

* ``K_ij`` decreases with the track distance between ``i`` and ``j``
  (mutual inductance decays slowly, roughly inverse-distance);
* every shield placed strictly between ``i`` and ``j`` cuts the coupling by a
  large constant factor (a grounded return path close to the victim collapses
  the coupling loop);
* a shield immediately adjacent to the victim reduces all of its couplings;
* ``K_i`` is additive over sensitive aggressors.

The model is deliberately cheap: evaluating a full panel is O(n^2) integer
arithmetic, which is what makes full-chip crosstalk budgeting feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class PanelOccupant:
    """One occupied track in a routing panel.

    Attributes
    ----------
    track:
        Zero-based track index within the panel (track order = physical
        adjacency order).
    net_id:
        Identifier of the signal net occupying the track, or ``None`` for a
        shield wire.
    """

    track: int
    net_id: Optional[int]

    def __post_init__(self) -> None:
        if self.track < 0:
            raise ValueError(f"track index must be non-negative, got {self.track}")

    @property
    def is_shield(self) -> bool:
        """True when the track holds a shield wire."""
        return self.net_id is None


@dataclass(frozen=True)
class KeffModel:
    """Parameters of the formula-based Keff model.

    Attributes
    ----------
    shield_attenuation:
        Factor by which one shield strictly between aggressor and victim
        divides the coupling.  Physically this is large (the shield provides a
        nearby return path); the default of 4 matches the strong shielding
        benefit reported by the referenced SINO work.
    adjacent_shield_bonus:
        Additional division applied when the victim has a shield on an
        immediately adjacent track (its own return loop shrinks).
    distance_exponent:
        Exponent of the track-distance decay; 1.0 gives the slow, long-range
        decay characteristic of inductive coupling.
    """

    shield_attenuation: float = 4.0
    adjacent_shield_bonus: float = 1.5
    distance_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.shield_attenuation <= 1.0:
            raise ValueError(
                f"shield_attenuation must be > 1, got {self.shield_attenuation}"
            )
        if self.adjacent_shield_bonus < 1.0:
            raise ValueError(
                f"adjacent_shield_bonus must be >= 1, got {self.adjacent_shield_bonus}"
            )
        if self.distance_exponent <= 0.0:
            raise ValueError(
                f"distance_exponent must be positive, got {self.distance_exponent}"
            )


#: Model used everywhere unless a caller supplies its own.
DEFAULT_KEFF_MODEL = KeffModel()


def coupling_coefficient(
    distance: int,
    shields_between: int,
    victim_has_adjacent_shield: bool = False,
    model: KeffModel = DEFAULT_KEFF_MODEL,
) -> float:
    """Coupling coefficient ``K_ij`` between two signal wires.

    Parameters
    ----------
    distance:
        Track distance between the two wires (>= 1).
    shields_between:
        Number of shields on tracks strictly between them.
    victim_has_adjacent_shield:
        Whether the victim has a shield on a directly neighbouring track.
    model:
        Model parameters.
    """
    if distance < 1:
        raise ValueError(f"track distance must be >= 1, got {distance}")
    if shields_between < 0:
        raise ValueError(f"shields_between must be >= 0, got {shields_between}")
    value = 1.0 / float(distance) ** model.distance_exponent
    value /= model.shield_attenuation ** shields_between
    if victim_has_adjacent_shield:
        value /= model.adjacent_shield_bonus
    return value


def _occupants_by_track(occupants: Sequence[PanelOccupant]) -> List[PanelOccupant]:
    ordered = sorted(occupants, key=lambda occupant: occupant.track)
    seen: Set[int] = set()
    for occupant in ordered:
        if occupant.track in seen:
            raise ValueError(f"two occupants share track {occupant.track}")
        seen.add(occupant.track)
    return ordered


def _shield_tracks(occupants: Sequence[PanelOccupant]) -> List[int]:
    return sorted(occupant.track for occupant in occupants if occupant.is_shield)


def _shields_between(shield_tracks: Sequence[int], low: int, high: int) -> int:
    """Number of shield tracks strictly inside the open interval (low, high)."""
    return sum(1 for track in shield_tracks if low < track < high)


def _has_adjacent_shield(shield_tracks: Sequence[int], track: int) -> bool:
    return (track - 1) in shield_tracks or (track + 1) in shield_tracks


def total_coupling(
    victim: PanelOccupant,
    occupants: Sequence[PanelOccupant],
    aggressor_net_ids: Iterable[int],
    model: KeffModel = DEFAULT_KEFF_MODEL,
) -> float:
    """Total coupling ``K_i`` induced on ``victim`` by its sensitive aggressors.

    Parameters
    ----------
    victim:
        The occupant whose coupling is evaluated (must be a signal wire).
    occupants:
        Every occupant of the panel (the victim itself may be included).
    aggressor_net_ids:
        Net identifiers the victim is sensitive to; nets not present in the
        panel are ignored.
    model:
        Model parameters.
    """
    if victim.is_shield:
        raise ValueError("shields do not accumulate coupling; victim must be a signal wire")
    ordered = _occupants_by_track(occupants)
    shield_tracks = _shield_tracks(ordered)
    aggressors = set(aggressor_net_ids)
    adjacent_shield = _has_adjacent_shield(shield_tracks, victim.track)

    total = 0.0
    for occupant in ordered:
        if occupant.is_shield or occupant.net_id == victim.net_id:
            continue
        if occupant.net_id not in aggressors:
            continue
        low, high = sorted((victim.track, occupant.track))
        distance = high - low
        if distance == 0:
            continue
        shields = _shields_between(shield_tracks, low, high)
        total += coupling_coefficient(
            distance=distance,
            shields_between=shields,
            victim_has_adjacent_shield=adjacent_shield,
            model=model,
        )
    return total


def panel_couplings(
    occupants: Sequence[PanelOccupant],
    sensitivity: Mapping[int, Set[int]],
    model: KeffModel = DEFAULT_KEFF_MODEL,
) -> Dict[int, float]:
    """Total coupling ``K_i`` for every signal net in a panel.

    Parameters
    ----------
    occupants:
        Every occupant of the panel.
    sensitivity:
        Mapping from a net id to the set of net ids it is sensitive to
        (its aggressors).  Nets missing from the mapping are treated as not
        sensitive to anything.
    model:
        Model parameters.

    Returns
    -------
    dict
        ``{net_id: K_i}`` for every signal occupant.  If a net occupies
        several tracks of the same panel (rare, but possible for multi-track
        segments) the worst (largest) coupling is reported.
    """
    ordered = _occupants_by_track(occupants)
    couplings: Dict[int, float] = {}
    for occupant in ordered:
        if occupant.is_shield:
            continue
        aggressors = sensitivity.get(occupant.net_id, set())
        value = total_coupling(occupant, ordered, aggressors, model=model)
        existing = couplings.get(occupant.net_id)
        if existing is None or value > existing:
            couplings[occupant.net_id] = value
    return couplings


def panel_couplings_fast(
    occupants: Sequence[PanelOccupant],
    sensitivity: Mapping[int, Set[int]],
    model: KeffModel = DEFAULT_KEFF_MODEL,
) -> Dict[int, float]:
    """Vectorised equivalent of :func:`panel_couplings`.

    Produces exactly the same values (used by the SINO solvers, whose inner
    loops evaluate panels of tens of segments thousands of times).  The
    scalar implementation remains the reference; the two are cross-checked in
    the test suite.
    """
    ordered = _occupants_by_track(occupants)
    if not ordered:
        return {}
    tracks = np.array([occupant.track for occupant in ordered], dtype=float)
    is_shield = np.array([occupant.is_shield for occupant in ordered], dtype=bool)
    net_ids = [occupant.net_id for occupant in ordered]

    signal_indices = np.nonzero(~is_shield)[0]
    if signal_indices.size == 0:
        return {}
    shield_tracks = tracks[is_shield]
    shield_tracks.sort()

    # Pairwise track distances between signal wires.
    signal_tracks = tracks[signal_indices]
    distance = np.abs(signal_tracks[:, None] - signal_tracks[None, :])

    # Shields strictly between every pair: prefix counts over shield tracks.
    if shield_tracks.size:
        high_tracks = np.maximum(signal_tracks[:, None], signal_tracks[None, :])
        low_tracks = np.minimum(signal_tracks[:, None], signal_tracks[None, :])
        # Count shields with low_track < shield < high_track.
        shields_between = (
            np.searchsorted(shield_tracks, high_tracks.ravel(), side="left").reshape(distance.shape)
            - np.searchsorted(shield_tracks, low_tracks.ravel(), side="right").reshape(distance.shape)
        )
        shields_between = np.maximum(shields_between, 0)
        adjacent_shield = np.array([
            np.any(np.isclose(shield_tracks, track - 1)) or np.any(np.isclose(shield_tracks, track + 1))
            for track in signal_tracks
        ])
    else:
        shields_between = np.zeros_like(distance, dtype=int)
        adjacent_shield = np.zeros(signal_tracks.size, dtype=bool)

    # Sensitivity mask between signal pairs.
    sensitive = np.zeros(distance.shape, dtype=bool)
    for row, index in enumerate(signal_indices):
        victim_id = net_ids[index]
        aggressors = sensitivity.get(victim_id, set())
        if not aggressors:
            continue
        for col, other_index in enumerate(signal_indices):
            other_id = net_ids[other_index]
            if other_id != victim_id and other_id in aggressors:
                sensitive[row, col] = True

    with np.errstate(divide="ignore", invalid="ignore"):
        coupling = np.where(
            (distance > 0) & sensitive,
            1.0
            / np.power(np.maximum(distance, 1.0), model.distance_exponent)
            / np.power(model.shield_attenuation, shields_between),
            0.0,
        )
    coupling[adjacent_shield, :] /= model.adjacent_shield_bonus
    totals = coupling.sum(axis=1)

    couplings: Dict[int, float] = {}
    for row, index in enumerate(signal_indices):
        net_id = net_ids[index]
        value = float(totals[row])
        existing = couplings.get(net_id)
        if existing is None or value > existing:
            couplings[net_id] = value
    return couplings


def capacitive_violations(
    occupants: Sequence[PanelOccupant],
    sensitivity: Mapping[int, Set[int]],
) -> List[Tuple[int, int]]:
    """Pairs of sensitive nets that sit on adjacent tracks.

    The SINO constraint for capacitive crosstalk is that no two mutually
    sensitive nets are adjacent; this helper reports every violating pair
    (each pair reported once, lower net id first).
    """
    ordered = _occupants_by_track(occupants)
    violations: List[Tuple[int, int]] = []
    for first, second in zip(ordered, ordered[1:]):
        if first.is_shield or second.is_shield:
            continue
        if second.track - first.track != 1:
            continue
        net_a, net_b = first.net_id, second.net_id
        if net_a == net_b:
            continue
        sensitive = net_b in sensitivity.get(net_a, set()) or net_a in sensitivity.get(net_b, set())
        if sensitive:
            violations.append((min(net_a, net_b), max(net_a, net_b)))
    return violations
