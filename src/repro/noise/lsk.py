"""The length-scaled Keff (LSK) model — Equation 1 of the paper.

For a net ``N_i`` routed through regions ``R_j`` the LSK value is

    LSK_i = sum_j  l_j * K_i^j

where ``l_j`` is the length of the net inside region ``R_j`` and ``K_i^j`` its
total Keff coupling inside that region.  The RLC crosstalk voltage is then
obtained by looking the LSK value up in a pre-characterised table
(100 entries, noise voltages spanning roughly 10 %–20 % of Vdd in the paper).

This module provides the table datatype (forward and inverse interpolation)
and the LSK computation; building the table from circuit simulations lives in
:mod:`repro.noise.table_builder`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.noise.keff import DEFAULT_KEFF_MODEL, KeffModel, PanelOccupant, panel_couplings


@dataclass(frozen=True)
class RegionContribution:
    """One term of the LSK sum: a net's presence in one routing region.

    Attributes
    ----------
    region_id:
        Identifier of the routing region (opaque to the model).
    length:
        Length of the net's segment inside the region, in metres.
    coupling:
        Total Keff coupling ``K_i^j`` of the net inside the region.
    """

    region_id: object
    length: float
    coupling: float

    def __post_init__(self) -> None:
        if self.length < 0.0:
            raise ValueError(f"segment length must be non-negative, got {self.length}")
        if self.coupling < 0.0:
            raise ValueError(f"coupling must be non-negative, got {self.coupling}")

    @property
    def lsk_term(self) -> float:
        """Contribution of this region to the net's LSK value."""
        return self.length * self.coupling


def compute_lsk(contributions: Iterable[RegionContribution]) -> float:
    """Evaluate Equation 1: sum of length-scaled couplings over regions."""
    return sum(contribution.lsk_term for contribution in contributions)


class LskTable:
    """The LSK -> crosstalk-voltage lookup table.

    The table is a monotone non-decreasing mapping sampled at ``num_entries``
    LSK points (the paper uses 100 entries covering noise voltages from 0.10 V
    to 0.20 V).  Lookups interpolate linearly between entries; values below
    the first entry extrapolate linearly towards the origin (zero coupling
    gives zero noise) and values above the last entry extrapolate with the
    slope of the final segment.
    """

    def __init__(self, lsk_values: Sequence[float], noise_values: Sequence[float]) -> None:
        lsk = np.asarray(list(lsk_values), dtype=float)
        noise = np.asarray(list(noise_values), dtype=float)
        if lsk.ndim != 1 or noise.ndim != 1 or lsk.size != noise.size:
            raise ValueError("lsk_values and noise_values must be 1-D sequences of equal length")
        if lsk.size < 2:
            raise ValueError("an LSK table needs at least two entries")
        if np.any(lsk < 0.0) or np.any(noise < 0.0):
            raise ValueError("LSK and noise values must be non-negative")
        order = np.argsort(lsk)
        lsk = lsk[order]
        noise = noise[order]
        if np.any(np.diff(lsk) <= 0.0):
            raise ValueError("LSK sample points must be strictly increasing")
        if np.any(np.diff(noise) < -1e-12):
            raise ValueError("noise values must be non-decreasing in LSK")
        self._lsk = lsk
        self._noise = np.maximum.accumulate(noise)

    # -- basic queries -----------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Number of table entries."""
        return int(self._lsk.size)

    @property
    def lsk_values(self) -> np.ndarray:
        """Copy of the LSK sample points."""
        return self._lsk.copy()

    @property
    def noise_values(self) -> np.ndarray:
        """Copy of the noise voltages at the sample points."""
        return self._noise.copy()

    @property
    def noise_range(self) -> Tuple[float, float]:
        """(lowest, highest) tabulated noise voltage."""
        return float(self._noise[0]), float(self._noise[-1])

    # -- forward lookup ------------------------------------------------------

    def noise_for(self, lsk_value: float) -> float:
        """Crosstalk voltage predicted for an LSK value.

        Linear interpolation inside the table, linear extrapolation through
        the origin below it, and linear extrapolation of the last segment
        above it (clamped to be non-negative).
        """
        if lsk_value < 0.0:
            raise ValueError(f"LSK values are non-negative, got {lsk_value}")
        if lsk_value <= self._lsk[0]:
            if self._lsk[0] == 0.0:
                return float(self._noise[0])
            return float(self._noise[0] * lsk_value / self._lsk[0])
        if lsk_value >= self._lsk[-1]:
            slope = (self._noise[-1] - self._noise[-2]) / (self._lsk[-1] - self._lsk[-2])
            return float(self._noise[-1] + slope * (lsk_value - self._lsk[-1]))
        return float(np.interp(lsk_value, self._lsk, self._noise))

    # -- inverse lookup ------------------------------------------------------

    def lsk_for_noise(self, noise_voltage: float) -> float:
        """Largest LSK value whose predicted noise stays at or below a bound.

        This is the inverse lookup Phase I of GSINO uses to turn the per-sink
        crosstalk voltage bound (e.g. 0.15 V) into an LSK budget.
        """
        if noise_voltage <= 0.0:
            raise ValueError(f"noise bound must be positive, got {noise_voltage}")
        if noise_voltage <= self._noise[0]:
            if self._noise[0] == 0.0:
                return float(self._lsk[0])
            return float(self._lsk[0] * noise_voltage / self._noise[0])
        if noise_voltage >= self._noise[-1]:
            slope = (self._noise[-1] - self._noise[-2]) / (self._lsk[-1] - self._lsk[-2])
            if slope <= 0.0:
                return float(self._lsk[-1])
            return float(self._lsk[-1] + (noise_voltage - self._noise[-1]) / slope)
        # np.interp on the swapped axes needs strictly increasing noise; make
        # it so by nudging flat segments (the table is non-decreasing).
        noise = self._noise.copy()
        for index in range(1, noise.size):
            if noise[index] <= noise[index - 1]:
                noise[index] = noise[index - 1] + 1e-15
        return float(np.interp(noise_voltage, noise, self._lsk))

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, List[float]]:
        """Plain-dict form (JSON serialisable)."""
        return {
            "lsk_values": [float(v) for v in self._lsk],
            "noise_values": [float(v) for v in self._noise],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[float]]) -> "LskTable":
        """Rebuild a table from :meth:`to_dict` output."""
        return cls(lsk_values=data["lsk_values"], noise_values=data["noise_values"])

    def save(self, path: Path) -> None:
        """Write the table to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Path) -> "LskTable":
        """Read a table previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        low, high = self.noise_range
        return f"LskTable(entries={self.num_entries}, noise={low:.3f}V..{high:.3f}V)"


@dataclass(frozen=True)
class LskModel:
    """The complete LSK noise model: a Keff model plus a lookup table.

    This is the object the router and the refinement phases consult: it turns
    panel occupancies and per-region segment lengths into a noise voltage per
    net, and turns a voltage bound into LSK / Keff budgets.
    """

    table: LskTable
    keff_model: KeffModel = DEFAULT_KEFF_MODEL

    def lsk_of(self, contributions: Iterable[RegionContribution]) -> float:
        """LSK value of a net given its per-region contributions."""
        return compute_lsk(contributions)

    def noise_of(self, contributions: Iterable[RegionContribution]) -> float:
        """Noise voltage of a net given its per-region contributions."""
        return self.table.noise_for(self.lsk_of(contributions))

    def lsk_budget(self, noise_bound: float) -> float:
        """LSK budget corresponding to a per-sink noise bound."""
        return self.table.lsk_for_noise(noise_bound)

    def coupling_budget(self, noise_bound: float, path_length: float) -> float:
        """Per-segment Keff bound (``Kth``) for a source-sink path.

        Implements the Phase I uniform partitioning: ``Kth = LSK / L`` where
        ``L`` is the (estimated) source-to-sink path length.
        """
        if path_length <= 0.0:
            raise ValueError(f"path_length must be positive, got {path_length}")
        return self.lsk_budget(noise_bound) / path_length

    def panel_noise(
        self,
        occupants: Sequence[PanelOccupant],
        sensitivity: Mapping[int, Set[int]],
        length: float,
    ) -> Dict[int, float]:
        """Noise voltage of every net in a single panel of the given length.

        Convenience helper for single-region studies and tests: each net's
        LSK value is just ``length * K_i`` because it crosses one region.
        """
        couplings = panel_couplings(occupants, sensitivity, model=self.keff_model)
        return {
            net_id: self.table.noise_for(length * coupling)
            for net_id, coupling in couplings.items()
        }


def linear_reference_table(
    slope: float,
    noise_floor: float = 0.10,
    noise_ceiling: float = 0.20,
    num_entries: int = 100,
) -> LskTable:
    """An analytically linear LSK table, mainly for tests and quick studies.

    ``noise = slope * LSK`` sampled so the tabulated noise runs from
    ``noise_floor`` to ``noise_ceiling`` over ``num_entries`` entries, the
    same shape as the characterised table in the paper.
    """
    if slope <= 0.0:
        raise ValueError(f"slope must be positive, got {slope}")
    if not 0.0 < noise_floor < noise_ceiling:
        raise ValueError("need 0 < noise_floor < noise_ceiling")
    if num_entries < 2:
        raise ValueError("num_entries must be >= 2")
    noise = np.linspace(noise_floor, noise_ceiling, num_entries)
    lsk = noise / slope
    return LskTable(lsk_values=lsk, noise_values=noise)
