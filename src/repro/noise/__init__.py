"""RLC crosstalk noise models: the Keff model and the LSK model.

This sub-package implements Section 2 of the paper:

* :mod:`repro.noise.keff` — the formula-based Keff model of He–Lepak
  (reference [4] of the paper): the inductive coupling coefficient ``K_ij``
  between two signal wires in a panel and the per-net total ``K_i``.
* :mod:`repro.noise.lsk` — the length-scaled Keff model (Equation 1 of the
  paper): ``LSK_i = sum_j l_j * K_i^j`` over the routing regions a net
  crosses, plus the LSK -> crosstalk-voltage lookup table.
* :mod:`repro.noise.table_builder` — builds the lookup table by sweeping
  single-region panel configurations through the MNA circuit simulator
  (our substitute for the SPICE characterisation in the paper).
* :mod:`repro.noise.fidelity` — fidelity metrics (rank correlation between
  model and simulated noise) used to validate the model, reproducing the
  Section 2.2 claims.
"""

from repro.noise.keff import (
    KeffModel,
    PanelOccupant,
    coupling_coefficient,
    panel_couplings,
    panel_couplings_fast,
    total_coupling,
)
from repro.noise.lsk import (
    LskTable,
    LskModel,
    RegionContribution,
    compute_lsk,
)
from repro.noise.table_builder import LskTableBuilder, TableBuildConfig
from repro.noise.fidelity import FidelityReport, kendall_tau, lsk_fidelity_report

__all__ = [
    "KeffModel",
    "PanelOccupant",
    "coupling_coefficient",
    "panel_couplings",
    "panel_couplings_fast",
    "total_coupling",
    "LskTable",
    "LskModel",
    "RegionContribution",
    "compute_lsk",
    "LskTableBuilder",
    "TableBuildConfig",
    "FidelityReport",
    "kendall_tau",
    "lsk_fidelity_report",
]
