"""Building the LSK -> noise-voltage lookup table from circuit simulations.

The paper characterises the table by generating "a number of SINO solutions
for a single routing region" and running SPICE on them for different wire
lengths (Section 2.2).  This module reproduces that procedure with two
substitutions documented in DESIGN.md:

* the SPICE runs are replaced by the MNA transient simulator in
  :mod:`repro.circuit`;
* the single-region configurations are drawn at random over the same space a
  SINO solver explores (track counts, shield counts and positions, sensitivity
  rates), which covers the LSK range the router will later query.

For every sampled panel we compute the victim's LSK value with the Keff model
and its noise voltage with the simulator, then fit a monotone (isotonic)
mapping through the samples and resample it at ``num_entries`` points — the
paper's table has 100 entries spanning 0.10 V to 0.20 V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.coupled_lines import CoupledLineConfig, WireRole, simulate_panel_noise
from repro.noise.keff import DEFAULT_KEFF_MODEL, KeffModel, PanelOccupant, total_coupling
from repro.noise.lsk import LskTable
from repro.tech.driver import UniformInterfaceModel
from repro.tech.itrs import ITRS_100NM, Technology


@dataclass(frozen=True)
class TableBuildConfig:
    """Parameters controlling the table characterisation sweep.

    Attributes
    ----------
    technology / interface:
        Physical context; the table is only valid for this combination
        (Section 2.2 caveat about uniform drivers and receivers).
    keff_model:
        Keff model used to compute the LSK value of each sample.
    num_entries:
        Number of entries in the final table (paper: 100).
    num_samples:
        Number of random panel configurations to simulate.
    wire_lengths:
        Wire lengths (metres) to sweep; defaults to 0.25 mm – 4 mm which spans
        the net lengths of the IBM benchmarks.
    track_counts:
        Panel widths (number of occupied tracks) to draw from.
    sensitivity_rates:
        Probability that another net in the panel is an aggressor of the
        victim, drawn per sample.
    shield_probability:
        Probability that any given track holds a shield.
    segments_per_wire / num_steps:
        Simulator discretisation parameters.
    noise_floor / noise_ceiling:
        Noise range the final table should span (paper: 0.10 V – 0.20 V);
        samples outside the range still inform the monotone fit.
    seed:
        Seed of the random generator used for panel sampling.
    """

    technology: Technology = ITRS_100NM
    interface: Optional[UniformInterfaceModel] = None
    keff_model: KeffModel = DEFAULT_KEFF_MODEL
    num_entries: int = 100
    num_samples: int = 160
    wire_lengths: Tuple[float, ...] = (0.25e-3, 0.5e-3, 1.0e-3, 2.0e-3, 4.0e-3)
    track_counts: Tuple[int, ...] = (3, 4, 5, 6, 7, 8)
    sensitivity_rates: Tuple[float, ...] = (0.3, 0.5, 0.8)
    shield_probability: float = 0.25
    segments_per_wire: int = 4
    num_steps: int = 400
    noise_floor: Optional[float] = None
    noise_ceiling: Optional[float] = None
    seed: int = 2002

    def __post_init__(self) -> None:
        if self.num_entries < 2:
            raise ValueError(f"num_entries must be >= 2, got {self.num_entries}")
        if self.num_samples < 4:
            raise ValueError(f"num_samples must be >= 4, got {self.num_samples}")
        if not self.wire_lengths:
            raise ValueError("wire_lengths must not be empty")
        if not self.track_counts or min(self.track_counts) < 2:
            raise ValueError("track_counts must contain values >= 2")
        if not all(0.0 < rate <= 1.0 for rate in self.sensitivity_rates):
            raise ValueError("sensitivity rates must lie in (0, 1]")
        if not 0.0 <= self.shield_probability < 1.0:
            raise ValueError("shield_probability must lie in [0, 1)")

    def resolved_interface(self) -> UniformInterfaceModel:
        """The interface model, defaulting to the technology's uniform one."""
        if self.interface is not None:
            return self.interface
        return UniformInterfaceModel.from_technology(self.technology)

    def resolved_noise_floor(self) -> float:
        """Lower edge of the tabulated noise range."""
        if self.noise_floor is not None:
            return self.noise_floor
        return self.technology.crosstalk_noise_floor

    def resolved_noise_ceiling(self) -> float:
        """Upper edge of the tabulated noise range."""
        if self.noise_ceiling is not None:
            return self.noise_ceiling
        return self.technology.crosstalk_noise_ceiling


@dataclass
class PanelSample:
    """One characterisation sample: a panel, its LSK value and its noise."""

    roles: Tuple[WireRole, ...]
    wire_length: float
    lsk_value: float
    noise_voltage: float


def isotonic_fit(values: Sequence[float]) -> np.ndarray:
    """Pool-adjacent-violators: the best monotone non-decreasing fit (L2).

    Small, dependency-free implementation used to turn the noisy (LSK, noise)
    cloud into a monotone mapping.
    """
    y = np.asarray(list(values), dtype=float)
    n = y.size
    if n == 0:
        return y
    # Each block keeps (mean, weight); merge while the sequence decreases.
    means: List[float] = []
    weights: List[float] = []
    for value in y:
        means.append(float(value))
        weights.append(1.0)
        while len(means) > 1 and means[-2] > means[-1]:
            merged_weight = weights[-2] + weights[-1]
            merged_mean = (means[-2] * weights[-2] + means[-1] * weights[-1]) / merged_weight
            means.pop()
            weights.pop()
            means[-1] = merged_mean
            weights[-1] = merged_weight
    fitted = np.empty(n)
    index = 0
    for mean, weight in zip(means, weights):
        count = int(round(weight))
        fitted[index : index + count] = mean
        index += count
    return fitted


class LskTableBuilder:
    """Runs the characterisation sweep and produces an :class:`LskTable`."""

    def __init__(self, config: Optional[TableBuildConfig] = None) -> None:
        self.config = config or TableBuildConfig()
        self.samples: List[PanelSample] = []

    # -- sampling -------------------------------------------------------------

    def _sample_roles(self, rng: np.random.Generator) -> Tuple[WireRole, ...]:
        """Draw one random panel configuration with a victim somewhere inside."""
        config = self.config
        num_tracks = int(rng.choice(config.track_counts))
        sensitivity = float(rng.choice(config.sensitivity_rates))
        roles: List[WireRole] = []
        for _ in range(num_tracks):
            if rng.random() < config.shield_probability:
                roles.append(WireRole.SHIELD)
            elif rng.random() < sensitivity:
                roles.append(WireRole.AGGRESSOR)
            else:
                roles.append(WireRole.QUIET)
        signal_positions = [i for i, role in enumerate(roles) if role is not WireRole.SHIELD]
        if not signal_positions:
            # Ensure there is at least one signal track to host the victim.
            roles[int(rng.integers(num_tracks))] = WireRole.QUIET
            signal_positions = [i for i, role in enumerate(roles) if role is not WireRole.SHIELD]
        victim_position = int(rng.choice(signal_positions))
        roles[victim_position] = WireRole.VICTIM
        return tuple(roles)

    @staticmethod
    def lsk_of_roles(
        roles: Sequence[WireRole],
        wire_length: float,
        keff_model: KeffModel,
    ) -> float:
        """LSK value of the victim in a single-region panel description."""
        occupants = [
            PanelOccupant(track=index, net_id=None if role is WireRole.SHIELD else index)
            for index, role in enumerate(roles)
        ]
        victims = [index for index, role in enumerate(roles) if role is WireRole.VICTIM]
        if not victims:
            raise ValueError("panel has no victim track")
        victim_index = victims[0]
        aggressors = {index for index, role in enumerate(roles) if role is WireRole.AGGRESSOR}
        coupling = total_coupling(
            victim=occupants[victim_index],
            occupants=occupants,
            aggressor_net_ids=aggressors,
            model=keff_model,
        )
        return wire_length * coupling

    def collect_samples(self) -> List[PanelSample]:
        """Simulate the random panel sweep and cache the samples."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        interface = config.resolved_interface()
        samples: List[PanelSample] = []
        for _ in range(config.num_samples):
            roles = self._sample_roles(rng)
            wire_length = float(rng.choice(config.wire_lengths))
            lsk_value = self.lsk_of_roles(roles, wire_length, config.keff_model)
            panel_config = CoupledLineConfig(
                technology=config.technology,
                interface=interface,
                wire_length=wire_length,
                segments_per_wire=config.segments_per_wire,
            )
            noise, _ = simulate_panel_noise(
                panel_config, roles, num_steps=config.num_steps
            )
            samples.append(
                PanelSample(
                    roles=roles,
                    wire_length=wire_length,
                    lsk_value=lsk_value,
                    noise_voltage=noise,
                )
            )
        self.samples = samples
        return samples

    # -- table construction -----------------------------------------------------

    def build(self) -> LskTable:
        """Run the sweep (if not already run) and build the lookup table."""
        if not self.samples:
            self.collect_samples()
        config = self.config

        ordered = sorted(self.samples, key=lambda sample: sample.lsk_value)
        lsk = np.array([sample.lsk_value for sample in ordered])
        noise = np.array([sample.noise_voltage for sample in ordered])
        fitted = isotonic_fit(noise)

        # Collapse duplicate LSK values (keep the mean of their fitted noise).
        unique_lsk: List[float] = []
        unique_noise: List[float] = []
        index = 0
        while index < lsk.size:
            stop = index
            while stop < lsk.size and np.isclose(lsk[stop], lsk[index]):
                stop += 1
            unique_lsk.append(float(lsk[index]))
            unique_noise.append(float(np.mean(fitted[index:stop])))
            index = stop
        if len(unique_lsk) < 2:
            raise RuntimeError(
                "the characterisation sweep produced fewer than two distinct LSK values; "
                "increase num_samples or widen the sweep ranges"
            )

        dense_lsk = np.array(unique_lsk)
        dense_noise = np.maximum.accumulate(np.array(unique_noise))

        # Restrict to the target noise window when the sweep covers it, then
        # resample at num_entries points (the paper's 100-entry table).
        floor = config.resolved_noise_floor()
        ceiling = config.resolved_noise_ceiling()
        inside = (dense_noise >= floor) & (dense_noise <= ceiling)
        if int(np.count_nonzero(inside)) >= 2:
            low_lsk = float(dense_lsk[inside][0])
            high_lsk = float(dense_lsk[inside][-1])
        else:
            low_lsk = float(dense_lsk[0])
            high_lsk = float(dense_lsk[-1])
        if high_lsk <= low_lsk:
            low_lsk = float(dense_lsk[0])
            high_lsk = float(dense_lsk[-1])

        table_lsk = np.linspace(low_lsk, high_lsk, config.num_entries)
        table_noise = np.interp(table_lsk, dense_lsk, dense_noise)
        table_noise = np.maximum.accumulate(table_noise)
        # Guarantee strictly increasing LSK sample points.
        eps = (high_lsk - low_lsk) * 1e-12 + 1e-15
        for i in range(1, table_lsk.size):
            if table_lsk[i] <= table_lsk[i - 1]:
                table_lsk[i] = table_lsk[i - 1] + eps
        return LskTable(lsk_values=table_lsk, noise_values=table_noise)


def build_default_table(
    technology: Technology = ITRS_100NM,
    num_samples: int = 160,
    seed: int = 2002,
) -> LskTable:
    """Convenience wrapper: characterise the default table for a technology."""
    config = TableBuildConfig(technology=technology, num_samples=num_samples, seed=seed)
    return LskTableBuilder(config).build()
