"""Fidelity checks for the LSK model (Section 2.2 claims).

The paper argues the Keff/LSK model is usable for routing because it has
*fidelity* rather than accuracy: among solutions of equal wire length, a net
with a larger model value also has a larger SPICE-computed noise voltage, and
noise grows roughly linearly with wire length.  This module quantifies both
claims against our circuit simulator so the reproduction can report them
(benchmark ``M1`` in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.coupled_lines import CoupledLineConfig, WireRole, simulate_panel_noise
from repro.noise.keff import DEFAULT_KEFF_MODEL, KeffModel
from repro.noise.table_builder import LskTableBuilder, TableBuildConfig
from repro.tech.driver import UniformInterfaceModel
from repro.tech.itrs import ITRS_100NM, Technology


def kendall_tau(first: Sequence[float], second: Sequence[float]) -> float:
    """Kendall rank-correlation coefficient between two equal-length sequences.

    Pairs tied in either sequence are skipped (tau-a over untied pairs); a
    value of 1.0 means perfect rank agreement, which is exactly the "fidelity"
    property the paper requires of the model.
    """
    x = list(first)
    y = list(second)
    if len(x) != len(y):
        raise ValueError("sequences must have equal length")
    if len(x) < 2:
        raise ValueError("need at least two observations")
    concordant = 0
    discordant = 0
    for i in range(len(x)):
        for j in range(i + 1, len(x)):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            product = dx * dy
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 0.0
    return (concordant - discordant) / total


def pearson_r(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson linear-correlation coefficient."""
    x = np.asarray(list(first), dtype=float)
    y = np.asarray(list(second), dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length sequences with at least two points")
    if np.std(x) == 0.0 or np.std(y) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass
class FidelityReport:
    """Summary of the model-vs-simulation fidelity study.

    Attributes
    ----------
    rank_correlation:
        Kendall tau between LSK values and simulated noise voltages across
        random fixed-length panels (paper claim: high fidelity).
    length_linearity:
        Pearson correlation between wire length and simulated noise for a
        fixed panel configuration (paper claim: noise roughly linear in
        length).
    num_samples:
        Number of (panel, noise) samples behind ``rank_correlation``.
    lengths_swept:
        Wire lengths used for the linearity check.
    """

    rank_correlation: float
    length_linearity: float
    num_samples: int
    lengths_swept: Tuple[float, ...]

    def passes(self, min_rank: float = 0.6, min_linearity: float = 0.8) -> bool:
        """Whether the study supports the paper's fidelity claims."""
        return self.rank_correlation >= min_rank and self.length_linearity >= min_linearity


def lsk_fidelity_report(
    technology: Technology = ITRS_100NM,
    keff_model: KeffModel = DEFAULT_KEFF_MODEL,
    num_samples: int = 40,
    fixed_length: float = 1.0e-3,
    lengths: Optional[Sequence[float]] = None,
    seed: int = 7,
    segments_per_wire: int = 4,
    num_steps: int = 300,
) -> FidelityReport:
    """Run the fidelity study of Section 2.2 against the circuit simulator.

    Two experiments:

    1. *Rank fidelity*: sample ``num_samples`` random panels of a fixed wire
       length, compute each victim's LSK value and simulated noise, and report
       the Kendall tau between the two.
    2. *Length linearity*: take one moderately coupled panel pattern and sweep
       the wire length, reporting the Pearson correlation between length and
       simulated noise.
    """
    interface = UniformInterfaceModel.from_technology(technology)
    build_config = TableBuildConfig(
        technology=technology,
        interface=interface,
        keff_model=keff_model,
        num_samples=max(num_samples, 4),
        wire_lengths=(fixed_length,),
        segments_per_wire=segments_per_wire,
        num_steps=num_steps,
        seed=seed,
    )
    builder = LskTableBuilder(build_config)
    samples = builder.collect_samples()
    lsk_values = [sample.lsk_value for sample in samples]
    noise_values = [sample.noise_voltage for sample in samples]
    rank = kendall_tau(lsk_values, noise_values)

    if lengths is None:
        lengths = (0.25e-3, 0.5e-3, 1.0e-3, 1.5e-3, 2.0e-3)
    pattern: Tuple[WireRole, ...] = (
        WireRole.AGGRESSOR,
        WireRole.VICTIM,
        WireRole.QUIET,
        WireRole.AGGRESSOR,
    )
    noise_by_length: List[float] = []
    for length in lengths:
        config = CoupledLineConfig(
            technology=technology,
            interface=interface,
            wire_length=length,
            segments_per_wire=segments_per_wire,
        )
        noise, _ = simulate_panel_noise(config, pattern, num_steps=num_steps)
        noise_by_length.append(noise)
    linearity = pearson_r(list(lengths), noise_by_length)

    return FidelityReport(
        rank_correlation=rank,
        length_linearity=linearity,
        num_samples=len(samples),
        lengths_swept=tuple(lengths),
    )
