"""Rectilinear Steiner tree length estimation.

Phase I of GSINO normalises routed wire length against "the estimated wire
length of the Rectilinear Steiner Minimum Tree (RSMT) for the current net"
(Formula 2).  Computing exact RSMTs is NP-hard; the estimates here follow
common global-routing practice:

* for 2–3 pins the half-perimeter wire length (HPWL) is exact,
* for more pins a rectilinear Prim spanning tree gives an upper bound that is
  within a few percent of the RSMT for the pin counts seen in the IBM
  benchmarks, optionally tightened by the classical average RSMT/RMST ratio.
"""

from __future__ import annotations

from typing import Sequence

from repro.grid.nets import Pin

#: Average RSMT / rectilinear-MST length ratio for random point sets.  The
#: classical result (Hwang) bounds RSMT >= 2/3 * RMST; empirically the ratio
#: is about 0.88 for uniformly random pins, which is the correction used by
#: many wire-length estimators.
RSMT_TO_RMST_RATIO = 0.88


def hpwl(pins: Sequence[Pin]) -> float:
    """Half-perimeter wire length of a pin set (um)."""
    if not pins:
        raise ValueError("HPWL of an empty pin set is undefined")
    xs = [pin.x for pin in pins]
    ys = [pin.y for pin in pins]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def prim_steiner_length(pins: Sequence[Pin]) -> float:
    """Length of a rectilinear Prim spanning tree over the pins (um).

    O(n^2), which is fine for global nets (a handful of pins each).
    """
    if not pins:
        raise ValueError("spanning tree of an empty pin set is undefined")
    if len(pins) == 1:
        return 0.0
    in_tree = [False] * len(pins)
    in_tree[0] = True
    best_distance = [pins[0].manhattan_distance(pin) for pin in pins]
    total = 0.0
    for _ in range(len(pins) - 1):
        next_index = -1
        next_distance = float("inf")
        for index, pin_in_tree in enumerate(in_tree):
            if pin_in_tree:
                continue
            if best_distance[index] < next_distance:
                next_distance = best_distance[index]
                next_index = index
        in_tree[next_index] = True
        total += next_distance
        for index, pin_in_tree in enumerate(in_tree):
            if pin_in_tree:
                continue
            distance = pins[next_index].manhattan_distance(pins[index])
            if distance < best_distance[index]:
                best_distance[index] = distance
    return total


def rsmt_length_estimate(pins: Sequence[Pin]) -> float:
    """Estimated RSMT length of a pin set (um).

    HPWL for up to three pins (exact), otherwise the Prim spanning tree length
    scaled by the average RSMT/RMST ratio, never below the HPWL lower bound.
    """
    if not pins:
        raise ValueError("RSMT estimate of an empty pin set is undefined")
    if len(pins) <= 3:
        return hpwl(pins)
    spanning = prim_steiner_length(pins)
    estimate = spanning * RSMT_TO_RMST_RATIO
    return max(estimate, hpwl(pins))


def steiner_ratio(pins: Sequence[Pin]) -> float:
    """Ratio of the RSMT estimate to the HPWL lower bound (>= 1)."""
    lower = hpwl(pins)
    if lower == 0.0:
        return 1.0
    return rsmt_length_estimate(pins) / lower
