"""The routing grid: regions bounded by power/ground wires.

The chip is divided into ``num_cols`` x ``num_rows`` rectangular routing
regions.  Each region has a horizontal capacity ``HC`` (tracks available for
horizontal wires) and a vertical capacity ``VC``.  Power/ground wires are
assumed wide enough that there is no coupling between neighbouring regions,
which is why SINO can be solved region by region.

Coordinates follow the usual convention: column index ``ix`` grows to the
right (x direction), row index ``iy`` grows upwards (y direction).  All
physical dimensions are in micrometres to match the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: A region coordinate: (column index, row index).
RegionCoord = Tuple[int, int]

#: Routing directions.
HORIZONTAL = "horizontal"
VERTICAL = "vertical"


@dataclass(frozen=True)
class Region:
    """One routing region of the grid.

    Attributes
    ----------
    ix / iy:
        Column / row index in the grid.
    width / height:
        Physical size in micrometres.
    horizontal_capacity:
        Number of horizontal tracks available (``HC`` in the paper).
    vertical_capacity:
        Number of vertical tracks available (``VC`` in the paper).
    """

    ix: int
    iy: int
    width: float
    height: float
    horizontal_capacity: int
    vertical_capacity: int

    def __post_init__(self) -> None:
        if self.ix < 0 or self.iy < 0:
            raise ValueError(f"region indices must be non-negative, got ({self.ix}, {self.iy})")
        if self.width <= 0.0 or self.height <= 0.0:
            raise ValueError(f"region dimensions must be positive, got {self.width} x {self.height}")
        if self.horizontal_capacity < 0 or self.vertical_capacity < 0:
            raise ValueError("track capacities must be non-negative")

    @property
    def coord(self) -> RegionCoord:
        """The (column, row) coordinate of this region."""
        return (self.ix, self.iy)

    @property
    def center(self) -> Tuple[float, float]:
        """Physical centre of the region in micrometres."""
        return ((self.ix + 0.5) * self.width, (self.iy + 0.5) * self.height)

    def capacity(self, direction: str) -> int:
        """Track capacity in a direction (``HORIZONTAL`` or ``VERTICAL``)."""
        if direction == HORIZONTAL:
            return self.horizontal_capacity
        if direction == VERTICAL:
            return self.vertical_capacity
        raise ValueError(f"unknown direction {direction!r}")

    def span(self, direction: str) -> float:
        """Length a wire of the given direction has inside this region (um)."""
        if direction == HORIZONTAL:
            return self.width
        if direction == VERTICAL:
            return self.height
        raise ValueError(f"unknown direction {direction!r}")


class RoutingGrid:
    """A uniform grid of routing regions covering the chip.

    Parameters
    ----------
    num_cols / num_rows:
        Grid dimensions (number of regions in x / y).
    chip_width / chip_height:
        Chip dimensions in micrometres.
    horizontal_capacity / vertical_capacity:
        Per-region track capacities (uniform across the grid).
    track_pitch_um:
        Physical pitch of one routing track in micrometres; used by the area
        model when regions must grow to host extra tracks.
    """

    def __init__(
        self,
        num_cols: int,
        num_rows: int,
        chip_width: float,
        chip_height: float,
        horizontal_capacity: int,
        vertical_capacity: int,
        track_pitch_um: float = 1.0,
    ) -> None:
        if num_cols < 1 or num_rows < 1:
            raise ValueError(f"grid must have at least one region, got {num_cols} x {num_rows}")
        if chip_width <= 0.0 or chip_height <= 0.0:
            raise ValueError("chip dimensions must be positive")
        if horizontal_capacity < 1 or vertical_capacity < 1:
            raise ValueError("track capacities must be at least 1")
        if track_pitch_um <= 0.0:
            raise ValueError("track pitch must be positive")
        self.num_cols = num_cols
        self.num_rows = num_rows
        self.chip_width = float(chip_width)
        self.chip_height = float(chip_height)
        self.horizontal_capacity = horizontal_capacity
        self.vertical_capacity = vertical_capacity
        self.track_pitch_um = float(track_pitch_um)
        self.region_width = self.chip_width / num_cols
        self.region_height = self.chip_height / num_rows
        self._regions: Dict[RegionCoord, Region] = {}
        for ix in range(num_cols):
            for iy in range(num_rows):
                self._regions[(ix, iy)] = Region(
                    ix=ix,
                    iy=iy,
                    width=self.region_width,
                    height=self.region_height,
                    horizontal_capacity=horizontal_capacity,
                    vertical_capacity=vertical_capacity,
                )

    # -- lookup -----------------------------------------------------------

    @property
    def num_regions(self) -> int:
        """Total number of regions."""
        return self.num_cols * self.num_rows

    def region(self, coord: RegionCoord) -> Region:
        """The region at a (column, row) coordinate."""
        if coord not in self._regions:
            raise KeyError(f"region {coord} is outside the {self.num_cols}x{self.num_rows} grid")
        return self._regions[coord]

    def __contains__(self, coord: RegionCoord) -> bool:
        return coord in self._regions

    def regions(self) -> Iterator[Region]:
        """Iterate over all regions (column-major)."""
        return iter(self._regions.values())

    def region_of_point(self, x: float, y: float) -> Region:
        """The region containing a physical point (um); points on the far edge clamp inward."""
        if not (0.0 <= x <= self.chip_width and 0.0 <= y <= self.chip_height):
            raise ValueError(
                f"point ({x}, {y}) lies outside the chip "
                f"({self.chip_width} x {self.chip_height} um)"
            )
        ix = min(int(x / self.region_width), self.num_cols - 1)
        iy = min(int(y / self.region_height), self.num_rows - 1)
        return self._regions[(ix, iy)]

    # -- adjacency ----------------------------------------------------------

    def neighbors(self, coord: RegionCoord) -> List[RegionCoord]:
        """Orthogonally adjacent region coordinates."""
        ix, iy = coord
        candidates = [(ix - 1, iy), (ix + 1, iy), (ix, iy - 1), (ix, iy + 1)]
        return [candidate for candidate in candidates if candidate in self._regions]

    @staticmethod
    def edge_direction(coord_a: RegionCoord, coord_b: RegionCoord) -> str:
        """Direction of the grid edge between two adjacent regions.

        A horizontal edge connects horizontally adjacent regions (a wire
        crossing it runs horizontally); a vertical edge connects vertically
        adjacent regions.
        """
        ax, ay = coord_a
        bx, by = coord_b
        if abs(ax - bx) + abs(ay - by) != 1:
            raise ValueError(f"regions {coord_a} and {coord_b} are not adjacent")
        return HORIZONTAL if ay == by else VERTICAL

    def edge_length(self, coord_a: RegionCoord, coord_b: RegionCoord) -> float:
        """Physical length (um) of the wire crossing between two adjacent regions."""
        direction = self.edge_direction(coord_a, coord_b)
        return self.region_width if direction == HORIZONTAL else self.region_height

    def bounding_box_regions(
        self,
        coords: List[RegionCoord],
        margin: int = 0,
    ) -> List[RegionCoord]:
        """All region coordinates inside the bounding box of ``coords``.

        ``margin`` expands the box by that many regions on every side (clipped
        to the grid), which lets routers consider small detours outside the
        strict pin bounding box.
        """
        if not coords:
            raise ValueError("bounding box of an empty coordinate list is undefined")
        min_x = max(min(ix for ix, _ in coords) - margin, 0)
        max_x = min(max(ix for ix, _ in coords) + margin, self.num_cols - 1)
        min_y = max(min(iy for _, iy in coords) - margin, 0)
        max_y = min(max(iy for _, iy in coords) + margin, self.num_rows - 1)
        return [
            (ix, iy)
            for ix in range(min_x, max_x + 1)
            for iy in range(min_y, max_y + 1)
        ]

    def manhattan_distance_um(self, coord_a: RegionCoord, coord_b: RegionCoord) -> float:
        """Manhattan distance between two region centres, in micrometres."""
        ax, ay = coord_a
        bx, by = coord_b
        return abs(ax - bx) * self.region_width + abs(ay - by) * self.region_height

    def __repr__(self) -> str:
        return (
            f"RoutingGrid({self.num_cols}x{self.num_rows}, "
            f"chip={self.chip_width:.0f}x{self.chip_height:.0f}um, "
            f"HC={self.horizontal_capacity}, VC={self.vertical_capacity})"
        )
