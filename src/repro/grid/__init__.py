"""Global-routing substrate: grid, netlist, Steiner estimation, routes, area.

The paper routes over-the-cell global interconnect on a pair of routing
layers divided by pre-routed power/ground wires into *routing regions*, each
with a horizontal and a vertical track capacity.  This sub-package provides
those structures plus everything the routers and the evaluation need on top
of them:

* :mod:`repro.grid.regions` — the routing grid and its regions/capacities.
* :mod:`repro.grid.nets` — pins, nets, netlists and sensitivity relations.
* :mod:`repro.grid.steiner` — rectilinear Steiner tree length estimation.
* :mod:`repro.grid.routes` — route trees over the region grid and routing
  solutions.
* :mod:`repro.grid.congestion` — per-region utilisation, density and
  overflow accounting.
* :mod:`repro.grid.area` — the routing-area model used for Table 3.
"""

from repro.grid.regions import Region, RoutingGrid
from repro.grid.nets import Net, Netlist, Pin
from repro.grid.sensitivity import (
    ExplicitSensitivity,
    RandomPairwiseSensitivity,
    SensitivityOracle,
)
from repro.grid.steiner import hpwl, prim_steiner_length, rsmt_length_estimate
from repro.grid.routes import RouteTree, RoutingSolution
from repro.grid.congestion import CongestionMap, RegionUsage
from repro.grid.area import AreaReport, routing_area

__all__ = [
    "Region",
    "RoutingGrid",
    "Pin",
    "Net",
    "Netlist",
    "ExplicitSensitivity",
    "RandomPairwiseSensitivity",
    "SensitivityOracle",
    "hpwl",
    "prim_steiner_length",
    "rsmt_length_estimate",
    "RouteTree",
    "RoutingSolution",
    "CongestionMap",
    "RegionUsage",
    "AreaReport",
    "routing_area",
]
