"""Route trees over the region grid and whole-chip routing solutions.

A global route of a net is a tree whose vertices are routing regions and
whose edges connect adjacent regions; it must span every region that contains
a pin of the net.  The physical wire length of a route and the per-region
segment lengths (the ``l_j`` of the LSK model) are both derived from the
region dimensions: an edge between two adjacent regions corresponds to a wire
of one region span, half of which lies in each of the two regions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.grid.nets import Net, Netlist
from repro.grid.regions import HORIZONTAL, VERTICAL, RegionCoord, RoutingGrid

#: A grid edge between two adjacent regions, stored with sorted endpoints so
#: (a, b) and (b, a) compare equal.
GridEdge = Tuple[RegionCoord, RegionCoord]


def normalize_edge(coord_a: RegionCoord, coord_b: RegionCoord) -> GridEdge:
    """Canonical form of an undirected grid edge."""
    return (coord_a, coord_b) if coord_a <= coord_b else (coord_b, coord_a)


@dataclass
class RouteTree:
    """The global route of one net.

    Attributes
    ----------
    net_id:
        The routed net.
    pin_regions:
        Regions that contain pins of the net (the terminals the tree must span).
    edges:
        Grid edges forming the route.  A single-region net has no edges.
    """

    net_id: int
    pin_regions: Tuple[RegionCoord, ...]
    edges: FrozenSet[GridEdge] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.pin_regions:
            raise ValueError(f"route for net {self.net_id} has no pin regions")
        self.edges = frozenset(normalize_edge(a, b) for a, b in self.edges)

    # -- structure ----------------------------------------------------------

    def regions(self) -> Set[RegionCoord]:
        """Every region the route touches (tree vertices plus pin regions)."""
        touched: Set[RegionCoord] = set(self.pin_regions)
        for coord_a, coord_b in self.edges:
            touched.add(coord_a)
            touched.add(coord_b)
        return touched

    def adjacency(self) -> Dict[RegionCoord, List[RegionCoord]]:
        """Adjacency list of the route graph."""
        adjacency: Dict[RegionCoord, List[RegionCoord]] = {coord: [] for coord in self.regions()}
        for coord_a, coord_b in self.edges:
            adjacency[coord_a].append(coord_b)
            adjacency[coord_b].append(coord_a)
        return adjacency

    def is_connected(self) -> bool:
        """True when every pin region is reachable from every other one."""
        if len(self.pin_regions) <= 1 and not self.edges:
            return True
        adjacency = self.adjacency()
        start = self.pin_regions[0]
        seen: Set[RegionCoord] = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour in adjacency.get(current, []):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return all(coord in seen for coord in self.pin_regions)

    def is_tree(self) -> bool:
        """True when the route is connected and acyclic."""
        if not self.is_connected():
            return False
        vertices = self.regions()
        return len(self.edges) == len(vertices) - 1

    # -- physical metrics ------------------------------------------------------

    def wirelength_um(self, grid: RoutingGrid) -> float:
        """Total physical wire length (um) of the route."""
        return sum(grid.edge_length(a, b) for a, b in self.edges)

    def direction_usage(self, grid: RoutingGrid) -> Dict[RegionCoord, Set[str]]:
        """Which directions (horizontal / vertical) the net uses in each region."""
        usage: Dict[RegionCoord, Set[str]] = {}
        for coord_a, coord_b in self.edges:
            direction = grid.edge_direction(coord_a, coord_b)
            for coord in (coord_a, coord_b):
                usage.setdefault(coord, set()).add(direction)
        return usage

    def region_lengths_um(self, grid: RoutingGrid) -> Dict[RegionCoord, float]:
        """Length of the net inside each region it crosses (``l_j`` of the LSK model).

        Every edge contributes half a region span to each of its two endpoint
        regions.
        """
        lengths: Dict[RegionCoord, float] = {}
        for coord_a, coord_b in self.edges:
            half = grid.edge_length(coord_a, coord_b) / 2.0
            lengths[coord_a] = lengths.get(coord_a, 0.0) + half
            lengths[coord_b] = lengths.get(coord_b, 0.0) + half
        return lengths

    def path_between(self, start: RegionCoord, goal: RegionCoord) -> List[RegionCoord]:
        """Unique tree path between two regions of the route.

        Raises ``ValueError`` if either endpoint is not part of the route or
        the two are disconnected.
        """
        if start == goal:
            return [start]
        adjacency = self.adjacency()
        if start not in adjacency or goal not in adjacency:
            raise ValueError(f"regions {start} / {goal} are not on the route of net {self.net_id}")
        parents: Dict[RegionCoord, Optional[RegionCoord]] = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            if current == goal:
                break
            for neighbour in adjacency[current]:
                if neighbour not in parents:
                    parents[neighbour] = current
                    queue.append(neighbour)
        if goal not in parents:
            raise ValueError(
                f"regions {start} and {goal} are disconnected on the route of net {self.net_id}"
            )
        path: List[RegionCoord] = [goal]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def __repr__(self) -> str:
        return f"RouteTree(net={self.net_id}, regions={len(self.regions())}, edges={len(self.edges)})"


class RoutingSolution:
    """A complete global-routing solution: one route tree per net."""

    def __init__(
        self,
        grid: RoutingGrid,
        netlist: Netlist,
        routes: Mapping[int, RouteTree],
    ) -> None:
        missing = [net_id for net_id in netlist.net_ids() if net_id not in routes]
        if missing:
            raise ValueError(f"routing solution is missing routes for nets {missing[:10]}")
        self.grid = grid
        self.netlist = netlist
        self.routes: Dict[int, RouteTree] = dict(routes)

    # -- per-net access -------------------------------------------------------

    def route(self, net_id: int) -> RouteTree:
        """The route of one net."""
        if net_id not in self.routes:
            raise KeyError(f"no route for net {net_id}")
        return self.routes[net_id]

    def __len__(self) -> int:
        return len(self.routes)

    # -- aggregate metrics -------------------------------------------------------

    def total_wirelength_um(self) -> float:
        """Sum of all route wire lengths (um)."""
        return sum(route.wirelength_um(self.grid) for route in self.routes.values())

    def average_wirelength_um(self) -> float:
        """Average wire length per net (um) — the quantity of Table 2."""
        if not self.routes:
            return 0.0
        return self.total_wirelength_um() / len(self.routes)

    def all_trees_valid(self) -> bool:
        """True when every route is a tree spanning its pin regions."""
        return all(route.is_tree() for route in self.routes.values())

    def nets_in_region(self, coord: RegionCoord, direction: str) -> List[int]:
        """Ids of nets that occupy a track of ``direction`` in a region."""
        if direction not in (HORIZONTAL, VERTICAL):
            raise ValueError(f"unknown direction {direction!r}")
        present: List[int] = []
        for net_id in sorted(self.routes):
            usage = self.routes[net_id].direction_usage(self.grid)
            if direction in usage.get(coord, set()):
                present.append(net_id)
        return present

    def __repr__(self) -> str:
        return (
            f"RoutingSolution(nets={len(self.routes)}, "
            f"avg_wl={self.average_wirelength_um():.1f}um)"
        )
