"""Signal nets, pins and netlists with sensitivity relations.

Each net ``N_i`` has a source pin ``p_i0`` and one or more sink pins
``p_ij``.  Two nets are *sensitive* to each other when a switching event on
one can make the other malfunction; the netlist stores that relation as a set
of aggressor ids per net.  The paper's experiments assign sensitivity randomly
at a given rate (30 % or 50 %), which :mod:`repro.bench.sensitivity`
implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.grid.regions import RegionCoord, RoutingGrid
from repro.grid.sensitivity import ExplicitSensitivity, SensitivityOracle


@dataclass(frozen=True)
class Pin:
    """A pin location in micrometres."""

    x: float
    y: float

    def __post_init__(self) -> None:
        if self.x < 0.0 or self.y < 0.0:
            raise ValueError(f"pin coordinates must be non-negative, got ({self.x}, {self.y})")

    def manhattan_distance(self, other: "Pin") -> float:
        """Manhattan distance to another pin, in micrometres."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class Net:
    """A signal net: a source pin and one or more sink pins.

    Attributes
    ----------
    net_id:
        Unique integer identifier within the netlist.
    pins:
        Pin tuple; ``pins[0]`` is the source, the rest are sinks.
    name:
        Optional human-readable name.
    """

    net_id: int
    pins: Tuple[Pin, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if self.net_id < 0:
            raise ValueError(f"net ids must be non-negative, got {self.net_id}")
        if len(self.pins) < 2:
            raise ValueError(f"net {self.net_id} needs at least a source and one sink")

    @property
    def source(self) -> Pin:
        """The driving pin ``p_i0``."""
        return self.pins[0]

    @property
    def sinks(self) -> Tuple[Pin, ...]:
        """The receiving pins ``p_ij`` (j > 0)."""
        return self.pins[1:]

    @property
    def num_pins(self) -> int:
        """Total pin count."""
        return len(self.pins)

    def hpwl(self) -> float:
        """Half-perimeter wire length of the pin bounding box (um)."""
        xs = [pin.x for pin in self.pins]
        ys = [pin.y for pin in self.pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def source_sink_distances(self) -> List[float]:
        """Manhattan distance from the source to each sink (``L_e,ij`` in Phase I)."""
        return [self.source.manhattan_distance(sink) for sink in self.sinks]

    def pin_regions(self, grid: RoutingGrid) -> List[RegionCoord]:
        """Region coordinates of all pins (duplicates removed, order preserved)."""
        coords: List[RegionCoord] = []
        for pin in self.pins:
            coord = grid.region_of_point(pin.x, pin.y).coord
            if coord not in coords:
                coords.append(coord)
        return coords


class Netlist:
    """A collection of nets plus the sensitivity relation between them.

    The sensitivity relation may be given either as an explicit mapping
    ``{net_id: aggressor ids}`` (small designs, tests) or as any
    :class:`~repro.grid.sensitivity.SensitivityOracle` (e.g. the random
    pairwise oracle used for large synthetic benchmarks).
    """

    def __init__(
        self,
        nets: Sequence[Net],
        sensitivity: Optional[Union[Mapping[int, Set[int]], SensitivityOracle]] = None,
        name: str = "netlist",
    ) -> None:
        self.name = name
        self._nets: Dict[int, Net] = {}
        for net in nets:
            if net.net_id in self._nets:
                raise ValueError(f"duplicate net id {net.net_id} in netlist {name!r}")
            self._nets[net.net_id] = net
        if sensitivity is None:
            self.sensitivity: SensitivityOracle = ExplicitSensitivity.empty()
        elif isinstance(sensitivity, SensitivityOracle):
            self.sensitivity = sensitivity
        else:
            for net_id in sensitivity:
                if net_id not in self._nets:
                    raise ValueError(f"sensitivity entry for unknown net id {net_id}")
            self.sensitivity = ExplicitSensitivity(
                {
                    net_id: {a for a in aggressors if a in self._nets}
                    for net_id, aggressors in sensitivity.items()
                }
            )

    # -- nets --------------------------------------------------------------

    @property
    def num_nets(self) -> int:
        """Number of signal nets."""
        return len(self._nets)

    def net(self, net_id: int) -> Net:
        """Look up a net by id."""
        if net_id not in self._nets:
            raise KeyError(f"no net with id {net_id} in netlist {self.name!r}")
        return self._nets[net_id]

    def nets(self) -> Iterator[Net]:
        """Iterate over nets in id order."""
        for net_id in sorted(self._nets):
            yield self._nets[net_id]

    def net_ids(self) -> List[int]:
        """Sorted list of net ids."""
        return sorted(self._nets)

    def __contains__(self, net_id: int) -> bool:
        return net_id in self._nets

    def __len__(self) -> int:
        return len(self._nets)

    # -- sensitivity ---------------------------------------------------------

    def are_sensitive(self, net_a: int, net_b: int) -> bool:
        """True when the two nets are sensitive to each other."""
        return self.sensitivity.are_sensitive(net_a, net_b)

    def aggressors_among(self, net_id: int, candidates: Iterable[int]) -> Set[int]:
        """The subset of ``candidates`` that are sensitive to ``net_id``.

        This is the query per-region SINO needs (the nets sharing a region).
        """
        return self.sensitivity.aggressors_among(net_id, candidates)

    def local_sensitivity_map(self, net_ids: Iterable[int]) -> Dict[int, Set[int]]:
        """Pairwise sensitivity restricted to a group of nets."""
        return self.sensitivity.local_sensitivity_map(net_ids)

    def sensitivity_rate(self, net_id: int) -> float:
        """Ratio of the net's aggressor count to the total number of signal nets.

        This is the paper's definition of the *sensitivity rate* of a net.
        """
        return self.sensitivity.rate_of(net_id, self.num_nets)

    def average_sensitivity_rate(self) -> float:
        """Mean sensitivity rate over all nets."""
        if not self._nets:
            return 0.0
        return sum(self.sensitivity_rate(net_id) for net_id in self._nets) / self.num_nets

    def with_sensitivity(
        self,
        sensitivity: Union[Mapping[int, Set[int]], SensitivityOracle],
    ) -> "Netlist":
        """A copy of this netlist with a different sensitivity relation."""
        return Netlist(list(self.nets()), sensitivity=sensitivity, name=self.name)

    # -- aggregate statistics -----------------------------------------------

    def total_hpwl(self) -> float:
        """Sum of per-net half-perimeter wire lengths (um)."""
        return sum(net.hpwl() for net in self.nets())

    def average_pin_count(self) -> float:
        """Mean number of pins per net."""
        if not self._nets:
            return 0.0
        return sum(net.num_pins for net in self.nets()) / self.num_nets

    def __repr__(self) -> str:
        return (
            f"Netlist(name={self.name!r}, nets={self.num_nets}, "
            f"avg_sensitivity={self.average_sensitivity_rate():.2f})"
        )
