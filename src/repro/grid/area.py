"""The routing-area model behind Table 3.

The paper computes the routing area of a solution as "the product of the
maximum row and column lengths".  Shields consume routing tracks; when a
region needs more tracks than its capacity provides, the corresponding row or
column of the chip must be stretched to create those tracks.  The model here
makes that concrete:

* a region needing ``extra_h`` horizontal tracks beyond its capacity adds
  ``extra_h * track_pitch`` to the height of its *row* (horizontal tracks
  stack vertically);
* a region needing ``extra_v`` vertical tracks adds ``extra_v * track_pitch``
  to the width of its *column*;
* each row's height (column's width) is set by its most demanding region;
* the chip height is the sum of row heights, the chip width the sum of column
  widths, and the reported routing area is ``width x height``.

With no overflow anywhere the model reproduces the original chip dimensions,
which is what Table 3 lists for the ID+NO baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.grid.congestion import CongestionMap
from repro.grid.regions import HORIZONTAL, VERTICAL, RoutingGrid


@dataclass(frozen=True)
class AreaReport:
    """Routing area of one solution.

    Attributes
    ----------
    chip_width / chip_height:
        Expanded chip dimensions in micrometres (the ``row x column`` numbers
        of Table 3).
    base_width / base_height:
        Original chip dimensions before any expansion.
    """

    chip_width: float
    chip_height: float
    base_width: float
    base_height: float

    @property
    def area(self) -> float:
        """Routing area (um^2)."""
        return self.chip_width * self.chip_height

    @property
    def base_area(self) -> float:
        """Area of the unexpanded chip (um^2)."""
        return self.base_width * self.base_height

    @property
    def overhead(self) -> float:
        """Relative area increase over the unexpanded chip (0.0 = none)."""
        if self.base_area == 0.0:
            return 0.0
        return self.area / self.base_area - 1.0

    def overhead_vs(self, other: "AreaReport") -> float:
        """Relative area increase over another report (Table 3's percentages)."""
        if other.area == 0.0:
            return 0.0
        return self.area / other.area - 1.0

    def dimensions_label(self) -> str:
        """Formatted ``width x height`` string matching the paper's tables."""
        return f"{self.chip_width:.0f} x {self.chip_height:.0f}"


def routing_area(congestion: CongestionMap, grid: RoutingGrid) -> AreaReport:
    """Evaluate the routing-area model for a congestion map.

    The congestion map must already include the shield counts of the solution
    being evaluated (``Nss`` per region and direction); net segments and
    shields are treated identically because both occupy a full track.
    """
    row_extra_um: Dict[int, float] = {iy: 0.0 for iy in range(grid.num_rows)}
    col_extra_um: Dict[int, float] = {ix: 0.0 for ix in range(grid.num_cols)}
    pitch = grid.track_pitch_um

    for coord, direction, usage in congestion.entries():
        extra_tracks = usage.overflow
        if extra_tracks <= 0.0:
            continue
        ix, iy = coord
        if direction == HORIZONTAL:
            row_extra_um[iy] = max(row_extra_um[iy], extra_tracks * pitch)
        elif direction == VERTICAL:
            col_extra_um[ix] = max(col_extra_um[ix], extra_tracks * pitch)

    chip_height = sum(grid.region_height + extra for extra in row_extra_um.values())
    chip_width = sum(grid.region_width + extra for extra in col_extra_um.values())
    return AreaReport(
        chip_width=chip_width,
        chip_height=chip_height,
        base_width=grid.chip_width,
        base_height=grid.chip_height,
    )
