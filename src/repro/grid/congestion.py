"""Per-region track utilisation, density and overflow accounting.

The ID router's weight function (Formula 2) needs the routing density
``HD(R) = HU(R) / HC(R)`` and the relative overflow ``HOFR(R)`` of every
region, where the utilisation ``HU = Nns + Nss`` counts both net segments and
the shields the eventual SINO solution will need.  This module provides a
single-pass accounting structure that both the routers and the evaluation
metrics reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.grid.regions import HORIZONTAL, VERTICAL, RegionCoord, RoutingGrid
from repro.grid.routes import RoutingSolution


@dataclass
class RegionUsage:
    """Track usage of one region in one direction.

    Attributes
    ----------
    nets:
        Ids of nets occupying a track of this direction in the region
        (``Nns`` is their count).
    shields:
        Number of shield tracks reserved or inserted (``Nss``).
    capacity:
        Track capacity of the region in this direction.
    """

    nets: Set[int] = field(default_factory=set)
    shields: float = 0.0
    capacity: int = 0

    @property
    def num_segments(self) -> int:
        """Number of net segments (``Nns``)."""
        return len(self.nets)

    @property
    def utilization(self) -> float:
        """``HU = Nns + Nss``."""
        return self.num_segments + self.shields

    @property
    def density(self) -> float:
        """``HD = HU / HC`` (0 when the region has no capacity)."""
        if self.capacity <= 0:
            return 0.0
        return self.utilization / self.capacity

    @property
    def overflow(self) -> float:
        """Tracks used beyond the capacity (``max(0, HU - HC)``)."""
        return max(0.0, self.utilization - self.capacity)

    @property
    def relative_overflow(self) -> float:
        """``HOFR = overflow / HC`` (0 when the region has no capacity)."""
        if self.capacity <= 0:
            return 0.0
        return self.overflow / self.capacity


class CongestionMap:
    """Usage of every (region, direction) pair of a routing solution."""

    def __init__(self, grid: RoutingGrid) -> None:
        self.grid = grid
        self._usage: Dict[Tuple[RegionCoord, str], RegionUsage] = {}
        for region in grid.regions():
            self._usage[(region.coord, HORIZONTAL)] = RegionUsage(capacity=region.horizontal_capacity)
            self._usage[(region.coord, VERTICAL)] = RegionUsage(capacity=region.vertical_capacity)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_solution(
        cls,
        solution: RoutingSolution,
        shields: Optional[Mapping[Tuple[RegionCoord, str], float]] = None,
    ) -> "CongestionMap":
        """Build the map from a routing solution in a single pass.

        ``shields`` optionally supplies the number of shield tracks per
        (region, direction), e.g. from the per-region SINO solutions or the
        Formula 3 estimate.
        """
        congestion = cls(solution.grid)
        for net_id, route in solution.routes.items():
            for coord, directions in route.direction_usage(solution.grid).items():
                for direction in directions:
                    congestion.usage(coord, direction).nets.add(net_id)
        if shields:
            for (coord, direction), count in shields.items():
                congestion.usage(coord, direction).shields = float(count)
        return congestion

    # -- access -------------------------------------------------------------------

    def usage(self, coord: RegionCoord, direction: str) -> RegionUsage:
        """Usage record of one (region, direction); raises KeyError when unknown."""
        key = (coord, direction)
        if key not in self._usage:
            raise KeyError(f"no usage record for region {coord} direction {direction!r}")
        return self._usage[key]

    def entries(self) -> Iterable[Tuple[RegionCoord, str, RegionUsage]]:
        """Iterate (coord, direction, usage) over all records."""
        for (coord, direction), usage in self._usage.items():
            yield coord, direction, usage

    def set_shields(self, coord: RegionCoord, direction: str, count: float) -> None:
        """Set the shield count of one (region, direction)."""
        if count < 0.0:
            raise ValueError(f"shield count must be non-negative, got {count}")
        self.usage(coord, direction).shields = float(count)

    # -- aggregate metrics -----------------------------------------------------------

    def total_overflow(self) -> float:
        """Sum of overflow tracks over all (region, direction) records."""
        return sum(usage.overflow for _, _, usage in self.entries())

    def max_density(self) -> float:
        """Largest density over all records."""
        return max((usage.density for _, _, usage in self.entries()), default=0.0)

    def num_overflowed_regions(self) -> int:
        """Number of (region, direction) records with positive overflow."""
        return sum(1 for _, _, usage in self.entries() if usage.overflow > 0.0)

    def most_congested(self) -> Tuple[RegionCoord, str, RegionUsage]:
        """The (region, direction) with the highest density."""
        return max(self.entries(), key=lambda item: item[2].density)

    def least_congested_among(
        self,
        candidates: Iterable[Tuple[RegionCoord, str]],
    ) -> Tuple[RegionCoord, str]:
        """The least dense (region, direction) among a candidate set.

        Used by Phase III pass 1, which adds a shield to the least congested
        region a violating net is routed through.
        """
        candidates = list(candidates)
        if not candidates:
            raise ValueError("least_congested_among needs at least one candidate")
        return min(candidates, key=lambda key: self.usage(key[0], key[1]).density)

    def density_histogram(self, num_bins: int = 10) -> List[int]:
        """Histogram of densities (bins of width ``1/num_bins`` starting at 0).

        Densities of 1.0 or above all land in the last bin; useful for quick
        congestion summaries in reports and examples.
        """
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        bins = [0] * num_bins
        for _, _, usage in self.entries():
            index = min(int(usage.density * num_bins), num_bins - 1)
            bins[index] += 1
        return bins

    def __repr__(self) -> str:
        return (
            f"CongestionMap(regions={self.grid.num_regions}, "
            f"max_density={self.max_density():.2f}, overflow={self.total_overflow():.1f})"
        )
