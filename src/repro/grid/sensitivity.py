"""Sensitivity relations between signal nets.

Two nets are *sensitive* to each other when a switching event on one can make
the other malfunction; the *sensitivity rate* of a net is the fraction of
other signal nets it is sensitive to.  The paper's experiments draw this
relation at random at a fixed rate (30 % or 50 %) because the real relation
"depends on logic and physical implementation".

Storing an explicit aggressor set per net is fine for small designs but grows
quadratically, so two implementations of the same oracle interface are
provided:

* :class:`ExplicitSensitivity` — backed by a dictionary of aggressor sets
  (used by tests, small examples and hand-built cases);
* :class:`RandomPairwiseSensitivity` — a deterministic hash of the net-id
  pair decides sensitivity, so arbitrarily large netlists cost O(1) memory
  (used by the IBM-style benchmark generator).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Mapping, Set


class SensitivityOracle(ABC):
    """Query interface for the pairwise sensitivity relation."""

    @abstractmethod
    def are_sensitive(self, net_a: int, net_b: int) -> bool:
        """True when the two nets are sensitive to each other."""

    @abstractmethod
    def rate_of(self, net_id: int, num_nets: int) -> float:
        """Sensitivity rate of a net given the total number of signal nets."""

    def aggressors_among(self, net_id: int, candidates: Iterable[int]) -> Set[int]:
        """The subset of ``candidates`` that are sensitive to ``net_id``."""
        return {
            candidate
            for candidate in candidates
            if candidate != net_id and self.are_sensitive(net_id, candidate)
        }

    def local_sensitivity_map(self, net_ids: Iterable[int]) -> Dict[int, Set[int]]:
        """Pairwise sensitivity restricted to a group of nets.

        This is what per-region SINO needs: the relation among the nets that
        actually share the region.
        """
        ids = list(dict.fromkeys(net_ids))
        mapping: Dict[int, Set[int]] = {net_id: set() for net_id in ids}
        for index, net_a in enumerate(ids):
            for net_b in ids[index + 1:]:
                if self.are_sensitive(net_a, net_b):
                    mapping[net_a].add(net_b)
                    mapping[net_b].add(net_a)
        return mapping


class ExplicitSensitivity(SensitivityOracle):
    """Sensitivity stored as explicit aggressor sets (symmetrised)."""

    def __init__(self, aggressors: Mapping[int, Set[int]]) -> None:
        symmetric: Dict[int, Set[int]] = {}
        for net_id, others in aggressors.items():
            for other in others:
                if other == net_id:
                    continue
                symmetric.setdefault(net_id, set()).add(other)
                symmetric.setdefault(other, set()).add(net_id)
        self._aggressors: Dict[int, FrozenSet[int]] = {
            net_id: frozenset(others) for net_id, others in symmetric.items()
        }

    @classmethod
    def empty(cls) -> "ExplicitSensitivity":
        """An oracle under which no two nets are sensitive."""
        return cls({})

    def aggressors_of(self, net_id: int) -> FrozenSet[int]:
        """The full aggressor set of a net."""
        return self._aggressors.get(net_id, frozenset())

    def are_sensitive(self, net_a: int, net_b: int) -> bool:
        if net_a == net_b:
            return False
        return net_b in self._aggressors.get(net_a, frozenset())

    def rate_of(self, net_id: int, num_nets: int) -> float:
        if num_nets <= 1:
            return 0.0
        return len(self._aggressors.get(net_id, frozenset())) / (num_nets - 1)

    def aggressors_among(self, net_id: int, candidates: Iterable[int]) -> Set[int]:
        known = self._aggressors.get(net_id, frozenset())
        return {candidate for candidate in candidates if candidate in known}


class RandomPairwiseSensitivity(SensitivityOracle):
    """Random sensitivity at a nominal rate, decided by a deterministic hash.

    Each unordered pair of net ids maps, together with the seed, through a
    64-bit mixing function to a uniform value in [0, 1); the pair is sensitive
    when that value falls below ``rate``.  The relation is therefore symmetric,
    reproducible, and needs no storage — exactly what the paper's "a signal
    net is sensitive to random 30 % of other signal nets" assumption requires
    at benchmark scale.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sensitivity rate must lie in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def _mix(self, value: int) -> int:
        # SplitMix64 finaliser: good avalanche behaviour, cheap, deterministic.
        value = (value + 0x9E3779B97F4A7C15) & self._MASK
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & self._MASK
        return (value ^ (value >> 31)) & self._MASK

    def _pair_value(self, net_a: int, net_b: int) -> float:
        low, high = (net_a, net_b) if net_a <= net_b else (net_b, net_a)
        mixed = self._mix((low << 32) ^ high ^ self._mix(self.seed))
        return mixed / float(1 << 64)

    def are_sensitive(self, net_a: int, net_b: int) -> bool:
        if net_a == net_b:
            return False
        return self._pair_value(net_a, net_b) < self.rate

    def rate_of(self, net_id: int, num_nets: int) -> float:
        # The expected rate equals the nominal rate; using the expectation
        # keeps full-chip budgeting O(1) per net.
        return self.rate
