"""Composable, resumable, engine-parallel flow graphs (see DESIGN.md).

Public surface of the stage-graph subsystem: the graph datatypes
(:class:`Stage`, :class:`FlowGraph`, :class:`FlowContext`), the
materialising :class:`FlowRunner`, and the registered paper flows
(``id_no``, ``isino``, ``gsino``) with their drivers.
"""

from repro.flow.artifacts import (
    MetricsArtifact,
    RefineArtifact,
    RoutingArtifact,
)
from repro.flow.graph import ArtifactStore, FlowContext, FlowGraph, Stage
from repro.flow.runner import EXECUTED, RESTORED, SHARED, FlowRunner, StageExecution
from repro.flow.flows import (
    FLOW_NAMES,
    CompareOutcome,
    build_context,
    flow_graph,
    list_flows,
    run_compare,
    run_flow,
)

__all__ = [
    "ArtifactStore",
    "CompareOutcome",
    "EXECUTED",
    "FLOW_NAMES",
    "FlowContext",
    "FlowGraph",
    "FlowRunner",
    "MetricsArtifact",
    "RESTORED",
    "RefineArtifact",
    "RoutingArtifact",
    "SHARED",
    "Stage",
    "StageExecution",
    "build_context",
    "flow_graph",
    "list_flows",
    "run_compare",
    "run_flow",
]
