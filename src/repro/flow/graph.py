"""Typed stage-graph datatypes: contexts, stages and flow graphs.

A *flow* (ID+NO, iSINO, GSINO — and every future variant) is expressed as a
directed acyclic graph of named **artifacts**, each produced by one
**stage**.  Stages declare the artifact names they consume; the
:class:`~repro.flow.runner.FlowRunner` topologically schedules them,
memoises every artifact by content signature and persists encodable
artifacts through an :class:`ArtifactStore`.  Because signatures are pure
content hashes (:func:`repro.engine.signature.stage_signature`), two flows
that share an ancestor stage — the baselines' common routing, the budgets
every flow reads — share one artifact instead of recomputing it.

The datatypes here are deliberately small and generic: everything specific
to the paper's flows (what the stages compute, how artifacts serialise)
lives in :mod:`repro.flow.stages` and :mod:`repro.flow.artifacts`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Set, Tuple

from repro.engine.panels import Engine
from repro.engine.signature import anneal_token, float_token, instance_token
from repro.grid.nets import Netlist
from repro.grid.regions import RoutingGrid
from repro.gsino.config import GsinoConfig
from repro.router.weights import WeightConfig
from repro.tech.itrs import Technology


class ArtifactStore(Protocol):
    """Persistent stage-artifact tier (implemented by ``repro.service.store``).

    Duck-typed here so the flow layer never imports the service layer above
    it — mirroring how the engine's :class:`~repro.engine.cache.LayoutStore`
    protocol decouples the solution cache from the store.
    """

    def get_artifact(self, signature: str) -> Optional[Dict[str, object]]:
        """The stored payload for a stage signature, or ``None`` on a miss."""

    def put_artifact(self, signature: str, artifact: Dict[str, object]) -> None:
        """Persist one stage-artifact payload under its signature."""


@dataclass
class FlowContext:
    """Everything the stages of one flow run share.

    The context is built **once** per routing instance and threaded through
    every flow of a comparison: the grid, netlist and configuration are the
    single source of truth for all stages, and the engine supplies the
    execution backend and the (optionally store-backed) panel-solution
    cache.  Instance and configuration tokens are computed lazily and
    cached, so repeated signature computations cost one hash lookup.
    """

    grid: RoutingGrid
    netlist: Netlist
    config: GsinoConfig
    engine: Engine
    _instance_token: Optional[str] = field(default=None, init=False, repr=False)
    _config_token: Optional[str] = field(default=None, init=False, repr=False)

    @classmethod
    def build(
        cls,
        grid: RoutingGrid,
        netlist: Netlist,
        config: Optional[GsinoConfig] = None,
        engine: Optional[Engine] = None,
    ) -> "FlowContext":
        """Normalising constructor (defaults mirror the legacy flow drivers)."""
        return cls(
            grid=grid,
            netlist=netlist,
            config=config or GsinoConfig(),
            engine=engine or Engine(),
        )

    def instance_signature(self) -> str:
        """Content token of the routing instance (cached)."""
        if self._instance_token is None:
            self._instance_token = instance_token(self.grid, self.netlist)
        return self._instance_token

    def config_signature(self) -> str:
        """Content token of the flow configuration (cached).

        Canonicalises every knob that can influence any stage output.  An
        explicitly supplied LSK table is tokenised by its sample content; a
        custom shield estimator by its fitted coefficients.  The token is a
        whole-configuration hash on purpose — see
        :func:`repro.engine.signature.stage_signature`.
        """
        if self._config_token is None:
            self._config_token = _config_token(self.config)
        return self._config_token


def _technology_token(technology: Technology) -> str:
    """Canonical encoding of a technology node (every dataclass field).

    Generic over the fields so a new electrical parameter can never be
    silently invisible to stage signatures: anything on the node — wire
    geometry, resistivity, driver/load, clock — feeds the LSK
    characterisation and therefore the budgets and metrics.
    """
    parts: List[str] = []
    for spec in dataclasses.fields(technology):
        value = getattr(technology, spec.name)
        parts.append(float_token(value) if isinstance(value, float) else str(value))
    return ",".join(parts)


def _config_token(config: GsinoConfig) -> str:
    """Canonical string of one :class:`GsinoConfig` (see ``config_signature``)."""
    keff = config.keff_model
    if config.lsk_table is not None:
        table = config.lsk_table
        lsk_token = ";".join(
            f"{float_token(lsk)}:{float_token(noise)}"
            for lsk, noise in zip(table.lsk_values, table.noise_values)
        )
    else:
        lsk_token = "-"
    if config.shield_estimator is not None:
        estimator = config.shield_estimator
        coefficients = estimator.coefficients
        estimator_token = ",".join(
            float_token(value)
            for value in (
                coefficients.a1,
                coefficients.a2,
                coefficients.a3,
                coefficients.a4,
                coefficients.a5,
                coefficients.a6,
            )
        ) + f",{float_token(estimator.reference_kth)}"
    else:
        estimator_token = "-"

    def weights(label: str, cfg: WeightConfig) -> str:
        return (
            f"{label}="
            + ",".join(
                (
                    float_token(cfg.alpha),
                    float_token(cfg.beta),
                    float_token(cfg.gamma),
                    str(cfg.reserve_shields),
                    str(cfg.bounding_box_margin),
                    float_token(cfg.weight_tolerance),
                )
            )
        )

    parts = (
        f"technology={_technology_token(config.technology)}",
        "bound="
        + ("-" if config.crosstalk_bound is None else float_token(config.crosstalk_bound)),
        "keff="
        + ",".join(
            float_token(value)
            for value in (
                keff.shield_attenuation,
                keff.adjacent_shield_bonus,
                keff.distance_exponent,
            )
        ),
        f"lsk_table={lsk_token}",
        f"characterize={config.characterize_table}",
        f"table_samples={config.table_samples}",
        f"length_scale={float_token(config.length_scale)}",
        f"sino_effort={config.sino_effort}",
        f"anneal={anneal_token(config.anneal)}",
        weights("gsino_weights", config.gsino_weights),
        weights("baseline_weights", config.baseline_weights),
        f"estimator={estimator_token}",
        f"refine_kth_shrink={float_token(config.refine_kth_shrink)}",
        f"max_pass1={config.max_pass1_iterations}",
        f"max_pass2={config.max_pass2_regions}",
        f"seed={config.seed}",
    )
    return "|".join(parts)


#: A stage's compute function: (context, inputs by artifact name) -> artifact.
ComputeFn = Callable[[FlowContext, Mapping[str, object]], object]

#: Serialise an artifact to a JSON-safe payload (context and inputs provided
#: so codecs can store only what the instance cannot re-derive).
EncodeFn = Callable[[FlowContext, Mapping[str, object], object], Dict[str, object]]

#: Rebuild an artifact from its payload plus the decoded input artifacts.
DecodeFn = Callable[[FlowContext, Mapping[str, object], Dict[str, object]], object]


@dataclass(frozen=True)
class Stage:
    """One node of a flow graph: a named, versioned, memoisable computation.

    Attributes
    ----------
    name:
        Stage kind (``"route_id"``, ``"solve_panels"``, ...); part of the
        artifact signature.
    inputs:
        Artifact names this stage consumes, in signature order.
    compute:
        The stage body.  Must be a pure function of the context and its
        inputs — determinism is what makes artifact signatures safe to
        share and persist.
    encode / decode:
        Optional codec pair for persistence.  A stage without a codec is
        memoised in memory but always recomputed in a fresh process.
    version:
        Implementation version; bump on any behavioural change so stale
        persisted artifacts can never be restored.
    params:
        Canonical token of the stage parameters (solver, weight set, ...),
        distinguishing sibling instantiations of one stage kind.
    """

    name: str
    inputs: Tuple[str, ...]
    compute: ComputeFn
    encode: Optional[EncodeFn] = None
    decode: Optional[DecodeFn] = None
    version: int = 1
    params: str = "-"


@dataclass(frozen=True)
class FlowGraph:
    """A named, validated DAG of artifacts.

    Attributes
    ----------
    name:
        Flow name (``"id_no"``, ``"isino"``, ``"gsino"``).
    stages:
        Mapping from artifact name to the stage that produces it.  Stage
        inputs must name artifacts present in the mapping.
    targets:
        The artifacts a caller needs to assemble the flow's result; the
        runner materialises these plus every ancestor.
    """

    name: str
    stages: Mapping[str, Stage]
    targets: Tuple[str, ...]

    def __post_init__(self) -> None:
        for artifact, stage in self.stages.items():
            for needed in stage.inputs:
                if needed not in self.stages:
                    raise ValueError(
                        f"flow {self.name!r}: stage for {artifact!r} needs unknown "
                        f"artifact {needed!r}"
                    )
        for target in self.targets:
            if target not in self.stages:
                raise ValueError(f"flow {self.name!r}: unknown target artifact {target!r}")
        self.schedule()  # raises on cycles

    def schedule(self, targets: Optional[Sequence[str]] = None) -> List[str]:
        """Topological order of ``targets`` (default: the graph's targets)
        and all their ancestors, dependencies first.

        The order is deterministic: a depth-first post-order over the
        declared input lists, visiting targets in declared order.
        """
        wanted = tuple(targets if targets is not None else self.targets)
        order: List[str] = []
        done: Set[str] = set()
        visiting: Set[str] = set()

        def visit(artifact: str) -> None:
            if artifact in done:
                return
            if artifact in visiting:
                raise ValueError(f"flow {self.name!r}: artifact cycle through {artifact!r}")
            if artifact not in self.stages:
                raise ValueError(f"flow {self.name!r}: unknown artifact {artifact!r}")
            visiting.add(artifact)
            for needed in self.stages[artifact].inputs:
                visit(needed)
            visiting.discard(artifact)
            done.add(artifact)
            order.append(artifact)

        for target in wanted:
            visit(target)
        return order

    def describe(self) -> List[str]:
        """Human-readable ``artifact <- stage(inputs)`` lines in schedule order."""
        lines = []
        for artifact in self.schedule():
            stage = self.stages[artifact]
            inputs = ", ".join(stage.inputs) if stage.inputs else "instance"
            lines.append(f"{artifact} <- {stage.name}({inputs})")
        return lines
