"""The paper's three flows as declarative stage graphs, plus the drivers.

One shared stage table expresses every artifact of the comparison::

    budgets        <- budgeting()
    route_baseline <- route_id(weights=baseline)
    route_reserved <- route_id(weights=reserved)
    panels_id_no   <- solve_panels(route_baseline, budgets; solver=ordering)
    panels_isino   <- solve_panels(route_baseline, budgets; solver=sino)
    panels_gsino   <- solve_panels(route_reserved, budgets; solver=sino)
    refine_gsino   <- refine_phase3(route_reserved, panels_gsino, budgets)
    metrics_*      <- metrics(route, panels)

and each flow is a :class:`~repro.flow.graph.FlowGraph` over that table:
ID+NO and iSINO differ only in their panel solver, GSINO adds the reserved
routing and Phase III.  Because the graphs share stage objects and artifact
names, a single :class:`~repro.flow.runner.FlowRunner` materialises the
common ancestors (the baseline routing, the budgets) exactly once per
``compare`` run — and, with a store attached, exactly once *ever* per
(instance, configuration).

New flow variants — different orderings, budget policies, effort
portfolios — are new graph recombinations over the same stage kinds, not
new monoliths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, cast

from repro.engine.panels import Engine
from repro.flow.artifacts import MetricsArtifact, RefineArtifact, RoutingArtifact
from repro.flow.graph import ArtifactStore, FlowContext, FlowGraph, Stage
from repro.flow.runner import FlowRunner
from repro.flow.stages import (
    budgeting_stage,
    metrics_stage,
    panels_of,
    refine_stage,
    route_stage,
    solve_panels_stage,
)
from repro.grid.nets import Netlist
from repro.grid.regions import RoutingGrid
from repro.gsino.budgeting import NetBudget
from repro.gsino.config import GsinoConfig
from repro.gsino.pipeline import FlowResult

#: Canonical artifact names of the comparison universe.
BUDGETS = "budgets"
ROUTE_BASELINE = "route_baseline"
ROUTE_RESERVED = "route_reserved"
PANELS_ID_NO = "panels_id_no"
PANELS_ISINO = "panels_isino"
PANELS_GSINO = "panels_gsino"
REFINE_GSINO = "refine_gsino"
METRICS_ID_NO = "metrics_id_no"
METRICS_ISINO = "metrics_isino"
METRICS_GSINO = "metrics_gsino"

#: The registered flows, in the canonical comparison order.
FLOW_NAMES: Tuple[str, ...] = ("id_no", "isino", "gsino")

#: One-line flow summaries (``repro flows --list``).
FLOW_DESCRIPTIONS: Dict[str, str] = {
    "id_no": "conventional ID routing + per-region net ordering (no shields)",
    "isino": "conventional ID routing + full per-region SINO",
    "gsino": "three-phase GSINO: budgeting, reserved routing, SINO, refinement",
}


def _stage_table() -> Dict[str, Stage]:
    """The shared artifact -> stage table behind every flow graph."""
    return {
        BUDGETS: budgeting_stage(),
        ROUTE_BASELINE: route_stage("baseline"),
        ROUTE_RESERVED: route_stage("reserved"),
        PANELS_ID_NO: solve_panels_stage(ROUTE_BASELINE, solver="ordering"),
        PANELS_ISINO: solve_panels_stage(ROUTE_BASELINE, solver="sino"),
        PANELS_GSINO: solve_panels_stage(ROUTE_RESERVED, solver="sino"),
        REFINE_GSINO: refine_stage(ROUTE_RESERVED, PANELS_GSINO),
        METRICS_ID_NO: metrics_stage(ROUTE_BASELINE, PANELS_ID_NO),
        METRICS_ISINO: metrics_stage(ROUTE_BASELINE, PANELS_ISINO),
        METRICS_GSINO: metrics_stage(ROUTE_RESERVED, REFINE_GSINO),
    }


#: (routing, final panels, metrics, optional refine) artifacts per flow.
_FLOW_ARTIFACTS: Dict[str, Tuple[str, str, str, Optional[str]]] = {
    "id_no": (ROUTE_BASELINE, PANELS_ID_NO, METRICS_ID_NO, None),
    "isino": (ROUTE_BASELINE, PANELS_ISINO, METRICS_ISINO, None),
    "gsino": (ROUTE_RESERVED, REFINE_GSINO, METRICS_GSINO, REFINE_GSINO),
}

_STAGES: Dict[str, Stage] = _stage_table()

_GRAPHS: Dict[str, FlowGraph] = {
    name: FlowGraph(name=name, stages=_STAGES, targets=(_FLOW_ARTIFACTS[name][2],))
    for name in FLOW_NAMES
}


def flow_graph(name: str) -> FlowGraph:
    """The registered graph of one flow."""
    try:
        return _GRAPHS[name]
    except KeyError:
        raise KeyError(f"unknown flow {name!r}; registered: {sorted(_GRAPHS)}") from None


def list_flows() -> List[Tuple[str, str]]:
    """(name, description) of every registered flow, in comparison order."""
    return [(name, FLOW_DESCRIPTIONS[name]) for name in FLOW_NAMES]


def build_context(
    grid: RoutingGrid,
    netlist: Netlist,
    config: Optional[GsinoConfig] = None,
    engine: Optional[Engine] = None,
) -> FlowContext:
    """One shared context per routing instance (built once, threaded through
    every flow of a comparison)."""
    return FlowContext.build(grid, netlist, config=config, engine=engine)


@dataclass
class CompareOutcome:
    """A finished three-flow comparison plus its runner (execution stats)."""

    results: Dict[str, FlowResult]
    runner: FlowRunner


def run_flow(
    name: str,
    context: FlowContext,
    store: Optional[ArtifactStore] = None,
    runner: Optional[FlowRunner] = None,
    seeds: Optional[Mapping[str, object]] = None,
) -> FlowResult:
    """Materialise one flow's graph and assemble its :class:`FlowResult`.

    Passing an existing ``runner`` shares previously materialised artifacts
    (and their store); ``seeds`` installs precomputed artifact values (e.g.
    budgets) under their normal signatures before materialisation.
    """
    graph = flow_graph(name)
    runner = runner or FlowRunner(context, store=store)
    for artifact, value in (seeds or {}).items():
        runner.seed(graph, artifact, value)
    return _assemble(name, graph, runner)


def run_compare(
    context: FlowContext,
    store: Optional[ArtifactStore] = None,
    runner: Optional[FlowRunner] = None,
) -> CompareOutcome:
    """Run ID+NO, iSINO and GSINO over one shared runner.

    Shared ancestors (the baselines' routing, the budgets) are materialised
    exactly once; with a ``store``, a repeated comparison restores every
    stage artifact and executes nothing.
    """
    runner = runner or FlowRunner(context, store=store)
    results = {name: _assemble(name, flow_graph(name), runner) for name in FLOW_NAMES}
    return CompareOutcome(results=results, runner=runner)


def _assemble(name: str, graph: FlowGraph, runner: FlowRunner) -> FlowResult:
    """Materialise a flow and fold its artifacts into the legacy result type."""
    engine = runner.context.engine
    start = time.perf_counter()
    stats_before = engine.cache_stats()
    first_execution = len(runner.executions)
    artifacts = runner.materialize(graph)
    elapsed = time.perf_counter() - start

    routing_name, panels_name, metrics_name, refine_name = _FLOW_ARTIFACTS[name]
    routing = cast(RoutingArtifact, artifacts[routing_name])
    metrics = cast(MetricsArtifact, artifacts[metrics_name])
    panels = panels_of(artifacts[panels_name])
    phase3_report = None
    if refine_name is not None:
        phase3_report = cast(RefineArtifact, artifacts[refine_name]).report
    stage_timings = {
        execution.artifact: execution.seconds
        for execution in runner.executions[first_execution:]
    }
    return FlowResult(
        name=name,
        routing=routing.routing,
        panels=dict(panels),
        budgets=cast(Dict[int, NetBudget], artifacts[BUDGETS]),
        metrics=metrics.metrics,
        congestion=metrics.congestion,
        router_report=routing.report,
        phase3_report=phase3_report,
        runtime_seconds=elapsed,
        cache_stats=None if engine.cache is None else engine.cache_stats() - stats_before,
        stage_timings=stage_timings,
    )
